"""Serving-layer throughput under concurrent ingest (ISSUE 5).

One :class:`~repro.serve.server.EstimatorServer` owns an ABACUS
session.  A writer client streams edges in chunks while query clients
hammer ``estimate`` from their own threads; the bench measures both
sides — ingest el/s through the wire and answered queries/sec *during
active ingest* — and asserts the acceptance contract:

**no torn reads**: every ``(elements, estimate)`` pair any query
observed must exactly equal the deterministic single-writer replay of
the same chunk sequence at that element offset.  A torn read (estimate
from one publish paired with the element count of another) or a
non-boundary publish fails the bench, quick mode included.

The headline ``serve_query_qps`` feeds the ``tools/bench_runner.py``
floor gate.
"""

import random
import threading

from conftest import emit, record_metric

from repro.api import open_session
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.serve import ServeClient, serve_in_background
from repro.streams.dynamic import make_fully_dynamic

SPEC = "abacus:budget=1000,seed=31"
CHUNK = 256
QUERY_THREADS = 3


def _config(quick):
    """(n_side, n_edges) for the selected mode."""
    return (70, 4000) if quick else (120, 12000)


def _reference_views(chunks):
    """(elements -> estimate) at every chunk boundary, deterministic."""
    session = open_session(SPEC)
    views = {0: 0.0}
    for chunk in chunks:
        session.ingest(chunk)
        views[session.elements] = session.estimate
    return views


def test_serve_queries_during_ingest(benchmark, results_dir, quick):
    n_side, n_edges = _config(quick)
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(41))
    stream = list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(43)))
    chunks = [stream[i : i + CHUNK] for i in range(0, len(stream), CHUNK)]
    reference = _reference_views(chunks)

    def run():
        observed = []
        lock = threading.Lock()
        done = threading.Event()
        background = serve_in_background(open_session(SPEC))

        def query_loop():
            mine = []
            with ServeClient(*background.address) as client:
                while not done.is_set():
                    view = client.estimate()
                    mine.append((view["elements"], view["estimate"]))
            with lock:
                observed.extend(mine)

        readers = [
            threading.Thread(target=query_loop)
            for _ in range(QUERY_THREADS)
        ]
        for reader in readers:
            reader.start()
        watch = Stopwatch()
        with ServeClient(*background.address) as writer:
            with watch:
                for chunk in chunks:
                    writer.ingest(chunk)
        done.set()
        for reader in readers:
            reader.join(timeout=60)
        background.stop()

        ingest_eps = len(stream) / watch.elapsed
        queries_during_ingest = [
            pair for pair in observed if pair[0] < len(stream)
        ]
        query_qps = len(observed) / watch.elapsed

        # The acceptance contract: stale reads are fine, torn reads
        # are not — every observed pair must be one the single-writer
        # replay actually produced, at a chunk boundary.
        assert observed, "query threads never got an answer"
        for elements, estimate in observed:
            assert elements in reference, (
                f"estimate published at non-boundary offset {elements}"
            )
            assert estimate == reference[elements], (
                f"torn read: estimate {estimate} at {elements} "
                f"elements; the replay says {reference[elements]}"
            )
        return {
            "ingest_eps": ingest_eps,
            "query_qps": query_qps,
            "queries_total": len(observed),
            "queries_during_ingest": len(queries_during_ingest),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("wire ingest", f"{results['ingest_eps']:,.0f} el/s"),
        (
            f"estimate queries ({QUERY_THREADS} threads)",
            f"{results['query_qps']:,.0f} q/s",
        ),
        ("queries answered", f"{results['queries_total']:,}"),
        (
            "answered mid-ingest",
            f"{results['queries_during_ingest']:,}",
        ),
    ]
    text = render_table(
        ["measure", "value"],
        rows,
        title=(
            f"Serving under ingest ({len(stream):,} elements, "
            f"chunk={CHUNK}, spec {SPEC}) — torn reads: none"
        ),
    )
    emit(results_dir, "serve_queries", text)

    record_metric("serve_query_qps", results["query_qps"])
    record_metric("serve_ingest_eps", results["ingest_eps"])
    if quick:
        return
    # Full runs require genuinely concurrent service: a healthy share
    # of answers must land while ingest is still running.
    assert results["queries_during_ingest"] >= 50, (
        "queries were starved during ingest "
        f"({results['queries_during_ingest']} answered mid-stream)"
    )
