"""Section I motivation: anomaly-detection quality under deletions.

Plants butterfly bombs in a sparse fully dynamic background and scores
burst-detection precision/recall/F1 for ABACUS against the insert-only
baselines.  With deletions present, ABACUS must not be worse than the
baselines; the baselines' stale counts typically flood the detector
with false alarms.
"""

from conftest import emit

from repro.experiments.extensions import run_anomaly_quality


def test_anomaly_quality(benchmark, results_dir, quick):
    result = benchmark.pedantic(
        run_anomaly_quality,
        kwargs={"alphas": (0.2,) if quick else (0.0, 0.2, 0.3)},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "anomaly_quality", result["text"])
    results = result["results"]
    for alpha, qualities in results.items():
        # ABACUS keeps finding the planted bombs...
        assert qualities["Abacus"].recall >= 0.5, (alpha, qualities)
        if alpha > 0:
            # ...and under deletions is at least as good end-to-end as
            # the insert-only baselines.
            assert (
                qualities["Abacus"].f1
                >= min(qualities["FLEET"].f1, qualities["CAS"].f1)
            ), (alpha, qualities)
