"""Figure 7: ABACUS scales linearly with the stream size.

Replays the Trackers- and Orkut-like streams (as in the paper) with
three budgets, recording elapsed time after every 10% of the elements.
Checks linearity: the per-checkpoint elapsed times grow monotonically
and the last-half slope stays within 2.5x of the first-half slope
(Theorem 3's O(k^2 t) at fixed k).
"""

from conftest import emit

from repro.experiments.figures import run_scalability


def test_fig7_scalability(benchmark, ctx, results_dir, quick, bench_datasets):
    result = benchmark.pedantic(
        run_scalability,
        kwargs={
            "context": ctx,
            "parts": 4 if quick else 10,
            "datasets": bench_datasets,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig7_scalability", result["text"])
    for name, data in result["results"].items():
        for label, elapsed in data["elapsed_s"].items():
            assert elapsed == sorted(elapsed), (name, label)
            if quick:
                continue  # slope gates need the 10-part resolution
            half = len(elapsed) // 2
            first_half_slope = elapsed[half - 1] / half
            second_half_slope = (elapsed[-1] - elapsed[half - 1]) / (
                len(elapsed) - half
            )
            assert second_half_slope < 2.5 * first_half_slope + 1e-3, (
                name,
                label,
                elapsed,
            )
        # Larger budgets cost more total time (monotone in k), with
        # slack for timer noise on the cheap runs.
        if not quick:
            finals = [series[-1] for series in data["elapsed_s"].values()]
            assert finals[0] <= finals[-1] * 1.25, (name, finals)
