"""Throughput of the sharded ingestion engine (ISSUE 3 acceptance).

Measures end-to-end ingest elements/sec on the fast path's target
regime — an insert-only, counting-dominated workload (budget large
relative to the vertex count, deep sampled neighbourhoods) — for:

* 1 shard, serial (the unsharded reference),
* 4 shards on each backend (serial / thread / process).

Two contracts are asserted:

* every 4-shard configuration finishes with the **same estimate**
  regardless of backend (the bit-identical guarantee enforced in full
  by ``tests/shard/test_backends.py``) — asserted in every mode;
* with >= 4 usable cores, 4 process shards must ingest at **>= 2x**
  the 1-shard elements/sec.  Full runs only: ``--quick`` workloads are
  too small to amortise process dispatch, so quick runs just report
  throughput to the CI floor gate in ``tools/bench_runner.py``.  On
  small machines the speedup is reported but the threshold is skipped
  (process workers cannot beat the GIL-free serial loop without cores
  to run on).

Note the 4-shard serial row: sharding already pays on one core for
counting-dominated workloads, because each shard's sampled
neighbourhoods are shallower — that is the accuracy-for-throughput
trade documented in docs/architecture.md, not a free lunch.
"""

import os
import random

from conftest import emit, record_metric

from repro.api import open_session
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.streams.dynamic import stream_from_edges

SHARDS = 4
REQUIRED_SPEEDUP = 2.0
INGEST_BATCH = 2048

CONFIGS = (
    ("1 shard / serial", {}),
    ("4 shards / serial", {"shards": SHARDS, "backend": "serial"}),
    ("4 shards / thread", {"shards": SHARDS, "backend": "thread"}),
    ("4 shards / process", {"shards": SHARDS, "backend": "process"}),
)


def _config(quick):
    """(budget, n_left/right, n_edges) for the selected mode."""
    return (3000, 70, 4200) if quick else (8000, 110, 11000)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run(spec, stream, sharding):
    with open_session(spec, **sharding) as session:
        watch = Stopwatch()
        with watch:
            session.ingest(stream, batch_size=INGEST_BATCH)
            session.flush()
        return session.estimate, len(stream) / watch.elapsed


def test_sharded_ingest_throughput(benchmark, results_dir, quick):
    budget, n_side, n_edges = _config(quick)
    spec = f"abacus:budget={budget},seed=11"
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(5))
    stream = list(stream_from_edges(edges))

    def run():
        results = {}
        for label, sharding in CONFIGS:
            results[label] = _run(spec, stream, sharding)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base_estimate, base_eps = results["1 shard / serial"]
    rows = [
        (
            label,
            f"{estimate:,.1f}",
            f"{eps:,.0f}",
            f"{eps / base_eps:.2f}x",
        )
        for label, (estimate, eps) in results.items()
    ]
    cores = _usable_cores()
    text = render_table(
        ["configuration", "estimate", "elements/s", "vs 1 shard"],
        rows,
        title=(
            f"Sharded ingest throughput (k={budget}, "
            f"{len(stream):,} insertions, {cores} cores)"
        ),
    )
    emit(results_dir, "sharded_ingest", text)

    # Bit-identical across backends for the same shards + partition map.
    sharded = {
        label: estimate
        for label, (estimate, _) in results.items()
        if label != "1 shard / serial"
    }
    assert len(set(sharded.values())) == 1, sharded

    record_metric(
        "sharded_ingest_eps", max(eps for _, eps in results.values())
    )
    if quick:
        return
    process_speedup = results["4 shards / process"][1] / base_eps
    if cores >= SHARDS:
        assert process_speedup >= REQUIRED_SPEEDUP, (
            f"4 process shards reached only {process_speedup:.2f}x "
            f"(required {REQUIRED_SPEEDUP}x on {cores} cores)"
        )
    else:  # pragma: no cover - small CI machines
        print(
            f"\n[skip] {cores} core(s) available; the >= {REQUIRED_SPEEDUP}x "
            f"process-shard assertion needs >= {SHARDS} "
            f"(measured {process_speedup:.2f}x)"
        )
