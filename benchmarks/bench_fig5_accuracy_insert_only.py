"""Figure 5: relative error on insertion-only streams (alpha = 0%).

With no deletions, the insert-only baselines work as designed; ABACUS
must remain at least competitive (the paper finds it comparable to CAS
and better than FLEET on the denser graphs).  Everyone's error shrinks
as the sample grows.
"""

from conftest import emit

from repro.api import get_registration
from repro.experiments.figures import run_accuracy_vs_sample_size

TRIALS = 3

# Registry names resolved up front, so a typo fails in milliseconds
# instead of after minutes of figure generation.
METHODS = tuple(
    get_registration(name).name for name in ("abacus", "fleet", "cas")
)


def test_fig5_accuracy_insert_only(
    benchmark, ctx, results_dir, quick, bench_datasets
):
    result = benchmark.pedantic(
        run_accuracy_vs_sample_size,
        kwargs={
            "alpha": 0.0,
            "trials": 1 if quick else TRIALS,
            "methods": METHODS,
            "datasets": bench_datasets,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig5_accuracy_insert_only", result["text"])
    if quick:
        return  # single-trial errors are too noisy for the shape gates
    for name, data in result["results"].items():
        for method, errors in data["errors"].items():
            # At the largest budget every method is in a sane range
            # without deletions (paper: 0.2% - 13%; the scaled CAS is
            # noisier at small widths, so only the largest budget is
            # held to the bound).
            assert errors[-1] < 0.5, (name, method, errors)
        abacus = data["errors"]["abacus"]
        # ABACUS competitive and accurate at the largest budget.
        assert abacus[-1] <= abacus[0] * 1.5, (name, abacus)
        assert abacus[-1] < 0.15, (name, abacus)
