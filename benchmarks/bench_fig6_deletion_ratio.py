"""Figure 6: impact of the deletion ratio alpha on ABACUS.

(a) relative error across alpha in {5, 10, 20, 30}% — the paper finds
ABACUS consistently accurate (< 8%) and *unaffected* by alpha;
(b) throughput across alpha — steady per dataset.
"""

from conftest import emit

from repro.experiments.figures import run_deletion_ratio_impact


def test_fig6_deletion_ratio_impact(
    benchmark, ctx, results_dir, quick, bench_datasets
):
    result = benchmark.pedantic(
        run_deletion_ratio_impact,
        kwargs={
            "trials": 1 if quick else 2,
            "alphas": (0.05, 0.30) if quick else (0.05, 0.10, 0.20, 0.30),
            "datasets": bench_datasets,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig6_deletion_ratio", result["text"])
    if quick:
        return  # error/throughput spreads need the full trial matrix
    for dataset, errors in result["errors_pct"].items():
        # Accurate at every deletion ratio (generous scaled-down bound).
        assert all(e < 25.0 for e in errors), (dataset, errors)
        # "Unaffected by alpha": no error explosion from 5% to 30%.
        assert max(errors) < max(4.0 * min(errors), min(errors) + 10.0), (
            dataset,
            errors,
        )
    for dataset, rates in result["throughput_keps"].items():
        assert all(r > 0 for r in rates)
        # Throughput steady: spread within ~2.5x across alphas.
        assert max(rates) / min(rates) < 2.5, (dataset, rates)
