"""Figure 10: per-thread workload of PARABACUS (load balance).

Per-worker set-intersection element checks with k=mid, M=10K, 32
workers, on the densest (MovieLens-like) and sparsest (Orkut-like)
graphs, as in the paper.  Expected shape: near-equal workloads, with the
dense graph's per-thread load an order of magnitude above the sparse
one's.
"""

from conftest import emit

from repro.experiments.figures import run_load_balance


def test_fig10_load_balance(benchmark, ctx, results_dir, quick):
    result = benchmark.pedantic(
        run_load_balance,
        kwargs={
            "batch_size": 4_000 if quick else 10_000,
            "num_threads": 16 if quick else 32,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig10_load_balance", result["text"])
    movielens = result["results"]["movielens_like"]["balance"]
    orkut = result["results"]["orkut_like"]["balance"]
    # Balanced: max within ~1/3 of the mean on both graphs.  (The paper
    # measures steady state on 100M+ element streams; at reproduction
    # scale the first mini-batch — where the sample is still filling and
    # early chunks see smaller neighbourhoods — is a visible fraction of
    # the whole run, which adds a few percent of apparent imbalance.)
    if not quick:  # the smaller --quick batch inflates fill-phase skew
        assert movielens.imbalance < 1.35, movielens
        assert orkut.imbalance < 1.35, orkut
    # The dense graph does far more intersection work per thread.
    assert movielens.mean > 5 * orkut.mean, (movielens.mean, orkut.mean)
