"""Figure 3: relative error vs sample size with 20% deletions.

The paper's headline accuracy experiment: ABACUS vs FLEET vs CAS on all
four graphs while varying the memory budget.  Expected shape: ABACUS
errors small and shrinking with k; FLEET/CAS errors large (they discard
the deletions) and not repaired by more memory.  Also prints the
"ABACUS is N x more accurate" ratios behind the paper's up-to-148x
claim.
"""

from conftest import emit

from repro.api import get_registration
from repro.experiments.figures import run_accuracy_vs_sample_size

TRIALS = 3

# Registry names resolved up front, so a typo fails in milliseconds
# instead of after minutes of figure generation.
METHODS = tuple(
    get_registration(name).name for name in ("abacus", "fleet", "cas")
)


def test_fig3_accuracy_under_deletions(
    benchmark, ctx, results_dir, quick, bench_datasets
):
    result = benchmark.pedantic(
        run_accuracy_vs_sample_size,
        kwargs={
            "alpha": 0.2,
            "trials": 1 if quick else TRIALS,
            "methods": METHODS,
            "datasets": bench_datasets,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig3_accuracy_deletions", result["text"])
    if quick:
        return  # single-trial errors are too noisy for the shape gates
    for name, data in result["results"].items():
        abacus = data["errors"]["abacus"]
        fleet = data["errors"]["fleet"]
        cas = data["errors"]["cas"]
        # ABACUS beats both insert-only baselines at every sample size.
        assert all(a < f for a, f in zip(abacus, fleet)), (name, abacus, fleet)
        assert all(a < c for a, c in zip(abacus, cas)), (name, abacus, cas)
        # ABACUS stays in a usable range everywhere (the scaled sparse
        # Orkut analogue is noisiest at the smallest budget) and is
        # accurate at the largest budget (paper: 0.5% - 8.3%).
        assert all(a < 0.6 for a in abacus), (name, abacus)
        assert abacus[-1] < 0.25, (name, abacus)
        # Error shrinks as the sample grows.
        assert abacus[-1] < abacus[0], (name, abacus)
