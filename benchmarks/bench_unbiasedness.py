"""Extra: empirical verification of Theorem 1 (unbiasedness).

Averages 200 independent ABACUS runs on a small fully dynamic workload;
the sample mean must land within a few standard errors of the exact
count.  This is the evaluation-level counterpart of the statistical
tests in tests/core/test_unbiasedness.py.
"""

from conftest import emit

from repro.experiments.figures import run_unbiasedness


def test_unbiasedness_empirical(benchmark, results_dir, quick):
    result = benchmark.pedantic(
        run_unbiasedness,
        kwargs={"trials": 50 if quick else 200},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "unbiasedness", result["text"])
    assert result["truth"] > 0
    assert abs(result["z"]) < 4.0, result
