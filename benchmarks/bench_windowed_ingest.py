"""Throughput of the sliding-window engine (ISSUE 4 acceptance).

Measures end-to-end ingest elements/sec (input elements — the engine
additionally synthesizes one expiry deletion per insertion once the
window saturates, so it does roughly double the estimator work) for:

* the unwindowed ABACUS reference,
* windowed ABACUS driven per element,
* windowed ABACUS driven through ``process_batch`` at {64, 1024} —
  the batched expiry path that piggybacks expiry deletions on the
  PR-2 vectorized kernels.

Two contracts are asserted:

* the windowed estimate **equals** the estimate of the wrapped
  estimator run over the explicit insert+delete expansion
  (``repro.window.reference.expand_window_stream``) — every mode, both
  paths (the full bit-identity including state is enforced by
  ``tests/window/test_window_equivalence.py``);
* at batch 1024 the windowed batched path must run >= 2x the windowed
  per-element path (full runs only; ``--quick`` reports throughput to
  the ``tools/bench_runner.py`` floor gate instead).
"""

import random

from conftest import emit, record_metric

from repro.api import build_estimator
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.streams.dynamic import stream_from_edges
from repro.window import expand_window_stream

BATCH_SIZES = (64, 1024)


def _config(quick):
    """(budget, n_left/right, n_edges, window) for the selected mode."""
    return (2000, 60, 2600, 800) if quick else (6000, 100, 9000, 3000)


def _windowed_spec(budget, window):
    return (
        f"windowed:inner=[abacus:budget={budget},seed=11],window={window}"
    )


def _run_per_element(spec, stream):
    estimator = build_estimator(spec)
    watch = Stopwatch()
    with watch:
        for element in stream:
            estimator.process(element)
    return estimator.estimate, len(stream) / watch.elapsed


def _run_batched(spec, stream, batch_size):
    estimator = build_estimator(spec)
    watch = Stopwatch()
    with watch:
        for start in range(0, len(stream), batch_size):
            estimator.process_batch(stream[start : start + batch_size])
    return estimator.estimate, len(stream) / watch.elapsed


def test_windowed_ingest_throughput(benchmark, results_dir, quick):
    budget, n_side, n_edges, window = _config(quick)
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(5))
    stream = list(stream_from_edges(edges))
    spec = _windowed_spec(budget, window)

    def run():
        # The specification: the wrapped estimator over the explicit
        # insert+delete expansion of the same stream.
        reference = build_estimator(f"abacus:budget={budget},seed=11")
        for element in expand_window_stream(stream, window=window):
            reference.process(element)

        results = {}
        results["abacus (no window)"] = _run_per_element(
            f"abacus:budget={budget},seed=11", stream
        )
        estimate, eps = _run_per_element(spec, stream)
        assert estimate == reference.estimate, (estimate, reference.estimate)
        results["windowed / element"] = (estimate, eps)
        for batch_size in BATCH_SIZES:
            estimate, eps = _run_batched(spec, stream, batch_size)
            assert estimate == reference.estimate, (
                batch_size,
                estimate,
                reference.estimate,
            )
            results[f"windowed / batch={batch_size}"] = (estimate, eps)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    element_eps = results["windowed / element"][1]
    rows = [
        (
            label,
            f"{estimate:,.1f}",
            f"{eps:,.0f}",
            f"{eps / element_eps:.2f}x",
        )
        for label, (estimate, eps) in results.items()
    ]
    text = render_table(
        ["configuration", "estimate", "input el/s", "vs windowed element"],
        rows,
        title=(
            f"Windowed ingest throughput (k={budget}, W={window}, "
            f"{len(stream):,} insertions, "
            f"{max(0, len(stream) - window):,} expiries)"
        ),
    )
    emit(results_dir, "windowed_ingest", text)

    batched_eps = results[f"windowed / batch={BATCH_SIZES[-1]}"][1]
    record_metric("windowed_ingest_eps", batched_eps)
    if quick:
        return
    speedup = batched_eps / element_eps
    assert speedup >= 2.0, (
        f"windowed batch={BATCH_SIZES[-1]} path reached only "
        f"{speedup:.2f}x the per-element path (required 2x)"
    )
