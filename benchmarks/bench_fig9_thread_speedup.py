"""Figure 9: PARABACUS speedup vs number of threads (M = 10K).

Work-model speedup for p in {8, 16, 24, 32, 40}.  Expected shape:
speedup grows with the thread count and with the sample size (bigger
neighbourhoods -> more intersection work to parallelise).
"""

from conftest import emit

from repro.experiments.figures import run_thread_speedup


def test_fig9_thread_speedup(
    benchmark, ctx, results_dir, quick, bench_datasets
):
    result = benchmark.pedantic(
        run_thread_speedup,
        kwargs={
            "batch_size": 4_000 if quick else 10_000,
            "datasets": bench_datasets,
            "context": ctx,
        },
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig9_thread_speedup", result["text"])
    if quick:
        return  # speedup shapes need the full thread sweep
    for name, data in result["results"].items():
        for label, speedups in data["speedup"].items():
            assert all(s >= 1.0 for s in speedups), (name, label)
            # More threads never hurt meaningfully.
            assert speedups[-1] >= speedups[0] * 0.95, (name, label, speedups)
        # At p=40 and the largest budget, parallelism pays off.
        largest = list(data["speedup"].values())[-1]
        assert largest[-1] > 2.0, (name, largest)
