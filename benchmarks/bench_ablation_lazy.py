"""Ablation: ABACUS (count every edge) vs LazyAbacus (TRIEST-style).

Section VII contrasts TRIEST-style "discard unsampled edges" with
ThinkD/ABACUS-style "refine with every edge before discarding".  This
bench quantifies the trade on the LiveJournal-like stream: the lazy
variant does a small fraction of the intersection work but pays in
error.
"""

from conftest import emit

from repro.api import build_estimator
from repro.core.lazy import LazyAbacus
from repro.experiments.datasets import get_dataset
from repro.experiments.report import render_table
from repro.metrics.accuracy import relative_error

TRIALS = 4
BUDGET_INDEX = 1


def _run_variant(factory, ctx, spec, trials, alpha=0.2):
    errors = []
    work = 0
    counted = 0
    for trial in range(trials):
        estimator = factory(spec.base_seed + 997 * trial)
        stream = ctx.stream(spec, alpha, trial)
        estimate = estimator.process_stream(stream)
        errors.append(relative_error(ctx.truth(spec, alpha, trial), estimate))
        work += estimator.total_work
        counted += getattr(estimator, "counted_elements", len(stream))
    return sum(errors) / len(errors), work // trials, counted // trials


def test_ablation_lazy_vs_eager(benchmark, ctx, results_dir, quick):
    spec = get_dataset("livejournal_like")
    budget = spec.sample_sizes[BUDGET_INDEX]
    trials = 1 if quick else TRIALS

    def run():
        eager = _run_variant(
            lambda s: build_estimator(f"abacus:budget={budget},seed={s}"),
            ctx,
            spec,
            trials,
        )
        lazy = _run_variant(
            lambda s: LazyAbacus(budget, seed=s), ctx, spec, trials
        )
        return eager, lazy

    (eager, lazy) = benchmark.pedantic(run, rounds=1, iterations=1)
    eager_error, eager_work, eager_counted = eager
    lazy_error, lazy_work, lazy_counted = lazy
    text = render_table(
        [
            "Variant",
            "Mean rel. error",
            "Avg intersection work",
            "Elements counted",
        ],
        [
            (
                "ABACUS (every edge)",
                f"{eager_error:.2%}",
                eager_work,
                eager_counted,
            ),
            (
                "LazyAbacus (TRIEST-style)",
                f"{lazy_error:.2%}",
                lazy_work,
                lazy_counted,
            ),
        ],
        title=(
            f"Ablation: eager vs lazy counting "
            f"(LiveJournal-like, k={budget}, alpha=20%, {trials} trials)"
        ),
    )
    emit(results_dir, "ablation_lazy", text)
    # Lazy does meaningfully less work ...
    assert lazy_work < eager_work / 2, (lazy_work, eager_work)
    assert lazy_counted < eager_counted / 2
    # ... but eager is more accurate (statistical: full runs only).
    if not quick:
        assert eager_error < lazy_error, (eager_error, lazy_error)
