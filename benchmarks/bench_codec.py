"""Packed codec throughput: encode/decode and WAL v1-vs-v2 speedups.

Measures the format-2 record codec of ``repro/store/codec.py``
(ISSUE 10) on three layers:

* **codec only** — elements/sec through ``encode_element`` /
  ``decode_element`` versus the format-1 JSON path
  (``json.dumps(to_record)`` / ``from_record(json.loads)``),
* **WAL layer** — ``WalWriter`` ingest (CRC framing + fsync-batched
  appends) and ``iter_wal`` replay over a format-1 versus a format-2
  segment holding the same stream,
* **durable sessions** — end-to-end ``open_session(durable_dir=...)``
  ingest + cold recovery over v1 and v2 directories; this layer is
  estimator-bound, so it carries the *identity* assertions rather
  than the speedup bar.

Identity is asserted in every mode: both WAL segments must replay to
the exact same elements, and the v1 and v2 durable sessions — and
both cold recoveries — must be bit-identical (estimate + complete
``state_to_dict``) to the plain in-memory run.  Full (non ``--quick``)
runs additionally hold the ISSUE 10 acceptance bar: format-2 WAL
ingest *and* replay at least **1.5x** the format-1 elements/sec.

``codec_encode_eps`` and ``wal_v2_replay_eps`` feed the
``tools/bench_runner.py`` floor gate.
"""

import json
import random
import shutil

from conftest import emit, record_metric

from repro.api import open_session
from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.store import codec
from repro.store.wal import WalWriter, iter_wal
from repro.streams.dynamic import make_fully_dynamic
from repro.types import StreamElement

SPEC = "abacus:budget=1000,seed=17"


def _config(quick):
    """(n_side, n_edges) for the selected mode."""
    return (70, 4000) if quick else (140, 16000)


def _fingerprint(session):
    snapshot = session.snapshot()
    return json.dumps(
        {"estimate": session.estimate, "state": snapshot["state"]},
        sort_keys=True,
    )


def _codec_only(stream):
    """(encode_eps, decode_eps, json_encode_eps, json_decode_eps)."""
    watch = Stopwatch()
    with watch:
        packed = [codec.encode_element(element) for element in stream]
    encode_eps = len(stream) / watch.elapsed
    with watch:
        decoded = [codec.decode_element(payload) for payload in packed]
    decode_eps = len(stream) / watch.elapsed
    assert decoded == stream

    with watch:
        texts = [
            json.dumps(element.to_record(), separators=(",", ":"))
            for element in stream
        ]
    json_encode_eps = len(stream) / watch.elapsed
    with watch:
        via_json = [
            StreamElement.from_record(json.loads(text)) for text in texts
        ]
    json_decode_eps = len(stream) / watch.elapsed
    assert via_json == stream
    return encode_eps, decode_eps, json_encode_eps, json_decode_eps


def _wal_layer(path, stream, wal_format):
    """(ingest_eps, replay_eps) through the raw WAL for one format."""
    watch = Stopwatch()
    with watch:
        with WalWriter(path, format=wal_format) as wal:
            wal.append_batch(stream)
    ingest_eps = len(stream) / watch.elapsed
    with watch:
        replayed = list(iter_wal(path))
    replay_eps = len(stream) / watch.elapsed
    assert replayed == stream, (
        f"format-{wal_format} WAL replay diverged from the input"
    )
    return ingest_eps, replay_eps


def _durable_ingest(directory, stream, wal_format):
    session = open_session(
        SPEC, durable_dir=directory, wal_format=wal_format
    )
    watch = Stopwatch()
    with watch:
        session.ingest(stream)
        session.sync()
    fingerprint = _fingerprint(session)
    session.close()
    return fingerprint, len(stream) / watch.elapsed


def _recover(directory, expected_fingerprint, expected_elements):
    watch = Stopwatch()
    with watch:
        session = open_session(durable_dir=directory)
    assert session.elements == expected_elements
    assert _fingerprint(session) == expected_fingerprint, (
        "recovered state is not bit-identical to the logged run"
    )
    session.close()
    return expected_elements / watch.elapsed


def test_codec_throughput(benchmark, results_dir, quick, tmp_path):
    n_side, n_edges = _config(quick)
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(23))
    stream = list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(29)))

    def run():
        results = {}

        encode, decode, json_encode, json_decode = _codec_only(stream)
        results["codec: packed encode"] = encode
        results["codec: packed decode"] = decode
        results["codec: JSON encode"] = json_encode
        results["codec: JSON decode"] = json_decode

        v1_ingest, v1_replay = _wal_layer(
            tmp_path / "seg-v1.log", stream, 1
        )
        v2_ingest, v2_replay = _wal_layer(
            tmp_path / "seg-v2.log", stream, 2
        )
        results["WAL ingest: format 1 (JSON)"] = v1_ingest
        results["WAL ingest: format 2 (packed)"] = v2_ingest
        results["WAL replay: format 1 (JSON)"] = v1_replay
        results["WAL replay: format 2 (packed)"] = v2_replay

        plain = open_session(SPEC)
        plain.ingest(stream)
        reference = _fingerprint(plain)

        v1_dir, v2_dir = tmp_path / "wal-v1", tmp_path / "wal-v2"
        v1_print, v1_session = _durable_ingest(v1_dir, stream, 1)
        v2_print, v2_session = _durable_ingest(v2_dir, stream, 2)
        assert v1_print == v2_print == reference, (
            "durable ingest diverged between WAL formats"
        )
        results["session ingest: v1 dir"] = v1_session
        results["session ingest: v2 dir"] = v2_session
        results["session recovery: v1 dir"] = _recover(
            v1_dir, reference, len(stream)
        )
        results["session recovery: v2 dir"] = _recover(
            v2_dir, reference, len(stream)
        )

        shutil.rmtree(v1_dir)
        shutil.rmtree(v2_dir)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (label, f"{eps:,.0f}") for label, eps in results.items()
    ]
    text = render_table(
        ["configuration", "el/s"],
        rows,
        title=(
            f"Packed codec throughput ({len(stream):,} elements, "
            f"spec {SPEC})"
        ),
    )
    emit(results_dir, "codec", text)

    record_metric("codec_encode_eps", results["codec: packed encode"])
    record_metric("wal_v2_replay_eps", results["WAL replay: format 2 (packed)"])
    if quick:
        return
    # ISSUE 10 acceptance: the packed format must beat JSON by >= 1.5x
    # on both sides of the log, with recovery bit-identical (asserted
    # above for every mode).
    for side in ("ingest", "replay"):
        ratio = (
            results[f"WAL {side}: format 2 (packed)"]
            / results[f"WAL {side}: format 1 (JSON)"]
        )
        assert ratio >= 1.5, (
            f"packed WAL {side} is only {ratio:.2f}x the JSON format "
            "(required >= 1.5x)"
        )
    encode_ratio = (
        results["codec: packed encode"] / results["codec: JSON encode"]
    )
    assert encode_ratio >= 1.5, (
        f"packed encode is only {encode_ratio:.2f}x the JSON encoder "
        "(required >= 1.5x)"
    )
