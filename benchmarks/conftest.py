"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's
evaluation on the scaled synthetic analogues (see DESIGN.md).  Each
bench uses ``benchmark.pedantic(..., rounds=1)`` so the experiment runs
exactly once while still being timed, writes its rendered report to
``benchmarks/results/``, and echoes it to stdout (visible with ``-s``).

A single session-scoped :class:`ExperimentContext` is shared by all
benches so streams and ground truths are computed once.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a report file and echo it."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
