"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's
evaluation on the scaled synthetic analogues (see DESIGN.md).  Each
bench uses ``benchmark.pedantic(..., rounds=1)`` so the experiment runs
exactly once while still being timed, writes its rendered report to
``benchmarks/results/``, and echoes it to stdout (visible with ``-s``).

A single session-scoped :class:`ExperimentContext` is shared by all
benches so streams and ground truths are computed once.

Quick mode
----------

Every ``bench_*.py`` honors a shared ``--quick`` flag::

    PYTHONPATH=src python -m pytest benchmarks -s --quick

which shrinks workloads (fewer datasets/trials/elements) so the whole
suite finishes in CI-smoke time.  Quick runs keep every *identity*
assertion (estimates equal across paths/backends) but drop the
*statistical and speedup* assertions that only hold at full scale —
the CI perf gate lives in ``tools/bench_runner.py`` floors instead,
fed by :func:`record_metric`.

Metrics protocol
----------------

``tools/bench_runner.py`` sets the ``REPRO_BENCH_METRICS`` environment
variable to a writable path before invoking a bench.  Benches report
their headline numbers (elements/sec etc.) with
``record_metric("name", value)``; each call appends one JSON line to
that file.  Without the variable the call is a no-op, so interactive
runs need no setup.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Environment variable naming the metrics sink (see module docstring).
METRICS_ENV = "REPRO_BENCH_METRICS"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "shrink benchmark workloads to CI-smoke size (identity "
            "assertions kept; scale-dependent assertions skipped)"
        ),
    )


@pytest.fixture(scope="session")
def quick(request: pytest.FixtureRequest) -> bool:
    """Whether this run was invoked with ``--quick``."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def bench_datasets(quick):
    """Dataset subset for figure benches: trimmed under ``--quick``.

    The two extremes (densest and sparsest) stay in, so cross-dataset
    shape assertions remain meaningful when they do run.
    """
    return ["movielens_like", "orkut_like"] if quick else None


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a report file and echo it."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def record_metric(name: str, value: float) -> None:
    """Report one headline number to the bench runner, if one is listening.

    Appends ``{"metric": name, "value": value}`` as a JSON line to the
    file named by ``REPRO_BENCH_METRICS``; silently does nothing when
    the variable is unset (interactive/local runs).
    """
    path = os.environ.get(METRICS_ENV)
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"metric": name, "value": value}) + "\n")
