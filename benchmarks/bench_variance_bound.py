"""Extra: empirical variance vs the Theorem 2 upper bound.

Runs ABACUS many times per memory budget on a fixed insert-only
workload; the sample variance must stay below the closed-form bound
(with sampling slack), and shrink as the budget grows.
"""

from conftest import emit

from repro.experiments.extensions import run_variance_bound


def test_variance_bound(benchmark, results_dir, quick):
    result = benchmark.pedantic(
        run_variance_bound,
        kwargs={"trials": 40 if quick else 150},
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "variance_bound", result["text"])
    series = result["series"]
    # Theorem 2: empirical variance below the bound (50% slack for the
    # finite-trial estimate of the variance itself; doubled under
    # --quick where the variance estimate itself is noisier).
    slack = 3.0 if quick else 1.5
    for budget, info in series.items():
        assert info["ratio"] < slack, (budget, info)
    if not quick:
        # Variance decreases with the budget.
        budgets = sorted(series)
        assert (
            series[budgets[-1]]["empirical"] < series[budgets[0]]["empirical"]
        )
