"""Cost of elastic resharding (ISSUE 8 acceptance).

Two headline numbers feed the CI perf gate in
``tools/bench_runner.py``:

* ``reshard_eps`` — residue-replay throughput (live edges replayed
  per second) of a live ``ShardedEstimator.reshard``, measured across
  the split / merge / remix transitions.  The replay is the whole
  cost of a topology change, so this is the "how long is the write
  path paused" number — gated by a **floor**.
* ``autoscale_settle_s`` — wall-clock seconds for a closed loop
  (ingest → ``Autoscaler.observe`` → ``reshard``) to grow a 1-shard
  engine to ``max_shards`` under sustained overload.  Settle time is
  a latency, so it is gated by a **ceiling**.

Identity assertions kept in every mode:

* each reshard replays exactly the live-edge count and preserves the
  estimate's unbiased merge (the engine stays queryable with a finite
  estimate on the new topology);
* the autoscale loop actually reaches ``max_shards`` and every epoch
  bump is one split (1 -> 2 -> 4).
"""

import random

from conftest import emit, record_metric

from repro.experiments.report import render_table
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.throughput import Stopwatch
from repro.shard.autoscale import Autoscaler
from repro.shard.engine import ShardedEstimator
from repro.streams.dynamic import make_fully_dynamic

MAX_SHARDS = 4

#: The measured transitions: (label, starting K, target K).
TRANSITIONS = (
    ("split 2 -> 4", 2, 4),
    ("merge 4 -> 2", 4, 2),
    ("remix 4 -> 4", 4, 4),
)


def _config(quick):
    """(budget, n_left/right, n_edges) for the selected mode."""
    return (2000, 60, 3000) if quick else (6000, 100, 9000)


def _stream(n_side, n_edges, seed=17):
    edges = bipartite_erdos_renyi(n_side, n_side, n_edges, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.2, rng=random.Random(seed + 1))
    )


def test_reshard_replay_throughput(benchmark, results_dir, quick):
    budget, n_side, n_edges = _config(quick)
    spec = f"abacus:budget={budget},seed=11"
    stream = _stream(n_side, n_edges)

    def run():
        reports = {}
        for label, old_k, new_k in TRANSITIONS:
            engine = ShardedEstimator(spec, shards=old_k)
            engine.process_batch(stream)
            live = engine.live_edges
            report = engine.reshard(new_k)
            assert report.replayed_edges == live
            assert engine.num_shards == new_k
            assert engine.estimate >= 0.0
            reports[label] = (report, engine.estimate)
            engine.close()
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    best_eps = 0.0
    for label, (report, estimate) in reports.items():
        eps = report.replayed_edges / report.seconds
        best_eps = max(best_eps, eps)
        rows.append(
            (
                label,
                f"{report.replayed_edges:,}",
                f"{report.moved_edges:,}",
                f"{report.seconds * 1000:.1f}",
                f"{eps:,.0f}",
                f"{estimate:,.1f}",
            )
        )
    text = render_table(
        ["transition", "replayed", "moved", "ms", "edges/s", "estimate"],
        rows,
        title=(
            f"Reshard residue replay (k={budget}, "
            f"{len(stream):,} stream elements)"
        ),
    )
    emit(results_dir, "reshard_replay", text)
    record_metric("reshard_eps", best_eps)


def test_autoscale_settle_time(benchmark, results_dir, quick):
    budget, n_side, n_edges = _config(quick)
    spec = f"abacus:budget={budget},seed=11"
    stream = _stream(n_side, n_edges, seed=19)
    # Chunks sized so every observation is far out of band: the bench
    # measures mechanism latency (observe + reshard + replay), not how
    # long the policy chooses to wait.
    chunk = max(1, len(stream) // 20)
    scaler = Autoscaler(
        max_shards=MAX_SHARDS,
        high_load=float(chunk) / (2 * MAX_SHARDS),
        low_load=1.0,
        dwell=1,
        settle_elements=0,
    )

    def run():
        engine = ShardedEstimator(spec, shards=1)
        epochs = [0]
        watch = Stopwatch()
        with watch:
            offset = 0
            while engine.num_shards < MAX_SHARDS and offset < len(stream):
                engine.process_batch(stream[offset : offset + chunk])
                offset += chunk
                decision = scaler.observe(engine)
                if decision.should_reshard:
                    engine.reshard(decision.target_shards)
                    epochs.append(engine.epoch)
        settled = engine.num_shards
        engine.close()
        return watch.elapsed, settled, epochs

    settle_s, settled, epochs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # The loop must actually converge, one doubling per epoch bump.
    assert settled == MAX_SHARDS, (settled, epochs)
    assert epochs == list(range(len(epochs)))
    text = render_table(
        ["max shards", "reshards", "settle (s)"],
        [(str(MAX_SHARDS), str(len(epochs) - 1), f"{settle_s:.3f}")],
        title=(
            f"Autoscale settle: 1 -> {MAX_SHARDS} shards under "
            f"sustained overload (k={budget})"
        ),
    )
    emit(results_dir, "autoscale_settle", text)
    record_metric("autoscale_settle_s", settle_s)
