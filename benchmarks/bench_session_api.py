"""Session facade overhead and snapshot/restore round-trip cost.

The :mod:`repro.api` session is now the path every consumer takes, so
its per-element overhead over driving an estimator directly must stay
negligible, and a snapshot → restore cycle must stay cheap enough to
checkpoint long-running jobs frequently.  Both are asserted here, and
the restore is verified to continue bit-identically (the contract the
unit suite checks per-estimator; this bench exercises it at evaluation
scale on a real dataset stream).
"""

import json

from conftest import emit

from repro.api import build_estimator, open_session, restore_session
from repro.experiments.datasets import get_dataset
from repro.experiments.report import render_table
from repro.metrics.throughput import Stopwatch

BUDGET = 1500
PREFIX = 20_000
SPEC = f"abacus:budget={BUDGET},seed=11"


def _stream_prefix(quick):
    spec = get_dataset("livejournal_like")
    return list(
        spec.stream(alpha=0.2, trial=0).prefix(5000 if quick else PREFIX)
    )


def test_session_overhead(benchmark, results_dir, quick):
    stream = _stream_prefix(quick)

    def run():
        direct = build_estimator(SPEC)
        direct_watch = Stopwatch()
        with direct_watch:
            for element in stream:
                direct.process(element)
        with open_session(SPEC) as session:
            session_watch = Stopwatch()
            with session_watch:
                session.ingest(stream)
            assert session.estimate == direct.estimate
        return direct_watch.elapsed, session_watch.elapsed

    direct_s, session_s = benchmark.pedantic(
        run, rounds=1 if quick else 3, iterations=1
    )
    overhead = session_s / direct_s - 1.0
    text = render_table(
        ["Path", "Elements/s"],
        [
            ("direct process()", f"{len(stream) / direct_s:,.0f}"),
            ("Session.ingest()", f"{len(stream) / session_s:,.0f}"),
            ("overhead", f"{overhead:+.1%}"),
        ],
        title=f"Session facade overhead ({len(stream)} elements, k={BUDGET})",
    )
    emit(results_dir, "session_overhead", text)
    # The facade may cost something (timing + observer hooks) but must
    # stay within 2x of the direct loop.  Full runs only: the --quick
    # stream is tens of milliseconds, where one scheduler stall flips
    # the wall-clock ratio.
    if not quick:
        assert session_s < 2.0 * direct_s, (direct_s, session_s)


def test_snapshot_restore_roundtrip(benchmark, results_dir, quick):
    stream = _stream_prefix(quick)
    half = len(stream) // 2

    def run():
        session = open_session(SPEC)
        session.ingest(stream[:half])
        watch = Stopwatch()
        with watch:
            payload = json.dumps(session.snapshot())
            resumed = restore_session(json.loads(payload))
        resumed.ingest(stream[half:])
        return watch.elapsed, len(payload), resumed.estimate

    elapsed, payload_bytes, resumed_estimate = benchmark.pedantic(
        run, rounds=1 if quick else 3, iterations=1
    )
    uninterrupted = build_estimator(SPEC)
    for element in stream:
        uninterrupted.process(element)
    assert resumed_estimate == uninterrupted.estimate
    text = render_table(
        ["Metric", "Value"],
        [
            ("snapshot+restore", f"{elapsed * 1000:.2f} ms"),
            ("payload size", f"{payload_bytes:,} bytes"),
            ("bit-identical continuation", "yes"),
        ],
        title=f"Snapshot round-trip at element {half} (k={BUDGET})",
    )
    emit(results_dir, "session_snapshot", text)
    # Checkpointing must stay cheap: well under a second at this scale.
    assert elapsed < 1.0, elapsed
