"""Unit tests for the CRC-framed write-ahead log."""

import os

import pytest

from repro.errors import StoreError
from repro.store.wal import WAL_MAGIC, WalWriter, iter_wal, scan_wal
from repro.types import (
    StreamElement,
    deletion,
    insertion,
    timed_deletion,
    timed_insertion,
)

ELEMENTS = [
    insertion("alice", "matrix"),
    deletion("alice", "matrix"),
    insertion(3, 7),
    timed_insertion("bob", "dune", 1.5),
    timed_deletion(9, 9, 2.0),
]


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal-0.log"


class TestRoundTrip:
    def test_elements_round_trip_exactly(self, wal_path):
        with WalWriter(wal_path) as wal:
            for element in ELEMENTS:
                wal.append(element)
        assert list(iter_wal(wal_path)) == ELEMENTS

    def test_timed_edges_keep_their_subclass(self, wal_path):
        with WalWriter(wal_path) as wal:
            wal.append(timed_insertion("u", "v", 4.25))
        (element,) = list(iter_wal(wal_path))
        assert type(element).__name__ == "TimedEdge"
        assert element.time == 4.25

    def test_append_batch_counts(self, wal_path):
        with WalWriter(wal_path) as wal:
            assert wal.append_batch(ELEMENTS) == len(ELEMENTS)
            assert wal.appended == len(ELEMENTS)
        assert list(iter_wal(wal_path)) == ELEMENTS

    def test_scan_reports_clean_file(self, wal_path):
        with WalWriter(wal_path) as wal:
            wal.append_batch(ELEMENTS)
        scan = scan_wal(wal_path)
        assert scan.records == len(ELEMENTS)
        assert scan.clean
        assert scan.valid_bytes == os.path.getsize(wal_path)

    def test_empty_wal_is_clean(self, wal_path):
        WalWriter(wal_path).close()
        scan = scan_wal(wal_path)
        assert (scan.records, scan.clean) == (0, True)
        assert list(iter_wal(wal_path)) == []

    def test_reopen_appends_after_existing_records(self, wal_path):
        with WalWriter(wal_path) as wal:
            wal.append(ELEMENTS[0])
        with WalWriter(wal_path) as wal:
            wal.append(ELEMENTS[1])
        assert list(iter_wal(wal_path)) == ELEMENTS[:2]


class TestTornTails:
    def _full_file(self, wal_path):
        with WalWriter(wal_path) as wal:
            wal.append_batch(ELEMENTS)
        return wal_path.read_bytes()

    def test_every_byte_truncation_recovers_a_prefix(
        self, wal_path, tmp_path
    ):
        data = self._full_file(wal_path)
        previous_records = len(ELEMENTS)
        torn = tmp_path / "torn.log"
        for cut in range(len(data), -1, -1):
            torn.write_bytes(data[:cut])
            scan = scan_wal(torn)
            # Records decay monotonically with the cut and parsed
            # elements always form an exact prefix.
            assert scan.records <= previous_records
            previous_records = scan.records
            assert list(iter_wal(torn)) == ELEMENTS[: scan.records]
            assert scan.valid_bytes <= cut
            if not scan.clean:
                assert scan.valid_bytes < cut or cut < len(WAL_MAGIC)
        assert previous_records == 0

    def test_corrupt_byte_in_tail_record_is_discarded(self, wal_path):
        data = bytearray(self._full_file(wal_path))
        data[-3] ^= 0xFF
        wal_path.write_bytes(bytes(data))
        scan = scan_wal(wal_path)
        assert scan.records == len(ELEMENTS) - 1
        assert not scan.clean
        assert list(iter_wal(wal_path)) == ELEMENTS[:-1]

    def test_absurd_length_field_stops_the_scan(self, wal_path):
        data = self._full_file(wal_path)
        wal_path.write_bytes(
            data + (1 << 30).to_bytes(4, "little") + b"\0\0\0\0"
        )
        scan = scan_wal(wal_path)
        assert scan.records == len(ELEMENTS)
        assert not scan.clean


class TestForeignFiles:
    def test_wrong_magic_raises(self, tmp_path):
        path = tmp_path / "not-a-wal.log"
        path.write_bytes(b"definitely not a wal file")
        with pytest.raises(StoreError, match="not a repro WAL"):
            scan_wal(path)
        with pytest.raises(StoreError, match="not a repro WAL"):
            list(iter_wal(path))
        with pytest.raises(StoreError, match="not a repro WAL"):
            WalWriter(path)

    def test_torn_header_counts_as_empty(self, tmp_path):
        path = tmp_path / "torn-header.log"
        path.write_bytes(WAL_MAGIC[:3])
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes, scan.clean) == (0, 0, False)
        assert list(iter_wal(path)) == []

    def test_valid_frame_with_garbage_payload_raises_on_iter(
        self, wal_path
    ):
        import json
        import struct
        import zlib

        payload = json.dumps(["?", 1]).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload))
        wal_path.write_bytes(WAL_MAGIC + frame + payload)
        assert scan_wal(wal_path).records == 1  # checksum is fine
        with pytest.raises(StoreError, match="failed to decode"):
            list(iter_wal(wal_path))


class TestWriterContract:
    def test_fsync_every_must_be_positive(self, wal_path):
        with pytest.raises(StoreError, match="fsync_every"):
            WalWriter(wal_path, fsync_every=0)

    def test_sync_makes_records_visible(self, wal_path):
        wal = WalWriter(wal_path, fsync_every=10_000)
        try:
            wal.append(ELEMENTS[0])
            wal.sync()
            assert scan_wal(wal_path).records == 1
        finally:
            wal.close()

    def test_element_count_survives_fsync_batching(self, wal_path):
        elements = [insertion(i, -i) for i in range(1, 100)]
        with WalWriter(wal_path, fsync_every=7) as wal:
            for element in elements:
                wal.append(element)
        assert list(iter_wal(wal_path)) == elements

    def test_close_is_idempotent(self, wal_path):
        wal = WalWriter(wal_path)
        wal.close()
        wal.close()

    def test_truncate_to_undoes_appends(self, wal_path):
        with WalWriter(wal_path) as wal:
            wal.append(ELEMENTS[0])
            mark = wal.position()
            wal.append_batch(ELEMENTS[1:])
            wal.truncate_to(mark, len(ELEMENTS) - 1)
            assert wal.appended == 1
            # The log continues cleanly after the rollback.
            wal.append(ELEMENTS[2])
        assert list(iter_wal(wal_path)) == [ELEMENTS[0], ELEMENTS[2]]
        assert scan_wal(wal_path).clean

    def test_truncate_forward_refuses(self, wal_path):
        with WalWriter(wal_path) as wal:
            wal.append(ELEMENTS[0])
            with pytest.raises(StoreError, match="truncate forward"):
                wal.truncate_to(wal.position() + 1, 0)

    def test_round_trips_through_element_records(self):
        # The WAL payload is exactly the shared record grammar.
        for element in ELEMENTS:
            record = element.to_record()
            assert StreamElement.from_record(record) == element
