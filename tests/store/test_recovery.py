"""The crash-recovery contract: kill-at-every-offset bit-identity.

ISSUE 5 acceptance: for ABACUS, PARABACUS, sharded, and windowed
durable sessions, killing the process at **any** byte of the
write-ahead log and recovering (latest snapshot + WAL-tail replay)
must land in a state bit-identical — estimate *and* complete estimator
``state_to_dict()`` — to a process that ingested the surviving prefix
uninterrupted.  And continuing the recovered session over the rest of
the stream must end bit-identical to the uninterrupted full run.

The ABACUS matrix cuts the log at literally every byte (torn frame
headers, torn payloads, torn file magic included); the heavier specs
probe every record boundary plus offsets that tear the next frame's
header and payload.
"""

import json
import random
import struct

import pytest

from repro.api import open_session
from repro.graph.generators import bipartite_erdos_renyi
from repro.store.wal import WAL_MAGIC
from repro.streams import make_fully_dynamic

_FRAME = struct.Struct("<II")

#: (id, spec, kill granularity) — the acceptance matrix.
SPECS = [
    ("abacus", "abacus:budget=48,seed=11", "byte"),
    (
        "parabacus",
        "parabacus:budget=64,seed=11,batch_size=7",
        "record",
    ),
    (
        "sharded",
        "sharded:inner=[abacus:budget=32,seed=5],shards=3",
        "record",
    ),
    (
        "windowed",
        "windowed:inner=[abacus:budget=32,seed=5],window=25",
        "record",
    ),
]


def _stream(seed=3):
    edges = bipartite_erdos_renyi(12, 12, 50, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.25, rng=random.Random(seed + 1))
    )


def _fingerprint(session):
    """Canonical bit-identity fingerprint: estimate + full state."""
    snapshot = session.snapshot()
    return json.dumps(
        {"estimate": session.estimate, "state": snapshot["state"]},
        sort_keys=True,
    )


def _reference_fingerprints(spec, stream):
    """Fingerprint after every prefix of an uninterrupted run."""
    session = open_session(spec)
    fingerprints = [_fingerprint(session)]
    for element in stream:
        session.ingest(element)
        fingerprints.append(_fingerprint(session))
    return fingerprints


def _build_durable_dir(directory, spec, stream, checkpoint_at=None):
    """Ingest ``stream`` durably; optionally checkpoint mid-way."""
    session = open_session(spec, durable_dir=directory)
    if checkpoint_at is not None:
        session.ingest(stream[:checkpoint_at])
        assert session.checkpoint() == checkpoint_at
        session.ingest(stream[checkpoint_at:])
    else:
        session.ingest(stream)
    # A crash does not close() anything — but the kill points below
    # only make sense over bytes that reached the file, so force the
    # OS buffers out (the estimator is simply dropped, like a crash).
    session.sync()
    return session


def _last_segment(directory):
    segments = sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith("wal-")
    )
    assert segments
    return segments[-1]


def _frame_boundaries(data):
    """Byte offsets of every record boundary (header included)."""
    boundaries = [min(len(data), len(WAL_MAGIC))]
    position = len(WAL_MAGIC)
    while position + _FRAME.size <= len(data):
        length, _ = _FRAME.unpack(data[position : position + _FRAME.size])
        nxt = position + _FRAME.size + length
        if nxt > len(data):
            break
        position = nxt
        boundaries.append(position)
    return boundaries


def _kill_points(data, granularity):
    if granularity == "byte":
        return list(range(len(data) + 1))
    points = set()
    for boundary in _frame_boundaries(data):
        # The clean cut, a torn frame header, and a torn payload.
        points.update(
            cut
            for cut in (boundary, boundary + 3, boundary + 11)
            if cut <= len(data)
        )
    points.update((0, 3, len(data)))  # torn magic + the full file
    return sorted(points)


@pytest.mark.parametrize(
    "spec,granularity",
    [(spec, granularity) for _, spec, granularity in SPECS],
    ids=[name for name, _, _ in SPECS],
)
class TestKillAtEveryOffset:
    def _run_matrix(self, tmp_path, spec, granularity, checkpoint_at):
        stream = _stream()
        references = _reference_fingerprints(spec, stream)
        directory = tmp_path / "durable"
        _build_durable_dir(
            directory, spec, stream, checkpoint_at=checkpoint_at
        )
        segment = _last_segment(directory)
        data = segment.read_bytes()
        floor = checkpoint_at or 0
        recovered_counts = set()
        for cut in _kill_points(data, granularity):
            segment.write_bytes(data[:cut])
            session = open_session(durable_dir=directory)
            count = session.elements
            assert count >= floor, (cut, count)
            assert _fingerprint(session) == references[count], (
                f"recovery at byte {cut} (= {count} elements) is not "
                "bit-identical to the uninterrupted run"
            )
            session.close()
            recovered_counts.add(count)
        assert min(recovered_counts) == floor
        assert max(recovered_counts) == len(stream)
        # The kill matrix must actually exercise intermediate offsets.
        assert len(recovered_counts) > 2

    def test_without_checkpoint(self, tmp_path, spec, granularity):
        """Recovery = full WAL replay through a fresh estimator."""
        self._run_matrix(tmp_path, spec, granularity, checkpoint_at=None)

    def test_with_mid_stream_checkpoint(
        self, tmp_path, spec, granularity
    ):
        """Recovery = snapshot restore + WAL-tail replay."""
        stream_length = len(_stream())
        self._run_matrix(
            tmp_path, spec, granularity, checkpoint_at=stream_length // 2
        )


class TestKillAtEveryOffsetV1:
    """The same byte-granularity matrix over a format-1 durable dir.

    New segments default to the packed format 2 (so the SPECS matrix
    above already runs over v2 directories); pinning
    ``DEFAULT_WAL_FORMAT`` back to 1 re-runs the same contract over
    the JSON format — v1 directories must keep recovering
    bit-identically forever, not merely stay readable.
    """

    @pytest.mark.parametrize("checkpoint_at", [None, "half"])
    def test_v1_byte_matrix(self, tmp_path, monkeypatch, checkpoint_at):
        import repro.store.wal as wal_module

        monkeypatch.setattr(wal_module, "DEFAULT_WAL_FORMAT", 1)
        spec = "abacus:budget=48,seed=11"
        stream = _stream()
        if checkpoint_at == "half":
            checkpoint_at = len(stream) // 2
        references = _reference_fingerprints(spec, stream)
        directory = tmp_path / "durable"
        _build_durable_dir(
            directory, spec, stream, checkpoint_at=checkpoint_at
        )
        segment = _last_segment(directory)
        assert segment.read_bytes()[:8] == WAL_MAGIC  # really v1
        data = segment.read_bytes()
        floor = checkpoint_at or 0
        recovered_counts = set()
        for cut in _kill_points(data, "byte"):
            segment.write_bytes(data[:cut])
            session = open_session(durable_dir=directory)
            count = session.elements
            assert count >= floor, (cut, count)
            assert _fingerprint(session) == references[count], (
                f"v1 recovery at byte {cut} is not bit-identical"
            )
            session.close()
            recovered_counts.add(count)
        assert min(recovered_counts) == floor
        assert max(recovered_counts) == len(stream)


@pytest.mark.parametrize(
    "spec",
    [spec for _, spec, _ in SPECS],
    ids=[name for name, _, _ in SPECS],
)
def test_recovery_then_continuation_matches_uninterrupted(
    tmp_path, spec
):
    """Crash, recover, keep ingesting: the end state is identical."""
    stream = _stream(seed=9)
    checkpoint_at = len(stream) // 2
    references = _reference_fingerprints(spec, stream)
    directory = tmp_path / "durable"
    _build_durable_dir(directory, spec, stream, checkpoint_at=checkpoint_at)
    segment = _last_segment(directory)
    data = segment.read_bytes()
    boundaries = _frame_boundaries(data)
    for cut in (boundaries[0], boundaries[len(boundaries) // 2] + 5):
        segment.write_bytes(data[:cut])
        session = open_session(durable_dir=directory)
        survivors = session.elements
        session.ingest(stream[survivors:])
        assert session.elements == len(stream)
        assert _fingerprint(session) == references[len(stream)]
        session.close()


class TestMixedFormatHistory:
    """A directory whose segment history spans WAL formats.

    The upgrade story ``docs/persistence.md`` promises: a directory
    written entirely under format 1 is recovered by a format-2 binary,
    its next checkpoint rotates onto a packed segment (new segments
    always use the running default), and from then on v1 and v2
    segments coexist in one contiguous log.  Recovery must replay
    across the format boundary bit-identically, and serving over the
    mixed directory must just work.
    """

    def _build_mixed_dir(self, directory, spec, stream, monkeypatch):
        """v1 era (checkpoint early so its segment survives pruning),
        then recover + checkpoint + continue under the v2 default.
        Returns (quarter, half) checkpoint offsets."""
        import repro.store.wal as wal_module

        quarter, half = len(stream) // 4, len(stream) // 2
        with monkeypatch.context() as patch:
            patch.setattr(wal_module, "DEFAULT_WAL_FORMAT", 1)
            session = open_session(spec, durable_dir=directory)
            session.ingest(stream[:quarter])
            assert session.checkpoint() == quarter
            session.ingest(stream[quarter:half])
            session.close()
        # The v2 era: the running default is back to the packed format.
        session = open_session(durable_dir=directory)
        assert session.elements == half
        assert session.checkpoint() == half  # rotates onto a v2 segment
        session.ingest(stream[half:])
        session.close()
        return quarter, half

    def test_recovery_is_bit_identical_across_the_format_boundary(
        self, tmp_path, monkeypatch
    ):
        from repro.store.wal import scan_wal

        spec = "abacus:budget=48,seed=11"
        stream = _stream()
        references = _reference_fingerprints(spec, stream)
        directory = tmp_path / "durable"
        self._build_mixed_dir(directory, spec, stream, monkeypatch)
        # Both formats genuinely coexist on disk.
        formats = {
            scan_wal(path).format
            for path in sorted(directory.glob("wal-*.log"))
        }
        assert formats == {1, 2}
        recovered = open_session(durable_dir=directory)
        assert recovered.elements == len(stream)
        assert _fingerprint(recovered) == references[len(stream)]
        recovered.close()

    def test_kill_matrix_over_the_packed_tail_segment(
        self, tmp_path, monkeypatch
    ):
        """Every-byte kills in the v2 tail recover over the v1 base."""
        from repro.store.wal import WAL_MAGIC_V2, scan_wal

        spec = "abacus:budget=48,seed=11"
        stream = _stream()
        references = _reference_fingerprints(spec, stream)
        directory = tmp_path / "durable"
        _, half = self._build_mixed_dir(
            directory, spec, stream, monkeypatch
        )
        segment = _last_segment(directory)
        data = segment.read_bytes()
        assert data[:8] == WAL_MAGIC_V2
        recovered_counts = set()
        for cut in _kill_points(data, "byte"):
            segment.write_bytes(data[:cut])
            session = open_session(durable_dir=directory)
            count = session.elements
            assert count >= half, (cut, count)
            assert _fingerprint(session) == references[count], (
                f"mixed-format recovery at byte {cut} is not "
                "bit-identical"
            )
            session.close()
            recovered_counts.add(count)
        assert min(recovered_counts) == half
        assert max(recovered_counts) == len(stream)

    def test_serving_over_a_mixed_format_directory_works(
        self, tmp_path, monkeypatch
    ):
        from repro.serve import ServeClient, serve_in_background
        from repro.types import insertion

        spec = "abacus:budget=48,seed=11"
        stream = _stream()
        directory = tmp_path / "durable"
        self._build_mixed_dir(directory, spec, stream, monkeypatch)
        session = open_session(durable_dir=directory)
        expected = session.estimate
        with serve_in_background(session) as background:
            with ServeClient(*background.address, binary=True) as client:
                assert client.estimate()["estimate"] == expected
                result = client.ingest(
                    [insertion("mix-u", "mix-v")]
                )
                assert result["accepted"] == 1
                snapshot = client.snapshot()
        assert snapshot["session"]["elements"] == len(stream) + 1


def test_timed_edges_survive_the_log(tmp_path):
    """A time-windowed durable session recovers clock and ring."""
    from repro.types import timed_insertion

    spec = "windowed:inner=[exact],window_time=4"
    elements = [
        timed_insertion(u, v, float(t))
        for t, (u, v) in enumerate(
            [("u1", "v1"), ("u1", "v2"), ("u2", "v1"), ("u2", "v2")]
        )
    ]
    directory = tmp_path / "durable"
    session = open_session(spec, durable_dir=directory)
    session.ingest(elements)
    session.sync()
    estimate = session.estimate
    clock = session.estimator.clock
    recovered = open_session(durable_dir=directory)
    assert recovered.elements == len(elements)
    assert recovered.estimate == estimate == 1.0
    assert recovered.estimator.clock == clock == 3.0
    recovered.close()
