"""Differential conformance: the packed codec vs the JSON record path.

The packed encoding (:mod:`repro.store.codec`, format 2) is only
shippable as the default WAL format because it is **provably
lossless** against the JSON record grammar that format 1, the serve
wire, and the snapshot files all speak.  This suite is that proof's
deterministic half (``tests/properties/test_codec_fuzz.py`` is the
randomized half): for every element shape the record grammar admits,
``decode(encode(e))`` must equal the element *and* agree with
``from_record(to_record(e))`` — same value, same subclass, same
timestamp bits.  The rest of the file pins the decoder's refusal
behavior: every malformed payload must raise
:class:`~repro.errors.CodecError`, never return a wrong element.
"""

import json
import math
import struct

import pytest

from repro.errors import CodecError
from repro.store import codec
from repro.types import (
    Op,
    StreamElement,
    TimedEdge,
    insertion,
    timed_insertion,
)

# Every deterministic element shape: (label, element).
SHAPES = [
    ("int-insert", StreamElement(1, 2, Op.INSERT)),
    ("int-delete", StreamElement(3, 4, Op.DELETE)),
    ("int-zero", StreamElement(0, 0, Op.INSERT)),
    ("int-negative", StreamElement(-5, -6, Op.DELETE)),
    (
        "int64-boundaries",
        StreamElement(-(1 << 63), (1 << 63) - 1, Op.INSERT),
    ),
    ("big-int", StreamElement(1 << 80, -(1 << 80), Op.INSERT)),
    ("big-int-edge", StreamElement((1 << 63), -(1 << 63) - 1, Op.DELETE)),
    ("str-ascii", StreamElement("alice", "matrix", Op.INSERT)),
    ("str-empty", StreamElement("", "", Op.DELETE)),
    ("str-unicode", StreamElement("héllo", "wörld", Op.INSERT)),
    ("str-cjk", StreamElement("蝶", "数", Op.DELETE)),
    ("str-emoji", StreamElement("\U0001f98b", "\U0001f9ee", Op.INSERT)),
    ("str-newline", StreamElement("a\nb", 'c"d', Op.INSERT)),
    ("mixed-int-str", StreamElement(7, "x", Op.INSERT)),
    ("mixed-str-int", StreamElement("x", -7, Op.DELETE)),
    ("long-key", StreamElement("k" * 1000, "v" * 1000, Op.INSERT)),
    (
        "key-at-cap",
        StreamElement("a" * codec.MAX_KEY_BYTES, 1, Op.INSERT),
    ),
    ("timed-zero", TimedEdge(1, 2, Op.INSERT, 0.0)),
    ("timed-negative", TimedEdge(3, 4, Op.DELETE, -1.5)),
    ("timed-negzero", TimedEdge(5, 6, Op.INSERT, -0.0)),
    ("timed-huge", TimedEdge(7, 8, Op.INSERT, 1e300)),
    ("timed-tiny", TimedEdge(9, 10, Op.DELETE, 5e-324)),
    ("timed-str", TimedEdge("u", "v", Op.INSERT, 1.25)),
    ("timed-big-int", TimedEdge(1 << 70, 2, Op.INSERT, 3.5)),
    ("timed-long-key", TimedEdge("k" * 999, 1, Op.DELETE, 7.0)),
    # Bool vertices have no packed kind but survive the JSON record
    # path (bool is JSON-representable), so they must round-trip via
    # the escape.
    ("escape-bool", StreamElement(True, False, Op.INSERT)),
    ("escape-timed-bool", TimedEdge(True, 2, Op.DELETE, 1.0)),
    (
        "escape-over-cap",
        StreamElement("a" * (codec.MAX_KEY_BYTES + 1), 1, Op.INSERT),
    ),
]
IDS = [label for label, _ in SHAPES]
ELEMENTS = [element for _, element in SHAPES]


class TestDifferentialRoundTrip:
    """Packed decode(encode(e)) must match the JSON path exactly."""

    @pytest.mark.parametrize("element", ELEMENTS, ids=IDS)
    def test_packed_round_trip_is_identity(self, element):
        decoded = codec.decode_element(codec.encode_element(element))
        assert decoded == element
        assert type(decoded) is type(element)

    @pytest.mark.parametrize("element", ELEMENTS, ids=IDS)
    def test_packed_agrees_with_the_json_path(self, element):
        via_json = StreamElement.from_record(
            json.loads(
                json.dumps(element.to_record(), separators=(",", ":"))
            )
        )
        via_packed = codec.decode_element(codec.encode_element(element))
        assert via_packed == via_json
        assert type(via_packed) is type(via_json)

    @pytest.mark.parametrize(
        "element",
        [e for e in ELEMENTS if isinstance(e, TimedEdge)],
        ids=[label for label, e in SHAPES if isinstance(e, TimedEdge)],
    )
    def test_timestamp_bits_survive_exactly(self, element):
        decoded = codec.decode_element(codec.encode_element(element))
        assert isinstance(decoded, TimedEdge)
        assert struct.pack("<d", decoded.time) == struct.pack(
            "<d", element.time
        )

    @pytest.mark.parametrize("element", ELEMENTS, ids=IDS)
    def test_memoryview_decode_matches_bytes_decode(self, element):
        payload = codec.encode_element(element)
        assert codec.decode_element(memoryview(payload)) == (
            codec.decode_element(payload)
        )

    def test_batch_round_trip_preserves_order_and_types(self):
        batch = codec.encode_batch(ELEMENTS)
        decoded = codec.decode_batch(batch)
        assert decoded == ELEMENTS
        assert [type(e) for e in decoded] == [type(e) for e in ELEMENTS]

    def test_empty_batch_round_trips(self):
        assert codec.decode_batch(codec.encode_batch([])) == []

    def test_batch_accepts_any_iterable(self):
        batch = codec.encode_batch(iter(ELEMENTS[:3]))
        assert codec.decode_batch(batch) == ELEMENTS[:3]

    def test_int_fast_path_is_a_fixed_width_record(self):
        assert len(codec.encode_element(insertion(1, 2))) == 17
        assert len(codec.encode_element(timed_insertion(1, 2, 3.0))) == 25


class TestNonFiniteTimestampsRefused:
    """NaN/inf clocks are stream corruption: loud in both directions."""

    @pytest.mark.parametrize(
        "time", [float("nan"), float("inf"), float("-inf")]
    )
    def test_encode_refuses(self, time):
        with pytest.raises(CodecError, match="non-finite"):
            codec.encode_element(TimedEdge(1, 2, Op.INSERT, time))

    @pytest.mark.parametrize(
        "bits",
        [
            struct.pack("<d", float("nan")),
            struct.pack("<d", float("inf")),
            struct.pack("<d", float("-inf")),
        ],
    )
    def test_decode_refuses_crafted_payloads(self, bits):
        crafted = bytes([0x03]) + struct.pack("<qq", 1, 2) + bits
        with pytest.raises(CodecError, match="non-finite"):
            codec.decode_element(crafted)

    def test_decode_refuses_escaped_nonfinite(self):
        crafted = bytes([0x80]) + b'["+",1,2,Infinity]'
        with pytest.raises(CodecError, match="non-finite"):
            codec.decode_element(crafted)


class TestMalformedPayloadsRefused:
    """A malformed packed payload raises, never decodes wrong."""

    def test_empty_payload(self):
        with pytest.raises(CodecError, match="empty"):
            codec.decode_element(b"")

    def test_reserved_flag_bit(self):
        payload = bytearray(codec.encode_element(insertion(1, 2)))
        payload[0] |= 0x40
        with pytest.raises(CodecError, match="reserved"):
            codec.decode_element(bytes(payload))

    def test_escape_byte_with_extra_flags(self):
        with pytest.raises(CodecError, match="extra flag"):
            codec.decode_element(bytes([0x81]) + b'["+",1,2]')

    def test_escape_with_garbage_json(self):
        with pytest.raises(CodecError, match="failed to decode"):
            codec.decode_element(bytes([0x80]) + b"not json")

    def test_escape_with_malformed_record(self):
        with pytest.raises(CodecError, match="failed to decode"):
            codec.decode_element(bytes([0x80]) + b'["+",1]')

    def test_invalid_key_kind(self):
        # kind 3 for u (bits 2-3 set) on a string-shaped payload.
        with pytest.raises(CodecError, match="kind 3"):
            codec.decode_element(bytes([0x0C, 0x01, 0x61, 0x00]))

    def test_int_pair_with_wrong_length(self):
        payload = codec.encode_element(insertion(1, 2))
        with pytest.raises(CodecError, match="17 bytes"):
            codec.decode_element(payload + b"\x00")
        with pytest.raises(CodecError, match="17 bytes"):
            codec.decode_element(payload[:-1])

    def test_timed_int_pair_with_wrong_length(self):
        payload = codec.encode_element(timed_insertion(1, 2, 3.0))
        with pytest.raises(CodecError, match="25 bytes"):
            codec.decode_element(payload[:-1])

    def test_string_key_truncated(self):
        payload = codec.encode_element(insertion("alice", "bob"))
        with pytest.raises(CodecError):
            codec.decode_element(payload[:-1])

    def test_string_key_with_trailing_garbage(self):
        payload = codec.encode_element(insertion("alice", "bob"))
        with pytest.raises(CodecError, match="trailing"):
            codec.decode_element(payload + b"\x00")

    def test_string_key_bad_utf8(self):
        crafted = bytes([0x04, 0x02, 0xFF, 0xFE]) + struct.pack("<q", 1)
        with pytest.raises(CodecError, match="UTF-8"):
            codec.decode_element(crafted)

    def test_key_length_over_cap(self):
        # kind-1 u key declaring a length past MAX_KEY_BYTES.
        declared = codec.MAX_KEY_BYTES + 1
        varint = bytes([declared & 0x7F | 0x80, (declared >> 7) & 0x7F | 0x80, declared >> 14])
        with pytest.raises(CodecError, match="cap"):
            codec.decode_element(bytes([0x04]) + varint + b"a" * 10)

    def test_varint_truncated(self):
        with pytest.raises(CodecError, match="varint"):
            codec.decode_element(bytes([0x04, 0x80]))

    def test_varint_too_long(self):
        with pytest.raises(CodecError, match="too long"):
            codec.decode_element(
                bytes([0x04]) + b"\x80\x80\x80\x80\x80\x80" + b"\x01"
            )

    def test_empty_bigint_key(self):
        crafted = bytes([0x08, 0x00]) + struct.pack("<q", 1)
        with pytest.raises(CodecError, match="empty"):
            codec.decode_element(crafted)

    def test_timed_record_missing_timestamp(self):
        # str-keyed timed record cut off before its 8 time bytes.
        payload = codec.encode_element(TimedEdge("u", "v", Op.INSERT, 1.0))
        with pytest.raises(CodecError):
            codec.decode_element(payload[:-8])

    def test_timed_record_with_trailing_garbage(self):
        payload = codec.encode_element(TimedEdge("u", "v", Op.INSERT, 1.0))
        with pytest.raises(CodecError, match="trailing"):
            codec.decode_element(payload + b"\x00")

    def test_batch_truncated_inside_an_element(self):
        batch = codec.encode_batch([insertion(1, 2), insertion(3, 4)])
        with pytest.raises(CodecError, match="ends inside"):
            codec.decode_batch(batch[:-3])

    def test_batch_with_trailing_bytes(self):
        batch = codec.encode_batch([insertion(1, 2)])
        with pytest.raises(CodecError, match="trailing"):
            codec.decode_batch(batch + b"\x00")

    def test_batch_count_overstates_elements(self):
        batch = bytearray(codec.encode_batch([insertion(1, 2)]))
        batch[0] = 2  # claims two elements, carries one
        with pytest.raises(CodecError):
            codec.decode_batch(bytes(batch))

    def test_unencodable_vertex_refused(self):
        # A bytes vertex is not JSON-representable: no packed kind
        # AND no escape — the codec must refuse, not crash oddly.
        with pytest.raises(CodecError, match="JSON-representable"):
            codec.encode_element(StreamElement(b"raw", 3, Op.INSERT))


class TestOpByteExhaustion:
    """Both ops x both shapes x first-byte flag sweep."""

    @pytest.mark.parametrize("op", [Op.INSERT, Op.DELETE])
    def test_op_survives_all_kind_combinations(self, op):
        keys = [0, "s", 1 << 70]
        for u in keys:
            for v in keys:
                element = StreamElement(u, v, op)
                assert codec.decode_element(
                    codec.encode_element(element)
                ) == element
                timed = TimedEdge(u, v, op, 1.5)
                assert codec.decode_element(
                    codec.encode_element(timed)
                ) == timed

    def test_every_first_byte_value_decodes_or_refuses(self):
        """No first-byte value may crash with a non-CodecError."""
        suffix = struct.pack("<qq", 1, 2)
        for flags in range(256):
            try:
                codec.decode_element(bytes([flags]) + suffix)
            except CodecError:
                pass
