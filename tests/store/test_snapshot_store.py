"""Unit tests for the atomic snapshot store."""

import json

import pytest

from repro.errors import StoreError
from repro.store.snapshots import SnapshotStore


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path)


class TestSaveAndLoad:
    def test_round_trip(self, store):
        payload = {"estimator": "abacus", "state": {"estimate": 4.5}}
        store.save(payload, offset=128)
        assert store.load(128) == payload
        assert store.latest() == (128, payload)

    def test_offsets_sorted(self, store):
        for offset in (512, 4, 128):
            store.save({"offset": offset}, offset=offset)
        assert store.offsets() == (4, 128, 512)

    def test_latest_none_when_empty(self, store):
        assert store.latest() is None

    def test_no_temporary_files_left_behind(self, store, tmp_path):
        store.save({"x": 1}, offset=1)
        assert [p.name for p in tmp_path.iterdir()] == [
            "snapshot-00000000000000000001.json"
        ]

    def test_negative_offset_rejected(self, store):
        with pytest.raises(StoreError, match=">= 0"):
            store.save({}, offset=-1)


class TestCorruptionFallback:
    def test_latest_skips_corrupt_snapshot(self, store):
        store.save({"good": True}, offset=10)
        store.save({"bad": True}, offset=20)
        store.path_for(20).write_text("{torn", encoding="utf-8")
        assert store.latest() == (10, {"good": True})

    def test_latest_skips_non_object_snapshot(self, store):
        store.save({"good": True}, offset=10)
        store.path_for(20).write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert store.latest() == (10, {"good": True})

    def test_load_corrupt_raises(self, store):
        store.path_for(5).write_text("{", encoding="utf-8")
        with pytest.raises(StoreError, match="unreadable"):
            store.load(5)

    def test_load_missing_raises(self, store):
        with pytest.raises(StoreError, match="unreadable"):
            store.load(99)


class TestPrune:
    def test_prune_keeps_newest(self, store):
        for offset in (1, 2, 3, 4):
            store.save({"o": offset}, offset=offset)
        removed = store.prune(keep=2)
        assert removed == [1, 2]
        assert store.offsets() == (3, 4)

    def test_prune_never_deletes_everything(self, store):
        store.save({}, offset=7)
        with pytest.raises(StoreError, match="positive"):
            store.prune(keep=0)
        assert store.offsets() == (7,)

    def test_prune_noop_below_keep(self, store):
        store.save({}, offset=7)
        assert store.prune(keep=2) == []
