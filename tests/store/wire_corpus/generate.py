#!/usr/bin/env python
"""Regenerate the committed wire-corpus fixtures.

The corpus pins both element encodings byte-for-byte:

* ``manifest.json`` — one entry per pinned record: the JSON record,
  the format-1 payload (the canonical ``json.dumps`` bytes) and the
  format-2 packed payload, both hex-encoded.
* ``segment-v1.wal`` / ``segment-v2.wal`` — one complete WAL segment
  per format holding every corpus record as a CRC frame, exactly as
  :class:`repro.store.wal.WalWriter` lays it out.
* ``batch-v2.bin`` — every corpus element as one packed wire batch
  (:func:`repro.store.codec.encode_batch`), the payload the binary
  serve/replication opt-in ships (before base64).

``tests/store/test_wire_corpus.py`` re-derives every fixture from the
manifest records and fails when a byte drifts — the fixtures are the
compatibility promise, so regenerating them is a **format change** and
needs the corresponding version bump in ``repro.store.codec`` /
``repro.store.wal``, never a silent refresh.  Run from the repo root::

    PYTHONPATH=src python tests/store/wire_corpus/generate.py
"""

from __future__ import annotations

import json
import pathlib
import struct
import sys
import zlib

CORPUS_DIR = pathlib.Path(__file__).resolve().parent

#: The pinned records, exercising every element shape the record
#: grammar admits: both ops, int64/boundary/negative/big ints, ascii
#: and unicode strings, empty and long keys, mixed kinds, timestamps
#: (zero, negative, huge, integer-typed), and the JSON-escape fallback
#: (bool vertices have no packed kind).
RECORDS = [
    ["+", 1, 2],
    ["-", 3, 4],
    ["+", 0, -1],
    ["+", -9223372036854775808, 9223372036854775807],
    ["+", "alice", "matrix"],
    ["-", "", ""],
    ["+", "héllo", "wörld"],
    ["+", "蝶", "数"],
    ["-", "\U0001f98b", "\U0001f9ee"],
    ["+", 1, "mixed"],
    ["-", "mixed", -7],
    ["+", 1208925819614629174706176, -1208925819614629174706177],
    ["+", "a" * 300, "b" * 300],
    ["+", 5, 6, 0.0],
    ["-", 7, 8, -1.5],
    ["+", "u", "v", 1.25],
    ["+", 9, 10, -0.0],
    ["+", 11, 12, 1e300],
    ["-", 13, 14, 2],
    ["+", True, False],
]

_FRAME = struct.Struct("<II")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def build_fixtures() -> dict:
    """Derive every fixture's bytes from :data:`RECORDS`."""
    from repro.store import codec
    from repro.store.wal import WAL_MAGIC, WAL_MAGIC_V2
    from repro.types import StreamElement

    elements = [StreamElement.from_record(r) for r in RECORDS]
    cases = []
    v1_frames = [WAL_MAGIC]
    v2_frames = [WAL_MAGIC_V2]
    for record, element in zip(RECORDS, elements):
        v1 = json.dumps(
            element.to_record(), separators=(",", ":")
        ).encode("utf-8")
        v2 = codec.encode_element(element)
        cases.append(
            {
                "record": record,
                "v1_hex": v1.hex(),
                "v2_hex": v2.hex(),
            }
        )
        v1_frames.append(_frame(v1))
        v2_frames.append(_frame(v2))
    return {
        "manifest": {"corpus_version": 1, "cases": cases},
        "segment-v1.wal": b"".join(v1_frames),
        "segment-v2.wal": b"".join(v2_frames),
        "batch-v2.bin": codec.encode_batch(elements),
    }


def main() -> int:
    fixtures = build_fixtures()
    manifest = fixtures.pop("manifest")
    (CORPUS_DIR / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    for name, payload in fixtures.items():
        (CORPUS_DIR / name).write_bytes(payload)
    print(f"wrote {len(manifest['cases'])} cases to {CORPUS_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
