"""The durable-session facade: open_session(durable_dir=...) semantics."""

import random

import pytest

from repro.api import build_estimator, open_session
from repro.errors import EstimatorError, SpecError, StoreError
from repro.graph.generators import bipartite_erdos_renyi
from repro.store import DurableStore
from repro.store.wal import scan_wal
from repro.streams import make_fully_dynamic
from repro.types import insertion

SPEC = "abacus:budget=64,seed=21"


def _stream(seed=5, edges=40):
    base = bipartite_erdos_renyi(10, 10, edges, random.Random(seed))
    return list(
        make_fully_dynamic(base, alpha=0.2, rng=random.Random(seed + 1))
    )


class TestOpening:
    def test_fresh_directory_needs_a_spec(self, tmp_path):
        with pytest.raises(SpecError, match="no session yet"):
            open_session(durable_dir=tmp_path)

    def test_no_spec_and_no_dir_is_an_error(self):
        with pytest.raises(SpecError, match="needs an estimator spec"):
            open_session()

    def test_instance_cannot_be_durable(self, tmp_path):
        with pytest.raises(SpecError, match="not an instance"):
            open_session(build_estimator("exact"), durable_dir=tmp_path)

    def test_reopen_without_spec_uses_stored_one(self, tmp_path):
        with open_session(SPEC, durable_dir=tmp_path) as session:
            session.ingest(insertion(1, 2))
        with open_session(durable_dir=tmp_path) as session:
            assert session.spec.to_string() == SPEC
            assert session.elements == 1

    def test_reopen_with_matching_spec_is_fine(self, tmp_path):
        open_session(SPEC, durable_dir=tmp_path).close()
        with open_session(SPEC, durable_dir=tmp_path) as session:
            assert session.durable

    def test_reopen_with_different_spec_refuses(self, tmp_path):
        open_session(SPEC, durable_dir=tmp_path).close()
        with pytest.raises(SpecError, match="refusing to continue"):
            open_session("abacus:budget=9,seed=21", durable_dir=tmp_path)

    def test_reopen_without_spec_refuses_wrapping_options(
        self, tmp_path
    ):
        open_session(SPEC, durable_dir=tmp_path).close()
        with pytest.raises(SpecError, match="stored one"):
            open_session(durable_dir=tmp_path, window=5)

    def test_sharding_and_windowing_recorded_in_meta(self, tmp_path):
        with open_session(
            "abacus:budget=32,seed=3",
            shards=2,
            window=16,
            durable_dir=tmp_path,
        ) as session:
            stored = DurableStore(tmp_path).spec
            assert stored == session.spec.to_string()
            assert stored.startswith("windowed:")
            assert "sharded" in stored

    def test_store_and_durable_surface(self, tmp_path):
        with open_session(SPEC, durable_dir=tmp_path) as session:
            assert session.durable
            assert session.store is not None
            assert session.store.directory == tmp_path
        with open_session(SPEC) as session:
            assert not session.durable
            assert session.store is None


class TestWriteAheadBehavior:
    def test_elements_logged_before_close(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream)
        session.sync()  # no close — crash semantics
        scan = scan_wal(tmp_path / f"wal-{0:020d}.log")
        assert scan.records == len(stream)

    def test_both_ingest_paths_log(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        for element in stream[:10]:
            session.ingest(element)  # element path
        session.ingest(stream[10:], batch_size=8)  # batched path
        session.close()
        assert DurableStore(tmp_path).recover().offset == len(stream)

    def test_close_makes_the_log_durable(self, tmp_path):
        stream = _stream()
        with open_session(SPEC, durable_dir=tmp_path) as session:
            session.ingest(stream)
        recovered = open_session(durable_dir=tmp_path)
        assert recovered.elements == len(stream)
        recovered.close()


class TestCheckpoint:
    def test_checkpoint_requires_durability(self):
        with open_session(SPEC) as session:
            with pytest.raises(EstimatorError, match="durable"):
                session.checkpoint()

    def test_checkpoint_rotates_and_prunes(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream[:20])
        assert session.checkpoint() == 20
        session.ingest(stream[20:30])
        assert session.checkpoint() == 30
        session.ingest(stream[30:])
        session.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        # Two snapshots kept; segments cover from the older one on.
        assert f"snapshot-{20:020d}.json" in names
        assert f"snapshot-{30:020d}.json" in names
        assert f"wal-{0:020d}.log" not in names
        assert f"wal-{20:020d}.log" in names
        assert f"wal-{30:020d}.log" in names

    def test_third_checkpoint_drops_the_first(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        for mark in (10, 20, 30):
            session.ingest(stream[mark - 10 : mark])
            session.checkpoint()
        session.close()
        store = DurableStore(tmp_path)
        assert store.snapshots.offsets() == (20, 30)
        assert [base for base, _ in store.segments()] == [20, 30]

    def test_recovery_prefers_newest_snapshot(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream[:20])
        session.checkpoint()
        session.ingest(stream[20:])
        session.checkpoint()
        session.close()
        recovered = DurableStore(tmp_path).recover()
        assert recovered.snapshot is not None
        assert recovered.snapshot["session"]["elements"] == len(stream)
        assert recovered.tail == []

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream[:20])
        session.checkpoint()
        session.ingest(stream[20:])
        session.checkpoint()
        session.close()
        # Tear the newest snapshot: recovery must fall back to the
        # older one and replay the tail segment instead.
        newest = tmp_path / f"snapshot-{len(stream):020d}.json"
        newest.write_text("{torn", encoding="utf-8")
        with open_session(durable_dir=tmp_path) as session:
            assert session.elements == len(stream)
            reference = open_session(SPEC)
            reference.ingest(stream)
            assert session.estimate == reference.estimate


class TestSnapshotFreeEstimators:
    def test_durable_without_snapshot_support_replays_fully(
        self, tmp_path
    ):
        spec = "fleet:budget=64,seed=13"
        stream = [e for e in _stream() if e.is_insertion]
        session = open_session(spec, durable_dir=tmp_path)
        session.ingest(stream)
        estimate = session.estimate
        with pytest.raises(SpecError):
            session.checkpoint()  # no snapshot protocol
        session.close()
        with open_session(durable_dir=tmp_path) as recovered:
            assert recovered.elements == len(stream)
            assert recovered.estimate == estimate


class TestProcessBackendRecovery:
    def test_durable_sharded_process_session_restores_workers(
        self, tmp_path
    ):
        spec = (
            "sharded:inner=[abacus:budget=32,seed=5],shards=2,"
            "backend=process"
        )
        stream = _stream(seed=8)
        session = open_session(spec, durable_dir=tmp_path)
        session.ingest(stream[:30])
        session.checkpoint()
        session.ingest(stream[30:])
        session.close()  # shuts worker processes down cleanly
        recovered = open_session(durable_dir=tmp_path)
        try:
            reference = open_session(
                "sharded:inner=[abacus:budget=32,seed=5],shards=2"
            )
            reference.ingest(stream)
            assert recovered.elements == len(stream)
            assert recovered.estimate == reference.estimate
        finally:
            recovered.close()


class TestRefusedElements:
    """A refused element must leave the log — never poison the store."""

    STRICT = "windowed:inner=[abacus:budget=32,seed=5],window=8,strict=true"

    def test_refused_element_is_rolled_back(self, tmp_path):
        from repro.errors import StreamError
        from repro.types import deletion

        session = open_session(self.STRICT, durable_dir=tmp_path)
        session.ingest([insertion(1, 2), insertion(3, 4)])
        with pytest.raises(StreamError):
            session.ingest(deletion("never", "inserted"))
        # Log and session agree again: the poison record is gone.
        assert session.store.offset == session.elements == 2
        assert session.checkpoint() == 2
        session.ingest(insertion(5, 6))
        session.close()
        with open_session(durable_dir=tmp_path) as recovered:
            assert recovered.elements == 3

    def test_refused_batch_is_rolled_back(self, tmp_path):
        from repro.errors import StreamError

        session = open_session(self.STRICT, durable_dir=tmp_path)
        session.ingest(insertion(1, 2))
        with pytest.raises(StreamError):
            # The duplicate-while-live insert fails mid-batch; the
            # whole uncounted chunk must leave the log with it.
            session.ingest([insertion(3, 4), insertion(1, 2)])
        assert session.store.offset == session.elements == 1
        assert session.checkpoint() == 1
        session.close()
        with open_session(durable_dir=tmp_path) as recovered:
            assert recovered.elements == 1

    def test_rolled_back_records_stay_gone_across_crashes(
        self, tmp_path
    ):
        from repro.errors import StreamError
        from repro.types import deletion

        session = open_session(self.STRICT, durable_dir=tmp_path)
        session.ingest(insertion(1, 2))
        with pytest.raises(StreamError):
            session.ingest(deletion(9, 9))
        session.sync()  # crash without close
        recovered = open_session(durable_dir=tmp_path)
        assert recovered.elements == 1
        recovered.close()


class TestBrokenState:
    def test_foreign_meta_raises(self, tmp_path):
        (tmp_path / "meta.json").write_text("not json", encoding="utf-8")
        with pytest.raises(StoreError, match="meta"):
            open_session(SPEC, durable_dir=tmp_path)

    def test_missing_tail_segment_recovers_at_checkpoint(self, tmp_path):
        # A deleted tail segment is indistinguishable from "nothing
        # ingested since the checkpoint": recovery lands exactly on
        # the newest snapshot instead of failing.
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream[:30])
        session.checkpoint()
        session.ingest(stream[30:])
        session.close()
        (tmp_path / f"wal-{30:020d}.log").unlink()
        with open_session(durable_dir=tmp_path) as recovered:
            assert recovered.elements == 30

    def test_gap_between_snapshot_and_wal_raises(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream[:20])
        session.checkpoint()
        session.ingest(stream[20:30])
        session.checkpoint()
        session.ingest(stream[30:])
        session.close()
        # Tear the newest snapshot (fall back to offset 20) and delete
        # the segment that covers [20, 30): a genuine coverage gap.
        (tmp_path / f"snapshot-{30:020d}.json").write_text(
            "{torn", encoding="utf-8"
        )
        (tmp_path / f"wal-{20:020d}.log").unlink()
        with pytest.raises(StoreError, match="gap"):
            open_session(durable_dir=tmp_path)

    def test_mid_log_corruption_is_fatal(self, tmp_path):
        stream = _stream()
        session = open_session(SPEC, durable_dir=tmp_path)
        session.ingest(stream[:20])
        session.checkpoint()
        session.ingest(stream[20:])
        session.close()
        # Corrupt a non-final segment: recovery must refuse rather
        # than silently skip logged elements.  The first segment is
        # pruned at checkpoint, so recreate an older one with junk.
        older = tmp_path / f"wal-{0:020d}.log"
        from repro.store.wal import WAL_MAGIC

        older.write_bytes(WAL_MAGIC + b"\x05\x00\x00\x00junk")
        with pytest.raises(StoreError, match="final segment"):
            open_session(durable_dir=tmp_path)
