"""The golden-corpus guard: pinned encodings must never drift.

``tests/store/wire_corpus/`` commits both element encodings for a
fixed record set — the format-1 JSON payloads, the format-2 packed
payloads, one full WAL segment per format, and one packed wire batch.
These files are the compatibility promise of ``docs/persistence.md``:
every future version must keep decoding them byte-for-byte, and must
keep *producing* the same bytes for the pinned inputs (the docgen
byte-identity pattern, applied to the wire).  A failure here means a
format change shipped without a version bump — fix the code, don't
regenerate the fixtures.
"""

import json
import pathlib

import pytest

from repro.store import codec
from repro.store.wal import iter_wal, scan_wal
from repro.types import StreamElement

CORPUS_DIR = (
    pathlib.Path(__file__).resolve().parent / "wire_corpus"
)
GENERATOR = CORPUS_DIR / "generate.py"


def _load_manifest():
    return json.loads(
        (CORPUS_DIR / "manifest.json").read_text(encoding="utf-8")
    )


def _load_cases():
    return _load_manifest()["cases"]


def _build_fixtures():
    """Re-derive every fixture from the generator's pinned records."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "wire_corpus_generate", GENERATOR
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_fixtures()


class TestCommittedFixturesDecode:
    """Every committed fixture must keep decoding, forever."""

    @pytest.mark.parametrize(
        "case", _load_cases(), ids=lambda c: c["v2_hex"][:16]
    )
    def test_packed_payload_decodes_to_the_pinned_record(self, case):
        element = codec.decode_element(bytes.fromhex(case["v2_hex"]))
        assert element == StreamElement.from_record(case["record"])

    @pytest.mark.parametrize(
        "case", _load_cases(), ids=lambda c: c["v1_hex"][:16]
    )
    def test_json_payload_decodes_to_the_pinned_record(self, case):
        element = StreamElement.from_record(
            json.loads(bytes.fromhex(case["v1_hex"]))
        )
        assert element == StreamElement.from_record(case["record"])

    @pytest.mark.parametrize("name", ["segment-v1.wal", "segment-v2.wal"])
    def test_committed_segments_scan_clean(self, name):
        scan = scan_wal(CORPUS_DIR / name)
        assert scan.clean
        assert scan.records == len(_load_cases())
        assert scan.format == (1 if "v1" in name else 2)

    def test_both_segments_decode_to_identical_elements(self):
        v1 = list(iter_wal(CORPUS_DIR / "segment-v1.wal"))
        v2 = list(iter_wal(CORPUS_DIR / "segment-v2.wal"))
        assert v1 == v2
        expected = [
            StreamElement.from_record(case["record"])
            for case in _load_cases()
        ]
        assert v2 == expected
        # Subclass identity too: a timed record must recover as a
        # TimedEdge in both formats, not merely compare equal.
        for a, b in zip(v1, v2):
            assert type(a) is type(b)

    def test_committed_batch_decodes_to_the_corpus(self):
        batch = (CORPUS_DIR / "batch-v2.bin").read_bytes()
        expected = [
            StreamElement.from_record(case["record"])
            for case in _load_cases()
        ]
        assert codec.decode_batch(batch) == expected


class TestPinnedInputsStillEncodeIdentically:
    """Encoding the pinned inputs must reproduce the committed bytes."""

    @pytest.mark.parametrize(
        "case", _load_cases(), ids=lambda c: c["v2_hex"][:16]
    )
    def test_packed_encoding_has_not_drifted(self, case):
        element = StreamElement.from_record(case["record"])
        assert codec.encode_element(element).hex() == case["v2_hex"]

    @pytest.mark.parametrize(
        "case", _load_cases(), ids=lambda c: c["v1_hex"][:16]
    )
    def test_json_encoding_has_not_drifted(self, case):
        element = StreamElement.from_record(case["record"])
        payload = json.dumps(
            element.to_record(), separators=(",", ":")
        ).encode("utf-8")
        assert payload.hex() == case["v1_hex"]

    def test_every_fixture_file_is_byte_identical_to_a_regeneration(self):
        fixtures = _build_fixtures()
        manifest = fixtures.pop("manifest")
        committed = _load_manifest()
        assert manifest == committed, (
            "manifest.json drifted from the generator's pinned "
            "records; this is a format change — bump the codec "
            "version instead of regenerating"
        )
        for name, payload in fixtures.items():
            assert (CORPUS_DIR / name).read_bytes() == payload, (
                f"{name} is no longer byte-identical to a "
                "regeneration from the pinned records"
            )

    def test_corpus_covers_the_interesting_shapes(self):
        """The corpus must keep exercising every encoding branch."""
        kinds = {"fast": 0, "str": 0, "big": 0, "escape": 0, "timed": 0}
        for case in _load_cases():
            payload = bytes.fromhex(case["v2_hex"])
            flags = payload[0]
            if flags == 0x80:
                kinds["escape"] += 1
                continue
            if flags & 0x02:
                kinds["timed"] += 1
            u_kind = (flags >> 2) & 3
            v_kind = (flags >> 4) & 3
            if u_kind == v_kind == 0:
                kinds["fast"] += 1
            if 1 in (u_kind, v_kind):
                kinds["str"] += 1
            if 2 in (u_kind, v_kind):
                kinds["big"] += 1
        assert all(count > 0 for count in kinds.values()), kinds
