"""WAL scan hardening: degenerate files and hostile tails.

``tests/store/test_wal.py`` proves the happy paths and the every-byte
truncation sweep; this file pins the degenerate shapes a crashed
filesystem actually leaves behind — empty files, half-written magic,
a frame header whose declared length runs past EOF or past the sanity
cap, and (the subtle one) a **zero-filled tail**: ``crc32(b"") == 0``
makes an all-zeros frame header checksum-"valid", so a naive scanner
would accept an empty record and loop forever on the zeros.  Each
shape must come back as a clean torn-tail report — never an exception,
never a bogus record — and recovery over such a file must truncate
and carry on.
"""

import struct
import zlib

import pytest

from repro.api import open_session
from repro.errors import StoreError
from repro.store.wal import WAL_MAGIC, WalWriter, iter_wal, scan_wal
from repro.types import insertion, timed_insertion


def _wal_with_records(path, count):
    """A synced WAL holding ``count`` insertions; returns its bytes."""
    with WalWriter(path) as wal:
        for i in range(count):
            wal.append(insertion(f"u{i}", f"v{i}"))
    return path.read_bytes()


def _frame(payload):
    return struct.pack(
        "<II", len(payload), zlib.crc32(payload)
    ) + payload


class TestDegenerateFiles:
    def test_empty_file_scans_as_torn_header(self, tmp_path):
        path = tmp_path / "wal-0.log"
        path.write_bytes(b"")
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes, scan.clean) == (
            0, 0, False,
        )
        assert list(iter_wal(path)) == []

    def test_magic_only_file_is_clean_and_empty(self, tmp_path):
        path = tmp_path / "wal-0.log"
        path.write_bytes(WAL_MAGIC)
        scan = scan_wal(path)
        assert scan.records == 0
        assert scan.valid_bytes == len(WAL_MAGIC)
        assert scan.clean is True

    @pytest.mark.parametrize("cut", range(1, len(WAL_MAGIC)))
    def test_truncated_magic_is_torn_not_fatal(self, tmp_path, cut):
        path = tmp_path / "wal-0.log"
        path.write_bytes(WAL_MAGIC[:cut])
        scan = scan_wal(path)
        assert (scan.records, scan.clean) == (0, False)
        assert list(iter_wal(path)) == []

    def test_foreign_bytes_raise_store_error(self, tmp_path):
        path = tmp_path / "wal-0.log"
        path.write_bytes(b"PK\x03\x04 definitely not a WAL")
        with pytest.raises(StoreError, match="not a repro WAL"):
            scan_wal(path)


class TestHostileTails:
    def test_declared_length_past_eof_is_torn(self, tmp_path):
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 3)
        # A frame header promising 500 payload bytes, then EOF after 4.
        path.write_bytes(
            data + struct.pack("<II", 500, 12345) + b"left"
        )
        scan = scan_wal(path)
        assert scan.records == 3
        assert scan.valid_bytes == len(data)
        assert scan.clean is False
        assert len(list(iter_wal(path))) == 3

    def test_absurd_declared_length_is_not_allocated(self, tmp_path):
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 2)
        path.write_bytes(data + struct.pack("<II", 1 << 30, 0))
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes) == (2, len(data))
        assert scan.clean is False

    @pytest.mark.parametrize("zeros", [8, 16, 4096])
    def test_zero_filled_tail_is_rejected_despite_valid_crc(
        self, tmp_path, zeros
    ):
        """crc32(b"") == 0, so all-zero headers would self-validate as
        empty records — the length == 0 guard must stop the scan."""
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 4)
        path.write_bytes(data + b"\x00" * zeros)
        scan = scan_wal(path)
        assert scan.records == 4
        assert scan.valid_bytes == len(data)
        assert scan.clean is False
        # iter_wal stops at the zeros instead of yielding phantoms.
        elements = list(iter_wal(path))
        assert len(elements) == 4
        assert str(elements[0]) == "(u0, v0, +)"

    def test_zero_length_frame_mid_file_hides_the_rest(self, tmp_path):
        """Corruption is a *prefix* property: records after a zero
        frame are unreachable even if individually intact."""
        path = tmp_path / "wal-0.log"
        good = _frame(b'["+","a","b"]')
        path.write_bytes(
            WAL_MAGIC + good + b"\x00" * 8 + _frame(b'["+","c","d"]')
        )
        scan = scan_wal(path)
        assert scan.records == 1
        assert scan.valid_bytes == len(WAL_MAGIC) + len(good)
        assert len(list(iter_wal(path))) == 1

    def test_partial_zero_header_is_a_short_read(self, tmp_path):
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 2)
        path.write_bytes(data + b"\x00" * 3)  # < frame-header size
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes) == (2, len(data))
        assert scan.clean is False


def _format_wal(path, format):
    """A small synced WAL in ``format`` with a known element mix."""
    elements = [
        insertion("u0", "v0"),
        insertion(1, -2),
        timed_insertion("蝶", "数", 2.5),
        insertion(1 << 70, "big"),
        timed_insertion(3, 4, -0.5),
    ]
    with WalWriter(path, format=format) as wal:
        for element in elements:
            wal.append(element)
    return elements


class TestEveryByteCorruption:
    """Flip or truncate any byte: torn tail or CRC failure, never a
    wrong element.

    The corruption model is format-independent — the CRC guards the
    payload bytes, the length/zero guards bound the frame walk — so
    the identical sweep runs over a JSON (v1) and a packed (v2)
    segment.  "Never a wrong element" means everything ``iter_wal``
    yields before stopping (or raising) is the exact prefix of what
    was written: a flipped byte may hide records, but it may not
    *change* one.
    """

    @pytest.mark.parametrize("format", [1, 2])
    def test_every_byte_bit_flip_is_caught(self, tmp_path, format):
        path = tmp_path / "wal-0.log"
        expected = _format_wal(path, format)
        pristine = path.read_bytes()
        for index in range(len(pristine)):
            for xor in (1 << (index % 8), 0xFF):
                mutated = bytearray(pristine)
                mutated[index] ^= xor
                path.write_bytes(bytes(mutated))
                try:
                    survivors = list(iter_wal(path))
                except StoreError:
                    continue  # loud refusal: magic or payload rejected
                assert survivors == expected[: len(survivors)], (
                    f"byte {index} xor {xor:#x} produced a wrong "
                    f"element in format {format}"
                )
                scan = scan_wal(path)
                assert scan.records == len(survivors)

    @pytest.mark.parametrize("format", [1, 2])
    def test_every_byte_truncation_is_a_clean_prefix(
        self, tmp_path, format
    ):
        path = tmp_path / "wal-0.log"
        expected = _format_wal(path, format)
        pristine = path.read_bytes()
        for cut in range(len(pristine)):
            path.write_bytes(pristine[:cut])
            scan = scan_wal(path)
            assert scan.valid_bytes <= cut
            survivors = list(iter_wal(path))
            assert survivors == expected[: scan.records]
            if cut < len(pristine):
                assert scan.records < len(expected) or not scan.clean

    def test_formats_hold_the_same_corruption_contract(self, tmp_path):
        """The two segments encode the same elements; their scans must
        agree on the record count and the clean flag when pristine."""
        v1, v2 = tmp_path / "wal-1.log", tmp_path / "wal-2.log"
        _format_wal(v1, 1)
        _format_wal(v2, 2)
        scan1, scan2 = scan_wal(v1), scan_wal(v2)
        assert (scan1.records, scan1.clean) == (scan2.records, scan2.clean)
        assert (scan1.format, scan2.format) == (1, 2)
        assert list(iter_wal(v1)) == list(iter_wal(v2))


class TestRecoveryIntegration:
    def test_recovery_truncates_a_zero_filled_tail_and_resumes(
        self, tmp_path
    ):
        """open_session over a zero-padded segment: the tail goes, the
        intact prefix replays, and appending afterwards works."""
        session = open_session(
            "abacus:budget=32,seed=7", durable_dir=tmp_path
        )
        session.ingest(
            [insertion(f"u{i % 5}", f"v{i}") for i in range(6)]
        )
        session.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        segment.write_bytes(segment.read_bytes() + b"\x00" * 4096)

        recovered = open_session(durable_dir=tmp_path)
        assert recovered.elements == 6
        assert scan_wal(segment).clean is True  # tail truncated away
        recovered.ingest(insertion("u9", "v9"))
        recovered.close()

        reopened = open_session(durable_dir=tmp_path)
        assert reopened.elements == 7
        reopened.close()

    def test_recovery_truncates_an_overlong_declared_length(
        self, tmp_path
    ):
        session = open_session(
            "abacus:budget=32,seed=7", durable_dir=tmp_path
        )
        session.ingest(
            [insertion(f"u{i % 5}", f"v{i}") for i in range(4)]
        )
        session.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        segment.write_bytes(
            segment.read_bytes() + struct.pack("<II", 1 << 24, 7)
        )
        recovered = open_session(durable_dir=tmp_path)
        assert recovered.elements == 4
        recovered.close()
