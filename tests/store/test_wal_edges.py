"""WAL scan hardening: degenerate files and hostile tails.

``tests/store/test_wal.py`` proves the happy paths and the every-byte
truncation sweep; this file pins the degenerate shapes a crashed
filesystem actually leaves behind — empty files, half-written magic,
a frame header whose declared length runs past EOF or past the sanity
cap, and (the subtle one) a **zero-filled tail**: ``crc32(b"") == 0``
makes an all-zeros frame header checksum-"valid", so a naive scanner
would accept an empty record and loop forever on the zeros.  Each
shape must come back as a clean torn-tail report — never an exception,
never a bogus record — and recovery over such a file must truncate
and carry on.
"""

import struct
import zlib

import pytest

from repro.api import open_session
from repro.errors import StoreError
from repro.store.wal import WAL_MAGIC, WalWriter, iter_wal, scan_wal
from repro.types import insertion


def _wal_with_records(path, count):
    """A synced WAL holding ``count`` insertions; returns its bytes."""
    with WalWriter(path) as wal:
        for i in range(count):
            wal.append(insertion(f"u{i}", f"v{i}"))
    return path.read_bytes()


def _frame(payload):
    return struct.pack(
        "<II", len(payload), zlib.crc32(payload)
    ) + payload


class TestDegenerateFiles:
    def test_empty_file_scans_as_torn_header(self, tmp_path):
        path = tmp_path / "wal-0.log"
        path.write_bytes(b"")
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes, scan.clean) == (
            0, 0, False,
        )
        assert list(iter_wal(path)) == []

    def test_magic_only_file_is_clean_and_empty(self, tmp_path):
        path = tmp_path / "wal-0.log"
        path.write_bytes(WAL_MAGIC)
        scan = scan_wal(path)
        assert scan.records == 0
        assert scan.valid_bytes == len(WAL_MAGIC)
        assert scan.clean is True

    @pytest.mark.parametrize("cut", range(1, len(WAL_MAGIC)))
    def test_truncated_magic_is_torn_not_fatal(self, tmp_path, cut):
        path = tmp_path / "wal-0.log"
        path.write_bytes(WAL_MAGIC[:cut])
        scan = scan_wal(path)
        assert (scan.records, scan.clean) == (0, False)
        assert list(iter_wal(path)) == []

    def test_foreign_bytes_raise_store_error(self, tmp_path):
        path = tmp_path / "wal-0.log"
        path.write_bytes(b"PK\x03\x04 definitely not a WAL")
        with pytest.raises(StoreError, match="not a repro WAL"):
            scan_wal(path)


class TestHostileTails:
    def test_declared_length_past_eof_is_torn(self, tmp_path):
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 3)
        # A frame header promising 500 payload bytes, then EOF after 4.
        path.write_bytes(
            data + struct.pack("<II", 500, 12345) + b"left"
        )
        scan = scan_wal(path)
        assert scan.records == 3
        assert scan.valid_bytes == len(data)
        assert scan.clean is False
        assert len(list(iter_wal(path))) == 3

    def test_absurd_declared_length_is_not_allocated(self, tmp_path):
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 2)
        path.write_bytes(data + struct.pack("<II", 1 << 30, 0))
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes) == (2, len(data))
        assert scan.clean is False

    @pytest.mark.parametrize("zeros", [8, 16, 4096])
    def test_zero_filled_tail_is_rejected_despite_valid_crc(
        self, tmp_path, zeros
    ):
        """crc32(b"") == 0, so all-zero headers would self-validate as
        empty records — the length == 0 guard must stop the scan."""
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 4)
        path.write_bytes(data + b"\x00" * zeros)
        scan = scan_wal(path)
        assert scan.records == 4
        assert scan.valid_bytes == len(data)
        assert scan.clean is False
        # iter_wal stops at the zeros instead of yielding phantoms.
        elements = list(iter_wal(path))
        assert len(elements) == 4
        assert str(elements[0]) == "(u0, v0, +)"

    def test_zero_length_frame_mid_file_hides_the_rest(self, tmp_path):
        """Corruption is a *prefix* property: records after a zero
        frame are unreachable even if individually intact."""
        path = tmp_path / "wal-0.log"
        good = _frame(b'["+","a","b"]')
        path.write_bytes(
            WAL_MAGIC + good + b"\x00" * 8 + _frame(b'["+","c","d"]')
        )
        scan = scan_wal(path)
        assert scan.records == 1
        assert scan.valid_bytes == len(WAL_MAGIC) + len(good)
        assert len(list(iter_wal(path))) == 1

    def test_partial_zero_header_is_a_short_read(self, tmp_path):
        path = tmp_path / "wal-0.log"
        data = _wal_with_records(path, 2)
        path.write_bytes(data + b"\x00" * 3)  # < frame-header size
        scan = scan_wal(path)
        assert (scan.records, scan.valid_bytes) == (2, len(data))
        assert scan.clean is False


class TestRecoveryIntegration:
    def test_recovery_truncates_a_zero_filled_tail_and_resumes(
        self, tmp_path
    ):
        """open_session over a zero-padded segment: the tail goes, the
        intact prefix replays, and appending afterwards works."""
        session = open_session(
            "abacus:budget=32,seed=7", durable_dir=tmp_path
        )
        session.ingest(
            [insertion(f"u{i % 5}", f"v{i}") for i in range(6)]
        )
        session.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        segment.write_bytes(segment.read_bytes() + b"\x00" * 4096)

        recovered = open_session(durable_dir=tmp_path)
        assert recovered.elements == 6
        assert scan_wal(segment).clean is True  # tail truncated away
        recovered.ingest(insertion("u9", "v9"))
        recovered.close()

        reopened = open_session(durable_dir=tmp_path)
        assert reopened.elements == 7
        reopened.close()

    def test_recovery_truncates_an_overlong_declared_length(
        self, tmp_path
    ):
        session = open_session(
            "abacus:budget=32,seed=7", durable_dir=tmp_path
        )
        session.ingest(
            [insertion(f"u{i % 5}", f"v{i}") for i in range(4)]
        )
        session.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        segment.write_bytes(
            segment.read_bytes() + struct.pack("<II", 1 << 24, 7)
        )
        recovered = open_session(durable_dir=tmp_path)
        assert recovered.elements == 4
        recovered.close()
