"""Property tests: reshard equivalence across every sharding inner.

Hypothesis drives random fully-dynamic streams and random ``K -> K'``
transitions through :meth:`~repro.shard.engine.ShardedEstimator
.reshard` and checks the contracts that hold for **every** estimator
the registry marks ``supports_sharding``:

* the residue is conserved — live edges before == replayed == live
  edges after, and the per-shard load table re-sums to it;
* the K-correction identity ``estimate = K' * sum(shard estimates)``
  holds on the new topology;
* the engine stays fully live across the transition (more ingest,
  another reshard);
* snapshot-capable inners (ABACUS, PARABACUS) reshard **bit-
  identically** from a restored twin — reshard is a pure function of
  the engine state;
* the exact inner collapses to the oracle at ``K' = 1``.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro.api.builtin  # noqa: F401 - populate the registry
from repro.api.registry import build_estimator, get_registration
from repro.api.registry import registered_estimators
from repro.shard.engine import ShardedEstimator
from repro.types import Op, deletion, insertion

#: Every inner the registry says can shard, as a small seeded spec.
SHARDING_SPECS = {
    "abacus": "abacus:budget=32,seed=9",
    "abacus_support": "abacus_support:budget=32,seed=9",
    "cas": "cas:budget=32,seed=9",
    "ensemble": "ensemble:replicas=3,budget=16,seed=9",
    "exact": "exact",
    "fleet": "fleet:budget=32,seed=9",
    "parabacus": "parabacus:budget=32,seed=9,batch_size=5",
}

SNAPSHOT_SPECS = {
    name: spec
    for name, spec in SHARDING_SPECS.items()
    if get_registration(name).supports_snapshot
}


def test_the_matrix_is_complete():
    """A new sharding-capable estimator must join this suite."""
    sharding = {
        name
        for name in registered_estimators()
        if get_registration(name).supports_sharding
    }
    assert sharding == set(SHARDING_SPECS)


@st.composite
def dynamic_streams(draw, reinsert=True):
    """A valid fully-dynamic stream over disjoint vertex namespaces.

    Deletions only ever target live edges (the ABACUS family refuses
    blind deletes), built by tracking liveness while drawing.  With
    ``reinsert=False`` a deleted edge never comes back: the insert-only
    baselines (FLEET, CAS) ignore deletions, so a delete-then-reinsert
    stream would hit their duplicate-edge guard — they are *biased*
    under deletions by design, not re-insert-safe.
    """
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, 7),  # left
                st.integers(1000, 1007),  # right, disjoint namespace
                st.booleans(),  # try to delete?
            ),
            min_size=0,
            max_size=60,
        )
    )
    live = set()
    retired = set()
    stream = []
    for u, v, try_delete in pairs:
        if try_delete and (u, v) in live:
            live.discard((u, v))
            retired.add((u, v))
            stream.append(deletion(u, v))
        elif (u, v) not in live and (reinsert or (u, v) not in retired):
            live.add((u, v))
            stream.append(insertion(u, v))
    return stream


transitions = st.tuples(st.integers(1, 4), st.integers(1, 4))


def _no_reinserts(stream):
    """Drop re-inserts of retired edges (and now-dangling deletes)."""
    live, retired, kept = set(), set(), []
    for element in stream:
        pair = (element.u, element.v)
        if element.op is Op.INSERT:
            if pair in retired:
                continue
            live.add(pair)
        else:
            if pair not in live:
                continue
            live.discard(pair)
            retired.add(pair)
        kept.append(element)
    return kept


@pytest.mark.parametrize("name", sorted(SHARDING_SPECS))
@settings(max_examples=25, deadline=None)
@given(stream=dynamic_streams(), ks=transitions, salt=st.integers(0, 3))
def test_universal_reshard_contract(name, stream, ks, salt):
    old_k, new_k = ks
    if not get_registration(name).cls.supports_deletions:
        # Insert-only baselines ignore deletions, so a retired edge
        # coming back would trip their duplicate-edge guard.
        stream = _no_reinserts(stream)
    engine = ShardedEstimator(
        SHARDING_SPECS[name], shards=old_k, salt=salt
    )
    try:
        engine.process_batch(stream)
        live_before = engine.live_edges
        report = engine.reshard(new_k)
        # Residue conservation.
        assert report.replayed_edges == live_before
        assert engine.live_edges == live_before
        assert sum(engine.partitioner.load_table()) == live_before
        # The K-correction identity on the new topology.
        assert engine.num_shards == new_k
        assert engine.estimate == pytest.approx(
            new_k * sum(engine.shard_estimates())
        )
        # Still fully live: ingest and reshard again.
        engine.process_batch([insertion("post-u", "post-v")])
        assert engine.reshard(old_k).epoch == 2
        assert engine.live_edges == live_before + 1
    finally:
        engine.close()


@pytest.mark.parametrize("name", sorted(SNAPSHOT_SPECS))
@settings(max_examples=25, deadline=None)
@given(stream=dynamic_streams(), ks=transitions)
def test_reshard_is_a_pure_function_of_state(name, stream, ks):
    """restore(snapshot(e)).reshard(K') is bit-identical to e.reshard."""
    old_k, new_k = ks
    engine = ShardedEstimator(SNAPSHOT_SPECS[name], shards=old_k, salt=1)
    twin = None
    try:
        engine.process_batch(stream)
        twin = ShardedEstimator.from_state_dict(engine.state_to_dict())
        engine.reshard(new_k)
        twin.reshard(new_k)
        assert json.dumps(
            engine.state_to_dict(), sort_keys=True
        ) == json.dumps(twin.state_to_dict(), sort_keys=True)
    finally:
        engine.close()
        if twin is not None:
            twin.close()


@settings(max_examples=30, deadline=None)
@given(stream=dynamic_streams(), old_k=st.integers(1, 4))
def test_exact_collapses_to_the_oracle_at_one_shard(stream, old_k):
    """K' = 1 with the exact inner is the exact count, exactly."""
    engine = ShardedEstimator("exact", shards=old_k, salt=2)
    try:
        engine.process_batch(stream)
        engine.reshard(1)
        live = {}
        for element in stream:
            if element.op is Op.INSERT:
                live[(element.u, element.v)] = True
            else:
                live.pop((element.u, element.v), None)
        oracle = build_estimator("exact")
        for u, v in live:
            oracle.process(insertion(u, v))
        assert engine.estimate == oracle.estimate
    finally:
        engine.close()
