"""Cross-estimator conformance: batched == per-element, observably.

The batch-ingest fast path is only admissible because it is
*observationally equivalent* to the per-element path: for any split of
a stream into batches, an estimator fed through ``process_batch`` must
end with the **identical** estimate — and identical complete
``state_to_dict()`` where snapshots are supported — as one fed the same
elements one ``process`` call at a time with the same seed.

This suite enforces that contract for every registry estimator that
declares a real fast path (``supports_batch``), over four stream
shapes (insert-only, mixed, deletion-heavy, duplicate-edge) and several
batch-split strategies including adversarially ragged random splits.
Estimators without a fast path inherit the base-class loop, which is
equivalent by construction; one test pins that too.
"""

from __future__ import annotations

import random

import pytest

from repro.api import build_estimator, get_registration, registered_estimators
from repro.graph.generators import bipartite_erdos_renyi
from repro.sampling.ndadjacency import NUMPY_AVAILABLE
from repro.streams.dynamic import (
    interleave_reinsertions,
    make_fully_dynamic,
    stream_from_edges,
)

SEED = 1234


def _edges(n_left=40, n_right=40, n_edges=500, seed=3):
    return bipartite_erdos_renyi(n_left, n_right, n_edges, random.Random(seed))


STREAMS = {
    "insert_only": lambda: list(stream_from_edges(_edges())),
    "mixed": lambda: list(
        make_fully_dynamic(_edges(), alpha=0.25, rng=random.Random(4))
    ),
    "deletion_heavy": lambda: list(
        make_fully_dynamic(_edges(), alpha=0.9, rng=random.Random(5))
    ),
    # Deleted edges come back later: exercises re-insertion bookkeeping
    # (the sample must treat the second life of an edge as a new edge).
    "duplicate_edge": lambda: list(
        interleave_reinsertions(
            _edges(), alpha=0.5, reinsert_fraction=0.6, rng=random.Random(6)
        )
    ),
}


def _random_splits(n, rng):
    """Ragged batch sizes covering 1, primes, and powers of two."""
    splits = []
    position = 0
    while position < n:
        size = rng.choice([1, 2, 3, 7, 16, 64, 200])
        splits.append(min(size, n - position))
        position += splits[-1]
    return splits


def _batch_estimators():
    return [
        name
        for name in registered_estimators()
        if get_registration(name).supports_batch
    ]


def _build(name):
    registration = get_registration(name)
    params = {}
    if "seed" in registration.param_names:
        params["seed"] = SEED
    if "budget" in registration.param_names:
        params["budget"] = 300
    if name == "windowed":
        # A count window short enough that every stream shape triggers
        # evictions, so the conformance matrix exercises the expiry
        # path, not just the pass-through.
        params["window"] = 200
    return build_estimator(name, **params)


def _feed_per_element(name, stream):
    estimator = _build(name)
    for element in stream:
        estimator.process(element)
    return estimator


def _feed_batched(name, stream, splits):
    estimator = _build(name)
    position = 0
    for size in splits:
        estimator.process_batch(stream[position : position + size])
        position += size
    assert position == len(stream)
    return estimator


def _assert_identical(name, reference, candidate, context):
    assert candidate.estimate == reference.estimate, context
    assert candidate.memory_edges == reference.memory_edges, context
    if get_registration(name).supports_snapshot:
        assert (
            candidate.state_to_dict() == reference.state_to_dict()
        ), context


def test_registry_declares_batch_estimators():
    """The fast-path roster is explicit; growing it extends this suite."""
    # "sharded" and "windowed" wrap registry estimators (abacus by
    # default here), so listing them runs the whole conformance matrix
    # through the sharded fan-out and window-expiry paths too —
    # partitioned chunking and synthesized expiry deletions must stay
    # observably equivalent to per-element routing.
    assert set(_batch_estimators()) == {
        "abacus",
        "parabacus",
        "exact",
        "sharded",
        "windowed",
    }


@pytest.mark.parametrize("name", _batch_estimators())
@pytest.mark.parametrize("stream_name", sorted(STREAMS))
def test_single_batch_matches_per_element(name, stream_name):
    stream = STREAMS[stream_name]()
    reference = _feed_per_element(name, stream)
    candidate = _feed_batched(name, stream, [len(stream)])
    _assert_identical(name, reference, candidate, (name, stream_name))


@pytest.mark.parametrize("name", _batch_estimators())
@pytest.mark.parametrize("stream_name", sorted(STREAMS))
@pytest.mark.parametrize("trial", range(3))
def test_arbitrary_splits_match_per_element(name, stream_name, trial):
    stream = STREAMS[stream_name]()
    splits = _random_splits(len(stream), random.Random(100 + trial))
    reference = _feed_per_element(name, stream)
    candidate = _feed_batched(name, stream, splits)
    _assert_identical(
        name, reference, candidate, (name, stream_name, trial, splits[:8])
    )


@pytest.mark.parametrize("name", _batch_estimators())
def test_interleaved_batch_and_element_calls(name):
    """Mixing the two call styles mid-stream keeps the equivalence.

    This is the regression trap for derived read-side state (the NumPy
    mirror): per-element calls mutate the sample behind the batch
    engine's back, and the next ``process_batch`` must resynchronise.
    """
    stream = STREAMS["mixed"]()
    reference = _feed_per_element(name, stream)
    candidate = _build(name)
    position = 0
    toggle = True
    rng = random.Random(7)
    while position < len(stream):
        size = min(rng.choice([5, 17, 64]), len(stream) - position)
        chunk = stream[position : position + size]
        if toggle:
            candidate.process_batch(chunk)
        else:
            for element in chunk:
                candidate.process(element)
        toggle = not toggle
        position += size
    _assert_identical(name, reference, candidate, name)


@pytest.mark.parametrize("name", ["fleet", "cas", "sgrapp", "abacus_support"])
def test_default_loop_estimators_are_equivalent_too(name):
    """Estimators without a fast path still honour process_batch."""
    registration = get_registration(name)
    assert not registration.supports_batch
    stream = STREAMS["insert_only"]()
    reference = _feed_per_element(name, stream)
    candidate = _feed_batched(
        name, stream, _random_splits(len(stream), random.Random(9))
    )
    assert candidate.estimate == reference.estimate
    assert candidate.memory_edges == reference.memory_edges


@pytest.mark.parametrize("stream_name", sorted(STREAMS))
@pytest.mark.parametrize("trial", range(2))
def test_dense_regime_engages_vectorized_kernel_and_stays_identical(
    stream_name, trial
):
    """Equivalence where it is riskiest: the vectorized counting path.

    The generic suite's budget/vertex ratio sits below the density gate,
    so ABACUS answers it with the scalar loop.  This dense configuration
    (few vertices, budget >> vertex count) drives the NumPy mirror
    kernel — asserted via the mirror having synced — and must still be
    bit-identical to the per-element path.
    """
    from repro.core.abacus import Abacus

    edges = bipartite_erdos_renyi(24, 24, 550, random.Random(40 + trial))
    if stream_name == "insert_only":
        stream = list(stream_from_edges(edges))
    elif stream_name == "mixed":
        stream = list(
            make_fully_dynamic(edges, alpha=0.25, rng=random.Random(41))
        )
    elif stream_name == "deletion_heavy":
        stream = list(
            make_fully_dynamic(edges, alpha=0.9, rng=random.Random(42))
        )
    else:
        stream = list(
            interleave_reinsertions(
                edges, alpha=0.5, reinsert_fraction=0.6, rng=random.Random(43)
            )
        )
    reference = Abacus(600, seed=SEED)
    for element in stream:
        reference.process(element)
    candidate = Abacus(600, seed=SEED)
    position = 0
    for size in _random_splits(len(stream), random.Random(300 + trial)):
        candidate.process_batch(stream[position : position + size])
        position += size
    if NUMPY_AVAILABLE and stream_name in ("insert_only", "mixed"):
        # Heavy deletion shapes can stay under the density gate for the
        # whole run; these two cannot — the kernel must have engaged.
        # (Without numpy the fast path legitimately never builds a
        # mirror and the equivalence assertions below still apply.)
        assert candidate._mirror is not None
        assert candidate._mirror.version >= 0, "density gate never engaged"
    assert candidate.estimate == reference.estimate
    assert candidate.state_to_dict() == reference.state_to_dict()


@pytest.mark.parametrize("name", _batch_estimators())
def test_empty_batch_is_a_no_op(name):
    estimator = _build(name)
    stream = STREAMS["mixed"]()[:50]
    estimator.process_batch(stream)
    before = estimator.estimate
    assert estimator.process_batch([]) == 0.0
    assert estimator.estimate == before
