"""Property-based tests for the triangle subsystem."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.dynamic import make_fully_dynamic
from repro.triangles.exact import (
    count_triangles,
    count_triangles_brute_force,
    triangles_containing_edge,
)
from repro.triangles.graph import UndirectedGraph, canonical_edge
from repro.triangles.thinkd import ExactTriangleCounter, ThinkD
from repro.types import Op

# Unique canonical undirected edges over vertices 0..11.
edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11))
    .filter(lambda e: e[0] != e[1])
    .map(lambda e: canonical_edge(*e)),
    unique=True,
    max_size=50,
)


@given(edge_lists)
@settings(max_examples=100, deadline=None)
def test_fast_count_matches_brute_force(edges):
    g = UndirectedGraph(edges)
    assert count_triangles(g) == count_triangles_brute_force(g)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_per_edge_counts_sum_to_3T(edges):
    g = UndirectedGraph(edges)
    total = sum(triangles_containing_edge(g, u, v) for u, v in g.edges())
    assert total == 3 * count_triangles(g)


@given(edge_lists, st.floats(0.0, 0.8), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_streaming_oracle_matches_static(edges, alpha, seed):
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    oracle = ExactTriangleCounter()
    oracle.process_stream(stream)
    graph = UndirectedGraph()
    for element in stream:
        if element.op is Op.INSERT:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    assert oracle.exact_count == count_triangles(graph)


@given(edge_lists, st.floats(0.0, 0.8), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_thinkd_exact_with_unbounded_budget(edges, alpha, seed):
    if len(edges) < 3:
        return
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    estimator = ThinkD(10**9, seed=0)
    estimate = estimator.process_stream(stream)
    oracle = ExactTriangleCounter()
    truth = oracle.process_stream(stream)
    assert estimate == pytest.approx(truth)


@given(edge_lists, st.integers(2, 30), st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_thinkd_memory_bounded_and_finite(edges, budget, seed):
    stream = make_fully_dynamic(edges, 0.3, random.Random(seed))
    estimator = ThinkD(budget, seed=seed ^ 0x5A5A)
    estimate = estimator.process_stream(stream)
    assert estimator.memory_edges <= budget
    assert estimate == estimate  # not NaN
