"""Property-based tests for the sketch substrate."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.bloom import BloomFilter, CountingBloomFilter
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hyperloglog import HyperLogLog

keys = st.lists(st.integers(0, 500), min_size=1, max_size=300)
seeds = st.integers(0, 2**31)


@given(keys, seeds, st.booleans())
@settings(max_examples=100, deadline=None)
def test_countmin_never_underestimates(key_list, seed, conservative):
    sketch = CountMinSketch(
        width=32, depth=3, rng=random.Random(seed),
        conservative=conservative,
    )
    truth = Counter()
    for key in key_list:
        sketch.update(key)
        truth[key] += 1
    for key, count in truth.items():
        assert sketch.estimate(key) >= count


@given(keys, seeds)
@settings(max_examples=100, deadline=None)
def test_countmin_total_is_stream_length(key_list, seed):
    sketch = CountMinSketch(width=16, depth=2, rng=random.Random(seed))
    for key in key_list:
        sketch.update(key)
    assert sketch.total == len(key_list)


@given(keys, keys, seeds)
@settings(max_examples=50, deadline=None)
def test_countmin_merge_equals_combined_stream(left, right, seed):
    base = CountMinSketch(width=64, depth=3, rng=random.Random(seed))
    other = base.spawn_compatible()
    combined = base.spawn_compatible()
    for key in left:
        base.update(key)
        combined.update(key)
    for key in right:
        other.update(key)
        combined.update(key)
    base.merge(other)
    for key in set(left + right):
        assert base.estimate(key) == combined.estimate(key)


@given(keys, seeds)
@settings(max_examples=100, deadline=None)
def test_bloom_no_false_negatives(key_list, seed):
    bloom = BloomFilter(
        capacity=max(16, len(key_list)), rng=random.Random(seed)
    )
    for key in key_list:
        bloom.add(key)
    assert all(key in bloom for key in key_list)


@given(keys, seeds)
@settings(max_examples=50, deadline=None)
def test_counting_bloom_tracks_live_set(key_list, seed):
    """Insert every key, then remove every other occurrence in reverse:
    survivors must still be present."""
    cbf = CountingBloomFilter(
        capacity=max(16, len(key_list)), rng=random.Random(seed)
    )
    for key in key_list:
        cbf.add(key)
    removed = Counter()
    for i, key in enumerate(key_list):
        if i % 2 == 0:
            cbf.remove(key)
            removed[key] += 1
    survivors = Counter(key_list) - removed
    assert all(key in cbf for key in survivors)


@given(keys, keys, seeds)
@settings(max_examples=50, deadline=None)
def test_hll_merge_commutes(left, right, seed):
    a = HyperLogLog(precision=8, rng=random.Random(seed))
    b = a.spawn_compatible()
    for key in left:
        a.add(key)
    for key in right:
        b.add(key)
    ab = a.spawn_compatible()
    ab.merge(a)
    ab.merge(b)
    ba = a.spawn_compatible()
    ba.merge(b)
    ba.merge(a)
    assert ab.cardinality() == ba.cardinality()


@given(keys, seeds)
@settings(max_examples=50, deadline=None)
def test_hll_duplicates_change_nothing(key_list, seed):
    """Re-adding already-seen keys must leave the state untouched."""
    hll = HyperLogLog(precision=8, rng=random.Random(seed))
    for key in key_list:
        hll.add(key)
    before = hll.cardinality()
    for key in key_list:
        hll.add(key)
    assert hll.cardinality() == before
