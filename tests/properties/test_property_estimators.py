"""Property-based tests for the estimators.

The two load-bearing properties:

1. With an unbounded budget ABACUS degenerates to exact counting on
   *any* valid fully dynamic stream (the sample holds everything and
   every increment is 1).
2. PARABACUS equals ABACUS exactly for any stream, batch size, and
   thread count when driven by the same seed (Theorem 5).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abacus import Abacus
from repro.core.parabacus import Parabacus
from repro.experiments.runner import ground_truth_final_count
from repro.streams.dynamic import make_fully_dynamic

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(100, 112)),
    unique=True,
    min_size=4,
    max_size=70,
)

stream_params = st.tuples(
    edge_lists, st.floats(0.0, 0.8), st.integers(0, 2**31)
)


@given(stream_params)
@settings(max_examples=80, deadline=None)
def test_abacus_exact_with_unbounded_budget(params):
    edges, alpha, seed = params
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    estimator = Abacus(10**9, seed=0)
    estimate = estimator.process_stream(stream)
    assert estimate == pytest.approx(ground_truth_final_count(stream))


@given(stream_params, st.integers(1, 25), st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_parabacus_equals_abacus(params, batch_size, threads):
    edges, alpha, seed = params
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    budget = max(2, len(edges) // 3)
    abacus = Abacus(budget, seed=seed)
    para = Parabacus(
        budget, batch_size=batch_size, num_threads=threads, seed=seed
    )
    expected = abacus.process_stream(stream)
    para.process_stream(stream)
    para.flush()
    assert para.estimate == pytest.approx(expected, rel=1e-12, abs=1e-9)
    assert set(para.sampler.sample.edges()) == set(
        abacus.sampler.sample.edges()
    )


@given(stream_params, st.integers(2, 40))
@settings(max_examples=60, deadline=None)
def test_abacus_estimate_is_finite_and_memory_bounded(params, budget):
    edges, alpha, seed = params
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    estimator = Abacus(budget, seed=seed ^ 0xABCD)
    estimate = estimator.process_stream(stream)
    assert estimate == estimate  # not NaN
    assert abs(estimate) < 1e15
    assert estimator.memory_edges <= budget


@given(stream_params)
@settings(max_examples=40, deadline=None)
def test_cheapest_side_never_changes_estimate(params):
    edges, alpha, seed = params
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    budget = max(2, len(edges) // 2)
    with_heuristic = Abacus(budget, seed=seed, cheapest_side=True)
    without = Abacus(budget, seed=seed, cheapest_side=False)
    e1 = with_heuristic.process_stream(stream)
    e2 = without.process_stream(stream)
    assert e1 == pytest.approx(e2, rel=1e-12, abs=1e-9)
