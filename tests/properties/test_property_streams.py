"""Property-based tests for stream synthesis and containers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.dynamic import make_fully_dynamic, validate_stream
from repro.streams.minibatch import iter_minibatches, partition_round_robin
from repro.streams.stream import EdgeStream
from repro.types import Op, insertion

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(100, 130)),
    unique=True,
    min_size=1,
    max_size=80,
)


@given(edge_lists, st.floats(0.0, 1.0), st.integers(0, 2**31))
@settings(max_examples=100, deadline=None)
def test_fully_dynamic_contract(edges, alpha, seed):
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    max_edges, final = validate_stream(stream)
    assert max_edges <= len(edges)
    assert final == stream.final_num_edges
    assert stream.num_deletions == round(len(edges) * alpha)


@given(edge_lists, st.floats(0.0, 1.0), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_deletion_edges_are_subset_of_insertions(edges, alpha, seed):
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    inserted = {e.edge for e in stream if e.op is Op.INSERT}
    deleted = {e.edge for e in stream if e.op is Op.DELETE}
    assert deleted <= inserted
    assert inserted == set(edges)


@given(edge_lists, st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_minibatches_partition_stream(edges, batch_size):
    elements = [insertion(u, v) for u, v in edges]
    batches = list(iter_minibatches(elements, batch_size))
    assert [e for b in batches for e in b] == elements
    assert all(len(b) <= batch_size for b in batches)
    assert all(len(b) == batch_size for b in batches[:-1])


@given(st.lists(st.integers(), max_size=100), st.integers(1, 12))
@settings(max_examples=80, deadline=None)
def test_round_robin_partition_properties(items, parts)  :
    chunks = partition_round_robin(items, parts)
    assert len(chunks) == parts
    assert [x for c in chunks for x in c] == items
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= 1


@given(edge_lists, st.integers(0, 79))
@settings(max_examples=50, deadline=None)
def test_stream_slicing_consistent(edges, cut):
    stream = EdgeStream(insertion(u, v) for u, v in edges)
    head = stream.prefix(min(cut, len(stream)))
    assert len(head) == min(cut, len(stream))
    assert list(head) == list(stream)[: len(head)]
