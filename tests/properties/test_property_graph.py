"""Property-based tests for the graph substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph, validate_bipartite
from repro.graph.bitruss import bitruss_decomposition, k_bitruss
from repro.graph.butterflies import (
    butterflies_containing_edge,
    count_butterflies,
    count_butterflies_brute_force,
)

# Unique edge lists over a small vertex universe: left 0..9, right 100..109.
edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(100, 109)),
    unique=True,
    max_size=60,
)


@given(edge_lists)
@settings(max_examples=120, deadline=None)
def test_fast_count_matches_brute_force(edges):
    g = BipartiteGraph(edges)
    assert count_butterflies(g) == count_butterflies_brute_force(g)


@given(edge_lists)
@settings(max_examples=80, deadline=None)
def test_per_edge_counts_sum_to_4B(edges):
    g = BipartiteGraph(edges)
    total = sum(
        butterflies_containing_edge(g, u, v) for u, v in g.edges()
    )
    assert total == 4 * count_butterflies(g)


@given(edge_lists, st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_graph_consistent_under_random_churn(edges, rnd):
    g = BipartiteGraph()
    live = set()
    operations = list(edges) * 2
    rnd.shuffle(operations)
    for u, v in operations:
        if (u, v) in live:
            g.remove_edge(u, v)
            live.remove((u, v))
        else:
            g.add_edge(u, v)
            live.add((u, v))
    ok, reason = validate_bipartite(g)
    assert ok, reason
    assert set(g.edges()) == live


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_insert_delta_equals_count_difference(edges):
    """butterflies_containing_edge == |B(G+e)| - |B(G)| for every e."""
    if not edges:
        return
    g = BipartiteGraph(edges[:-1])
    u, v = edges[-1]
    before = count_butterflies(g)
    delta = butterflies_containing_edge(g, u, v)
    g.add_edge(u, v)
    assert count_butterflies(g) == before + delta


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_bitruss_numbers_bounded_by_support(edges):
    g = BipartiteGraph(edges)
    numbers = bitruss_decomposition(g)
    for (u, v), b in numbers.items():
        # Bitruss number never exceeds the edge's initial support.
        assert b <= butterflies_containing_edge(g, u, v)
        assert b >= 0


@given(edge_lists, st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_k_bitruss_edges_meet_threshold(edges, k):
    g = BipartiteGraph(edges)
    sub = k_bitruss(g, k)
    for u, v in sub.edges():
        assert butterflies_containing_edge(sub, u, v) >= k
