"""Hypothesis round-trip fuzz for the packed record codec.

The randomized half of the codec conformance story
(``tests/store/test_codec_conformance.py`` is the deterministic
half).  Three properties, fuzzed over arbitrary unicode/int vertex
keys, huge keys brushing the length cap, and hostile timestamps:

1. **Identity**: ``decode_element(encode_element(e)) == e`` with the
   exact subclass and timestamp bits preserved.
2. **Differential**: the packed round trip agrees with the JSON path
   ``from_record(loads(dumps(to_record(e))))`` — the two grammars are
   interchangeable for every element either accepts.
3. **Refusal**: non-finite timestamps raise
   :class:`~repro.errors.CodecError` loudly; mutated payload bytes
   either decode to *some* element or raise ``CodecError`` — never an
   unrelated crash (the WAL's CRC framing means a mutated payload that
   reaches the codec at all is a checksum collision, so "raise or
   decode cleanly" is the whole safety contract at this layer).
"""

from __future__ import annotations

import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.store import codec
from repro.types import Op, StreamElement, TimedEdge

# Vertex keys: any unicode string (surrogates excluded — they are not
# UTF-8 encodable, and json.dumps refuses them too), any int from tiny
# through far past the i64 boundary, with boundary values spotlighted.
_strings = st.text(
    alphabet=st.characters(codec="utf-8"), max_size=64
)
_huge_strings = st.integers(
    min_value=codec.MAX_KEY_BYTES - 2, max_value=codec.MAX_KEY_BYTES + 2
).map(lambda n: "k" * n)
_ints = st.one_of(
    st.integers(),
    st.sampled_from(
        [
            0,
            -1,
            (1 << 63) - 1,
            -(1 << 63),
            1 << 63,
            -(1 << 63) - 1,
            1 << 200,
            -(1 << 200),
        ]
    ),
)
_keys = st.one_of(_ints, _strings, _huge_strings)
_ops = st.sampled_from([Op.INSERT, Op.DELETE])
_finite_times = st.floats(allow_nan=False, allow_infinity=False)

_plain = st.builds(StreamElement, _keys, _keys, _ops)
_timed = st.builds(TimedEdge, _keys, _keys, _ops, _finite_times)
_elements = st.one_of(_plain, _timed)


@given(_elements)
@settings(max_examples=300, deadline=None)
def test_round_trip_is_identity(element):
    decoded = codec.decode_element(codec.encode_element(element))
    assert decoded == element
    assert type(decoded) is type(element)
    if isinstance(element, TimedEdge):
        assert struct.pack("<d", decoded.time) == struct.pack(
            "<d", element.time
        )


@given(_elements)
@settings(max_examples=300, deadline=None)
def test_packed_path_agrees_with_the_json_path(element):
    via_json = StreamElement.from_record(
        json.loads(json.dumps(element.to_record(), separators=(",", ":")))
    )
    via_packed = codec.decode_element(codec.encode_element(element))
    assert via_packed == via_json
    assert type(via_packed) is type(via_json)


@given(st.lists(_elements, max_size=20))
@settings(max_examples=150, deadline=None)
def test_batch_round_trip(elements):
    decoded = codec.decode_batch(codec.encode_batch(elements))
    assert decoded == elements
    assert [type(e) for e in decoded] == [type(e) for e in elements]


@given(_keys, _keys, _ops)
@settings(max_examples=100, deadline=None)
def test_nan_and_inf_timestamps_are_refused_loudly(u, v, op):
    for hostile in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(CodecError, match="non-finite"):
            codec.encode_element(TimedEdge(u, v, op, hostile))


@given(
    _elements,
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=255),
)
@settings(max_examples=400, deadline=None)
def test_mutated_payloads_never_crash_unexpectedly(element, where, xor):
    """Flip one byte anywhere: decode cleanly or raise CodecError."""
    payload = bytearray(codec.encode_element(element))
    index = where % len(payload)
    payload[index] ^= xor
    try:
        decoded = codec.decode_element(bytes(payload))
    except CodecError:
        return
    # A harmless mutation (e.g. xor == 0) may still decode; whatever
    # comes back must be a real element with a finite clock.
    assert isinstance(decoded, StreamElement)
    if isinstance(decoded, TimedEdge):
        assert math.isfinite(decoded.time)


@given(
    _elements,
    st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=300, deadline=None)
def test_truncated_payloads_never_crash_unexpectedly(element, cut):
    payload = codec.encode_element(element)
    prefix = payload[: cut % len(payload)]  # strictly shorter
    try:
        decoded = codec.decode_element(prefix)
    except CodecError:
        return
    # The one benign prefix family: a JSON-escape payload whose JSON
    # happens to still parse (JSON is not length-prefixed).  Anything
    # packed is length-checked and cannot decode short.
    assert payload[0] == 0x80
    assert isinstance(decoded, StreamElement)


@given(st.binary(max_size=64))
@settings(max_examples=300, deadline=None)
def test_random_bytes_never_crash_unexpectedly(blob):
    try:
        decoded = codec.decode_element(blob)
    except CodecError:
        return
    assert isinstance(decoded, StreamElement)


@given(st.integers(min_value=0, max_value=255))
@settings(max_examples=256, deadline=None)
def test_op_byte_exhaustion(flags):
    """All 256 first-byte values: decode cleanly or refuse cleanly."""
    for suffix in (
        struct.pack("<qq", 1, 2),
        struct.pack("<qqd", 1, 2, 1.5),
        b"",
        b'["+",1,2]',
    ):
        try:
            decoded = codec.decode_element(bytes([flags]) + suffix)
        except CodecError:
            continue
        assert isinstance(decoded, StreamElement)
