"""Property-based tests for the sampling substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.random_pairing import RandomPairing
from repro.sampling.versioned import VersionedGraphSample
from repro.streams.dynamic import make_fully_dynamic
from repro.types import Op

edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(100, 120)),
    unique=True,
    min_size=1,
    max_size=60,
)

dynamic_params = st.tuples(
    edge_lists,
    st.floats(0.0, 0.9),
    st.integers(0, 2**31),
    st.integers(2, 20),
)


@given(dynamic_params)
@settings(max_examples=100, deadline=None)
def test_rp_invariants_hold_throughout(params):
    edges, alpha, seed, budget = params
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    rp = RandomPairing(budget, random.Random(seed + 1))
    live = set()
    for element in stream:
        rp.process(element)
        if element.op is Op.INSERT:
            live.add(element.edge)
        else:
            live.discard(element.edge)
        # Invariants after every element:
        assert rp.sample.num_edges <= budget
        assert rp.num_live_edges == len(live)
        assert rp.cb >= 0 and rp.cg >= 0
        assert set(rp.sample.edges()) <= live
        # The effective bound is an upper bound on the actual size.
        assert rp.sample.num_edges <= rp.effective_sample_bound


@given(dynamic_params)
@settings(max_examples=60, deadline=None)
def test_rp_sample_full_when_compensated(params):
    """When cb + cg == 0, RP behaves like a reservoir: the sample holds
    min(k, |E|) edges exactly."""
    edges, alpha, seed, budget = params
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    rp = RandomPairing(budget, random.Random(seed + 1))
    for element in stream:
        rp.process(element)
        if rp.cb + rp.cg == 0:
            assert rp.sample.num_edges == min(budget, rp.num_live_edges)


@given(dynamic_params)
@settings(max_examples=50, deadline=None)
def test_versioned_sample_reconstructs_history(params):
    """neighbors_at(v, i) must equal a full snapshot replay."""
    edges, alpha, seed, budget = params
    stream = list(make_fully_dynamic(edges, alpha, random.Random(seed)))

    # Reference replay with full snapshots.
    reference = RandomPairing(budget, random.Random(seed + 2))
    snapshots = []
    vertices = {x for e in edges for x in e}
    for element in stream:
        snapshots.append(
            {v: set(reference.sample.neighbors(v)) for v in vertices}
        )
        reference.process(element)

    # Delta-coded replay.
    sample = GraphSample()
    versioned = VersionedGraphSample(sample)
    rp = RandomPairing(budget, random.Random(seed + 2), sample=sample)
    versioned.begin_batch()
    for element in stream:
        versioned.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
        rp.process(element)
    versioned.end_batch()

    for version, snapshot in enumerate(snapshots):
        for vertex, neighbours in snapshot.items():
            assert versioned.neighbors_at(vertex, version) == neighbours


@given(edge_lists, st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_graph_sample_index_integrity(edges, seed):
    rng = random.Random(seed)
    sample = GraphSample()
    live = set()
    for u, v in edges:
        sample.add_edge(u, v)
        live.add((u, v))
        if live and rng.random() < 0.3:
            evicted = sample.evict_random_edge(rng)
            live.discard(evicted)
    assert set(sample.edges()) == live
    for u, v in live:
        assert v in sample.neighbors(u)
        assert u in sample.neighbors(v)
