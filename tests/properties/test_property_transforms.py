"""Property-based tests for stream transforms and decompositions."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import count_butterflies
from repro.graph.core_decomposition import (
    ab_core,
    butterfly_core_prefilter,
)
from repro.graph.tip_decomposition import (
    butterfly_counts_one_side,
    tip_decomposition,
)
from repro.streams.adversarial import churn_stream, deletion_storm
from repro.streams.dynamic import make_fully_dynamic, validate_stream
from repro.streams.stream import EdgeStream
from repro.streams.transform import (
    deletion_tail,
    inverse,
    merged,
    relabeled,
    sanitized,
)
from repro.types import deletion, insertion

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(100, 112)),
    unique=True,
    min_size=1,
    max_size=50,
)
seeds = st.integers(0, 2**31)

# Arbitrary (possibly contract-violating) element sequences.
dirty_streams = st.lists(
    st.tuples(
        st.integers(0, 6), st.integers(100, 106), st.booleans()
    ),
    min_size=0,
    max_size=80,
).map(
    lambda triples: EdgeStream(
        insertion(u, v) if ins else deletion(u, v)
        for u, v, ins in triples
    )
)


@given(dirty_streams)
@settings(max_examples=150, deadline=None)
def test_sanitized_output_always_validates(stream):
    clean, report = sanitized(stream)
    validate_stream(clean)
    assert report.kept + report.dropped == len(stream)
    assert len(report.dropped_indices) == report.dropped


@given(dirty_streams)
@settings(max_examples=100, deadline=None)
def test_sanitized_is_idempotent(stream):
    clean, _ = sanitized(stream)
    again, report = sanitized(clean)
    assert report.dropped == 0
    assert list(again) == list(clean)


@given(edge_lists, st.floats(0.0, 0.9), seeds)
@settings(max_examples=100, deadline=None)
def test_inverse_round_trip_empties_graph(edges, alpha, seed):
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    combined = EdgeStream(list(stream) + list(inverse(stream)))
    _, final_edges = validate_stream(combined)
    assert final_edges == 0


@given(edge_lists, st.floats(0.0, 0.9), seeds)
@settings(max_examples=100, deadline=None)
def test_deletion_tail_always_drains(edges, alpha, seed):
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    _, final_edges = validate_stream(deletion_tail(stream))
    assert final_edges == 0


@given(edge_lists, st.floats(0.0, 0.5), seeds)
@settings(max_examples=100, deadline=None)
def test_relabeled_preserves_structure(edges, alpha, seed):
    stream = make_fully_dynamic(edges, alpha, random.Random(seed))
    dense, left_map, right_map = relabeled(stream)
    validate_stream(dense)
    assert len(dense) == len(stream)
    # Labels are dense: 0..n-1 on each side.
    assert sorted(left_map.values()) == list(range(len(left_map)))
    assert sorted(right_map.values()) == list(range(len(right_map)))
    # Op sequence unchanged.
    assert [e.op for e in dense] == [e.op for e in stream]


@given(
    st.lists(edge_lists, min_size=1, max_size=4),
    st.floats(0.0, 0.5),
    seeds,
)
@settings(max_examples=50, deadline=None)
def test_merged_streams_stay_valid(edge_groups, alpha, seed):
    rng = random.Random(seed)
    streams = [
        make_fully_dynamic(edges, alpha, random.Random(seed + i))
        for i, edges in enumerate(edge_groups)
    ]
    out = merged(streams, rng=rng)
    validate_stream(out)
    assert len(out) == sum(len(s) for s in streams)


@given(edge_lists, st.floats(0.0, 1.0), seeds)
@settings(max_examples=100, deadline=None)
def test_deletion_storm_valid_and_sized(edges, fraction, seed):
    stream = deletion_storm(edges, fraction, random.Random(seed))
    max_edges, final_edges = validate_stream(stream)
    assert max_edges == len(edges)
    assert final_edges == len(edges) - round(len(edges) * fraction)


@given(edge_lists, st.integers(1, 4), seeds)
@settings(max_examples=50, deadline=None)
def test_churn_always_returns_to_empty(edges, cycles, seed):
    stream = churn_stream(edges, cycles, random.Random(seed))
    _, final_edges = validate_stream(stream)
    assert final_edges == 0


@given(edge_lists)
@settings(max_examples=100, deadline=None)
def test_22_core_preserves_butterflies(edges):
    graph = BipartiteGraph(edges)
    core = butterfly_core_prefilter(graph)
    assert count_butterflies(core) == count_butterflies(graph)


@given(edge_lists, st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=100, deadline=None)
def test_ab_core_degree_invariants(edges, alpha, beta):
    core = ab_core(BipartiteGraph(edges), alpha, beta)
    for u in core.left_vertices():
        assert core.degree(u) >= alpha
    for v in core.right_vertices():
        assert core.degree(v) >= beta


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_one_side_counts_sum_to_twice_butterflies(edges):
    from repro.types import Side

    graph = BipartiteGraph(edges)
    counts = butterfly_counts_one_side(graph, Side.LEFT)
    assert sum(counts.values()) == 2 * count_butterflies(graph)


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_tip_numbers_bounded_by_initial_support(edges):
    """Peeling is monotone: a vertex's tip number never exceeds its
    initial butterfly count, and is non-negative."""
    from repro.types import Side

    graph = BipartiteGraph(edges)
    initial = butterfly_counts_one_side(graph, Side.LEFT)
    tips = tip_decomposition(graph, Side.LEFT)
    assert set(tips) == set(initial)
    max_initial = max(initial.values(), default=0)
    for vertex, tip in tips.items():
        assert 0 <= tip <= max_initial
