"""Unit tests for HyperLogLog and the stream cardinality tracker."""

import random

import pytest

from repro.errors import SamplingError
from repro.sketch.hyperloglog import HyperLogLog, StreamCardinalityTracker
from repro.types import deletion, insertion


class TestConstruction:
    def test_precision_bounds(self):
        with pytest.raises(SamplingError):
            HyperLogLog(precision=3)
        with pytest.raises(SamplingError):
            HyperLogLog(precision=19)

    def test_register_count(self):
        assert HyperLogLog(precision=10).num_registers == 1024


class TestCardinality:
    def test_empty_counter_near_zero(self):
        hll = HyperLogLog(precision=10, rng=random.Random(0))
        assert hll.cardinality() == pytest.approx(0.0, abs=1.0)

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(precision=10, rng=random.Random(1))
        for _ in range(1000):
            hll.add("same-key")
        assert hll.cardinality() == pytest.approx(1.0, abs=0.5)

    def test_small_range_uses_linear_counting(self):
        hll = HyperLogLog(precision=12, rng=random.Random(2))
        for i in range(100):
            hll.add(i)
        assert hll.cardinality() == pytest.approx(100, rel=0.05)

    @pytest.mark.parametrize("n", [1000, 20000])
    def test_accuracy_within_error_budget(self, n):
        hll = HyperLogLog(precision=12, rng=random.Random(3))
        for i in range(n):
            hll.add(i)
        error = abs(hll.cardinality() - n) / n
        assert error < 4 * hll.relative_error()

    def test_relative_error_formula(self):
        hll = HyperLogLog(precision=12)
        assert hll.relative_error() == pytest.approx(1.04 / 64.0)

    def test_clear(self):
        hll = HyperLogLog(precision=8, rng=random.Random(4))
        hll.add("x")
        hll.clear()
        assert hll.cardinality() == pytest.approx(0.0, abs=1.0)


class TestMerge:
    def test_merge_estimates_union(self):
        base = HyperLogLog(precision=12, rng=random.Random(5))
        other = base.spawn_compatible()
        for i in range(5000):
            base.add(("a", i))
        for i in range(5000):
            other.add(("b", i))
        # 1000 shared keys.
        for i in range(1000):
            base.add(("shared", i))
            other.add(("shared", i))
        base.merge(other)
        assert base.cardinality() == pytest.approx(11000, rel=0.1)

    def test_merge_is_idempotent_for_same_counter(self):
        base = HyperLogLog(precision=10, rng=random.Random(6))
        for i in range(2000):
            base.add(i)
        before = base.cardinality()
        clone = base.spawn_compatible()
        clone.merge(base)
        clone.merge(base)
        assert clone.cardinality() == pytest.approx(before)

    def test_merge_requires_same_salt(self):
        a = HyperLogLog(precision=10, rng=random.Random(7))
        b = HyperLogLog(precision=10, rng=random.Random(8))
        with pytest.raises(SamplingError):
            a.merge(b)

    def test_merge_requires_same_precision(self):
        a = HyperLogLog(precision=10, rng=random.Random(9))
        b = HyperLogLog(precision=11, rng=random.Random(9))
        with pytest.raises(SamplingError):
            a.merge(b)


class TestStreamCardinalityTracker:
    def test_tracks_three_cardinalities(self):
        tracker = StreamCardinalityTracker(
            precision=12, rng=random.Random(10)
        )
        for u in range(200):
            for v in range(20):
                tracker.observe(insertion(u, 10**6 + v))
        assert tracker.distinct_left() == pytest.approx(200, rel=0.1)
        assert tracker.distinct_right() == pytest.approx(20, rel=0.25)
        assert tracker.distinct_edges() == pytest.approx(4000, rel=0.1)

    def test_deletions_are_ignored(self):
        tracker = StreamCardinalityTracker(
            precision=10, rng=random.Random(11)
        )
        tracker.observe(insertion(1, 2))
        before = tracker.distinct_edges()
        tracker.observe(deletion(1, 2))
        assert tracker.distinct_edges() == before

    def test_duplicate_edges_counted_once(self):
        tracker = StreamCardinalityTracker(
            precision=10, rng=random.Random(12)
        )
        for _ in range(50):
            tracker.observe(insertion("u", "v"))
        assert tracker.distinct_edges() == pytest.approx(1.0, abs=0.5)
