"""Unit tests for the Count-Min sketch and heavy-hitter tracker."""

import random
from collections import Counter

import pytest

from repro.errors import SamplingError
from repro.sketch.countmin import CountMinSketch, HeavyHitterTracker


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(SamplingError):
            CountMinSketch(width=0)
        with pytest.raises(SamplingError):
            CountMinSketch(width=8, depth=0)

    def test_from_error_bounds_dimensions(self):
        sketch = CountMinSketch.from_error_bounds(epsilon=0.01, delta=0.01)
        assert sketch.width >= 272  # ceil(e / 0.01)
        assert sketch.depth >= 4  # ceil(ln 100)

    def test_from_error_bounds_rejects_bad_inputs(self):
        with pytest.raises(SamplingError):
            CountMinSketch.from_error_bounds(epsilon=0.0, delta=0.5)
        with pytest.raises(SamplingError):
            CountMinSketch.from_error_bounds(epsilon=0.5, delta=1.5)

    def test_num_counters(self):
        assert CountMinSketch(width=64, depth=3).num_counters == 192


class TestPointQueries:
    def test_empty_sketch_estimates_zero(self):
        sketch = CountMinSketch(width=32, rng=random.Random(0))
        assert sketch.estimate("never-seen") == 0

    def test_never_underestimates(self):
        rng = random.Random(1)
        sketch = CountMinSketch(width=64, depth=4, rng=rng)
        truth = Counter()
        for _ in range(2000):
            key = rng.randrange(300)
            truth[key] += 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(width=4096, depth=5, rng=random.Random(2))
        for key in range(10):
            sketch.update(key, count=key + 1)
        for key in range(10):
            assert sketch.estimate(key) == key + 1

    def test_weighted_update(self):
        sketch = CountMinSketch(width=128, rng=random.Random(3))
        sketch.update("x", count=42)
        assert sketch.estimate("x") >= 42
        assert sketch.total == 42

    def test_zero_count_update_is_noop(self):
        sketch = CountMinSketch(width=32, rng=random.Random(4))
        sketch.update("x", count=0)
        assert sketch.total == 0

    def test_rejects_negative_counts(self):
        sketch = CountMinSketch(width=32, rng=random.Random(5))
        with pytest.raises(SamplingError):
            sketch.update("x", count=-1)

    def test_error_bound_holds_with_high_probability(self):
        rng = random.Random(6)
        sketch = CountMinSketch.from_error_bounds(
            epsilon=0.02, delta=0.01, rng=rng
        )
        truth = Counter()
        for _ in range(5000):
            key = rng.randrange(1000)
            truth[key] += 1
            sketch.update(key)
        budget = 0.02 * sketch.total
        violations = sum(
            1
            for key, count in truth.items()
            if sketch.estimate(key) > count + budget
        )
        # delta=1% per key; allow a small number of unlucky keys.
        assert violations <= max(3, 0.02 * len(truth))


class TestConservativeUpdate:
    def test_conservative_never_underestimates(self):
        rng = random.Random(7)
        sketch = CountMinSketch(
            width=64, depth=4, rng=rng, conservative=True
        )
        truth = Counter()
        for _ in range(2000):
            key = rng.randrange(300)
            truth[key] += 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_conservative_is_at_most_plain(self):
        rng_keys = random.Random(8)
        plain = CountMinSketch(width=32, depth=3, rng=random.Random(9))
        conservative = plain.spawn_compatible()
        conservative.conservative = True
        keys = [rng_keys.randrange(200) for _ in range(3000)]
        for key in keys:
            plain.update(key)
            conservative.update(key)
        for key in set(keys):
            assert conservative.estimate(key) <= plain.estimate(key)


class TestMerge:
    def test_merge_adds_counts(self):
        base = CountMinSketch(width=64, depth=4, rng=random.Random(10))
        other = base.spawn_compatible()
        base.update("a", 5)
        other.update("a", 7)
        other.update("b", 2)
        base.merge(other)
        assert base.estimate("a") >= 12
        assert base.estimate("b") >= 2
        assert base.total == 14

    def test_merge_requires_compatible_shapes(self):
        a = CountMinSketch(width=64, rng=random.Random(11))
        b = CountMinSketch(width=64, rng=random.Random(12))
        with pytest.raises(SamplingError):
            a.merge(b)  # same shape, different salts

    def test_merge_rejects_conservative(self):
        a = CountMinSketch(width=32, rng=random.Random(13))
        b = a.spawn_compatible()
        b.conservative = True
        with pytest.raises(SamplingError):
            a.merge(b)

    def test_inner_product_upper_bounds_truth(self):
        rng = random.Random(14)
        a = CountMinSketch(width=256, depth=4, rng=rng)
        b = a.spawn_compatible()
        fa, fb = Counter(), Counter()
        for _ in range(1000):
            ka, kb = rng.randrange(50), rng.randrange(50)
            fa[ka] += 1
            fb[kb] += 1
            a.update(ka)
            b.update(kb)
        truth = sum(fa[k] * fb[k] for k in fa)
        assert a.inner_product(b) >= truth

    def test_clear(self):
        sketch = CountMinSketch(width=32, rng=random.Random(15))
        sketch.update("x", 3)
        sketch.clear()
        assert sketch.estimate("x") == 0
        assert sketch.total == 0


class TestHeavyHitterTracker:
    def test_rejects_bad_threshold(self):
        with pytest.raises(SamplingError):
            HeavyHitterTracker(threshold_fraction=0.0)
        with pytest.raises(SamplingError):
            HeavyHitterTracker(threshold_fraction=1.5)

    def test_finds_planted_heavy_hitter(self):
        rng = random.Random(16)
        tracker = HeavyHitterTracker(
            threshold_fraction=0.2, rng=random.Random(17)
        )
        for _ in range(500):
            tracker.update("hub")
        for _ in range(500):
            tracker.update(rng.randrange(10000))
        hitters = dict(tracker.heavy_hitters())
        assert "hub" in hitters
        assert hitters["hub"] >= 500

    def test_light_keys_not_reported(self):
        tracker = HeavyHitterTracker(
            threshold_fraction=0.5, rng=random.Random(18)
        )
        for key in range(100):
            tracker.update(key)
        assert tracker.heavy_hitters() == []

    def test_hitters_sorted_heaviest_first(self):
        tracker = HeavyHitterTracker(
            threshold_fraction=0.1, rng=random.Random(19)
        )
        for _ in range(60):
            tracker.update("a")
        for _ in range(40):
            tracker.update("b")
        hitters = tracker.heavy_hitters()
        assert [key for key, _ in hitters] == ["a", "b"]

    def test_estimate_uses_exact_candidate_counts(self):
        tracker = HeavyHitterTracker(
            threshold_fraction=0.01, rng=random.Random(20)
        )
        for _ in range(100):
            tracker.update("hub")
        assert tracker.estimate("hub") >= 100
        assert tracker.total == 100
