"""Unit tests for the 4-universal hash family."""

import random
from collections import Counter

from repro.sketch.hashing import FourWiseHash


class TestFourWiseHash:
    def test_deterministic(self):
        h = FourWiseHash(random.Random(0))
        assert h(12345) == h(12345)

    def test_different_instances_differ(self):
        h1 = FourWiseHash(random.Random(1))
        h2 = FourWiseHash(random.Random(2))
        values1 = [h1(i) for i in range(50)]
        values2 = [h2(i) for i in range(50)]
        assert values1 != values2

    def test_sign_is_plus_minus_one(self):
        h = FourWiseHash(random.Random(3))
        signs = {h.sign(i) for i in range(100)}
        assert signs == {-1, 1}

    def test_signs_roughly_balanced(self):
        h = FourWiseHash(random.Random(4))
        positives = sum(1 for i in range(2000) if h.sign(i) == 1)
        assert 800 < positives < 1200

    def test_bucket_range(self):
        h = FourWiseHash(random.Random(5))
        for i in range(200):
            assert 0 <= h.bucket(i, 16) < 16

    def test_buckets_roughly_uniform(self):
        h = FourWiseHash(random.Random(6))
        counts = Counter(h.bucket(i, 8) for i in range(8000))
        for bucket in range(8):
            assert abs(counts[bucket] - 1000) < 200

    def test_negative_and_huge_keys(self):
        h = FourWiseHash(random.Random(7))
        # Must not raise and must stay in field range.
        for key in (-5, 0, 2**61 - 1, 2**64 + 17):
            value = h(key)
            assert 0 <= value < (1 << 61) - 1
