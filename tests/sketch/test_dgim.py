"""Unit and property tests for the DGIM sliding-window counter."""

import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.sketch.dgim import DeletionRateMonitor, DgimCounter
from repro.types import deletion, insertion


def _exact_window_count(events, window):
    recent = events[-window:]
    return sum(1 for e in recent if e)


class TestConstruction:
    def test_rejects_bad_window(self):
        with pytest.raises(SamplingError):
            DgimCounter(window=0)

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(SamplingError):
            DgimCounter(window=10, buckets_per_size=1)

    def test_error_bound_formula(self):
        assert DgimCounter(10, buckets_per_size=2).error_bound() == 0.5
        assert DgimCounter(10, buckets_per_size=10).error_bound() == (
            pytest.approx(0.1)
        )


class TestExactSmallCases:
    def test_empty_counter(self):
        counter = DgimCounter(window=10)
        assert counter.estimate() == 0.0

    def test_all_zeros(self):
        counter = DgimCounter(window=10)
        for _ in range(50):
            counter.update(False)
        assert counter.estimate() == 0.0

    def test_single_event_in_window(self):
        # A size-1 oldest bucket is exact (no halving).
        counter = DgimCounter(window=10)
        counter.update(True)
        assert counter.estimate() == pytest.approx(1.0)

    def test_event_expires(self):
        counter = DgimCounter(window=5)
        counter.update(True)
        for _ in range(5):
            counter.update(False)
        assert counter.estimate() == 0.0

    def test_estimate_tracks_burst(self):
        counter = DgimCounter(window=100, buckets_per_size=8)
        for _ in range(100):
            counter.update(True)
        truth = 100
        assert counter.estimate() == pytest.approx(
            truth, rel=counter.error_bound()
        )


class TestErrorBound:
    @pytest.mark.parametrize("buckets_per_size", [2, 4, 8])
    @pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
    def test_estimate_within_bound_random_streams(
        self, buckets_per_size, density
    ):
        rng = random.Random(buckets_per_size * 10 + int(density * 10))
        window = 200
        counter = DgimCounter(window, buckets_per_size)
        events = []
        for step in range(2000):
            event = rng.random() < density
            events.append(event)
            counter.update(event)
            if step % 97 == 0:
                truth = _exact_window_count(events, window)
                if truth:
                    error = abs(counter.estimate() - truth) / truth
                    assert error <= counter.error_bound() + 1e-9

    def test_memory_logarithmic(self):
        counter = DgimCounter(window=10_000, buckets_per_size=2)
        for _ in range(50_000):
            counter.update(True)
        # log2(10000) ~ 13.3 sizes, <= 3 buckets each before merge.
        assert counter.num_buckets <= 45


@given(
    st.lists(st.booleans(), min_size=1, max_size=400),
    st.integers(5, 80),
    st.integers(2, 6),
)
@settings(max_examples=80, deadline=None)
def test_dgim_property_error_bound(events, window, buckets_per_size):
    counter = DgimCounter(window, buckets_per_size)
    recent = deque(maxlen=window)
    for event in events:
        counter.update(event)
        recent.append(event)
    truth = sum(recent)
    if truth == 0:
        # No in-window event implies no bucket survives expiry.
        assert counter.estimate() == 0.0
    else:
        error = abs(counter.estimate() - truth) / truth
        assert error <= counter.error_bound() + 1e-9


class TestDeletionRateMonitor:
    def test_insert_only_ratio_zero(self):
        monitor = DeletionRateMonitor(window=100)
        for i in range(50):
            monitor.observe(insertion(i, 100 + i))
        assert monitor.deletion_ratio() == 0.0

    def test_ratio_tracks_alpha(self):
        rng = random.Random(3)
        monitor = DeletionRateMonitor(window=500, buckets_per_size=16)
        for i in range(5000):
            if rng.random() < 0.25:
                monitor.observe(deletion(i, 100))
            else:
                monitor.observe(insertion(i, 100))
        assert monitor.deletion_ratio() == pytest.approx(0.25, abs=0.08)

    def test_ratio_reacts_to_regime_change(self):
        monitor = DeletionRateMonitor(window=200, buckets_per_size=8)
        for i in range(400):
            monitor.observe(insertion(i, 100))
        quiet = monitor.deletion_ratio()
        for i in range(200):
            monitor.observe(deletion(i, 100))
        stormy = monitor.deletion_ratio()
        assert quiet == 0.0
        assert stormy > 0.8

    def test_empty_monitor(self):
        assert DeletionRateMonitor(window=10).deletion_ratio() == 0.0
