"""Unit tests for the Bloom filter variants."""

import random

import pytest

from repro.errors import SamplingError
from repro.sketch.bloom import (
    BloomFilter,
    CountingBloomFilter,
    optimal_parameters,
)


class TestOptimalParameters:
    def test_rejects_bad_inputs(self):
        with pytest.raises(SamplingError):
            optimal_parameters(0, 0.01)
        with pytest.raises(SamplingError):
            optimal_parameters(100, 0.0)
        with pytest.raises(SamplingError):
            optimal_parameters(100, 1.0)

    def test_standard_design_point(self):
        # n=1000, p=1%: ~9.59 bits/key and ~7 hashes is the textbook
        # answer.
        bits, hashes = optimal_parameters(1000, 0.01)
        assert 9000 <= bits <= 10000
        assert hashes == 7

    def test_lower_fp_rate_needs_more_bits(self):
        loose, _ = optimal_parameters(1000, 0.05)
        tight, _ = optimal_parameters(1000, 0.001)
        assert tight > loose


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = random.Random(0)
        bloom = BloomFilter(capacity=500, fp_rate=0.01, rng=rng)
        keys = [rng.randrange(10**9) for _ in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_fp_rate_near_design_point(self):
        rng = random.Random(1)
        bloom = BloomFilter(capacity=2000, fp_rate=0.02, rng=rng)
        for i in range(2000):
            bloom.add(("in", i))
        false_positives = sum(
            1 for i in range(10000) if ("out", i) in bloom
        )
        assert false_positives / 10000 < 0.05  # 2.5x headroom

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(capacity=100, rng=random.Random(2))
        assert "anything" not in bloom
        assert bloom.fill_ratio() == 0.0
        assert bloom.current_fp_rate() == 0.0

    def test_might_contain_alias(self):
        bloom = BloomFilter(capacity=100, rng=random.Random(3))
        bloom.add("x")
        assert bloom.might_contain("x")

    def test_tuple_keys_work(self):
        bloom = BloomFilter(capacity=100, rng=random.Random(4))
        bloom.add((1, 2))
        assert (1, 2) in bloom

    def test_approximate_cardinality(self):
        bloom = BloomFilter(
            capacity=5000, fp_rate=0.01, rng=random.Random(5)
        )
        for i in range(3000):
            bloom.add(i)
        estimate = bloom.approximate_cardinality()
        assert estimate == pytest.approx(3000, rel=0.1)

    def test_union_contains_both_sides(self):
        rng = random.Random(6)
        a = BloomFilter(capacity=200, rng=rng)
        b = BloomFilter.__new__(BloomFilter)
        b.num_bits = a.num_bits
        b.num_hashes = a.num_hashes
        b._bits = 0
        b._salts = list(a._salts)
        b._num_added = 0
        a.add("left")
        b.add("right")
        merged = a.union(b)
        assert "left" in merged
        assert "right" in merged
        assert merged.num_added == 2

    def test_union_requires_compatible_filters(self):
        a = BloomFilter(capacity=100, rng=random.Random(7))
        b = BloomFilter(capacity=100, rng=random.Random(8))
        with pytest.raises(SamplingError):
            a.union(b)

    def test_num_added_counts_multiplicity(self):
        bloom = BloomFilter(capacity=100, rng=random.Random(9))
        bloom.add("x")
        bloom.add("x")
        assert bloom.num_added == 2


class TestCountingBloomFilter:
    def test_add_then_remove_round_trip(self):
        cbf = CountingBloomFilter(capacity=100, rng=random.Random(10))
        cbf.add("edge")
        assert "edge" in cbf
        cbf.remove("edge")
        assert "edge" not in cbf

    def test_multiplicity_respected(self):
        cbf = CountingBloomFilter(capacity=100, rng=random.Random(11))
        cbf.add("edge")
        cbf.add("edge")
        cbf.remove("edge")
        assert "edge" in cbf  # one copy remains
        cbf.remove("edge")
        assert "edge" not in cbf

    def test_remove_absent_key_raises(self):
        cbf = CountingBloomFilter(capacity=100, rng=random.Random(12))
        with pytest.raises(SamplingError):
            cbf.remove("never-added")

    def test_no_false_negatives_under_churn(self):
        rng = random.Random(13)
        cbf = CountingBloomFilter(
            capacity=1000, fp_rate=0.01, rng=random.Random(14)
        )
        live = set()
        for step in range(3000):
            if live and rng.random() < 0.4:
                key = rng.choice(sorted(live))
                cbf.remove(key)
                live.discard(key)
            else:
                key = rng.randrange(10**6)
                if key not in live:
                    cbf.add(key)
                    live.add(key)
        assert all(key in cbf for key in live)

    def test_might_contain_alias(self):
        cbf = CountingBloomFilter(capacity=50, rng=random.Random(15))
        cbf.add(7)
        assert cbf.might_contain(7)
