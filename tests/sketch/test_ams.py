"""Unit tests for the AMS / tug-of-war sketch."""

import random
from collections import Counter

import pytest

from repro.errors import SamplingError
from repro.sketch.ams import AmsSketch


def _true_f2(frequencies: Counter) -> float:
    return float(sum(f * f for f in frequencies.values()))


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(SamplingError):
            AmsSketch(width=0)
        with pytest.raises(SamplingError):
            AmsSketch(width=8, depth=0)

    def test_num_counters(self):
        assert AmsSketch(width=64, depth=5).num_counters == 320


class TestF2Estimation:
    def test_empty_sketch_estimates_zero(self):
        assert AmsSketch(width=32, rng=random.Random(0)).estimate_f2() == 0.0

    def test_single_heavy_key(self):
        sketch = AmsSketch(width=256, depth=7, rng=random.Random(1))
        for _ in range(100):
            sketch.update(42)
        assert sketch.estimate_f2() == pytest.approx(10000, rel=0.2)

    def test_multiple_keys_reasonable_accuracy(self):
        rng = random.Random(2)
        frequencies = Counter()
        sketch = AmsSketch(width=512, depth=7, rng=rng)
        for _ in range(5000):
            key = rng.randrange(200)
            frequencies[key] += 1
            sketch.update(key)
        truth = _true_f2(frequencies)
        assert sketch.estimate_f2() == pytest.approx(truth, rel=0.35)

    def test_weighted_updates(self):
        sketch = AmsSketch(width=128, depth=7, rng=random.Random(3))
        sketch.update(1, delta=10.0)
        assert sketch.estimate_f2() == pytest.approx(100.0)

    def test_clear(self):
        sketch = AmsSketch(width=32, rng=random.Random(4))
        sketch.update(5)
        sketch.clear()
        assert sketch.estimate_f2() == 0.0


class TestPointEstimate:
    def test_exact_for_single_key(self):
        sketch = AmsSketch(width=64, depth=5, rng=random.Random(5))
        for _ in range(7):
            sketch.update(99)
        assert sketch.point_estimate(99) == pytest.approx(7.0)

    def test_absent_key_near_zero(self):
        sketch = AmsSketch(width=256, depth=7, rng=random.Random(6))
        for key in range(20):
            sketch.update(key)
        assert abs(sketch.point_estimate(10_000)) <= 2.0

    def test_unbiased_over_instances(self):
        # Average point estimate over many independent sketches should
        # approach the true frequency despite collisions.
        truth_key, truth_freq = 7, 5
        total = 0.0
        instances = 200
        for seed in range(instances):
            sketch = AmsSketch(width=16, depth=1, rng=random.Random(seed))
            for key in range(30):
                sketch.update(key)
            for _ in range(truth_freq - 1):
                sketch.update(truth_key)
            total += sketch.point_estimate(truth_key)
        assert total / instances == pytest.approx(truth_freq, abs=1.0)
