"""Unit tests for per-edge counting against samples.

The key invariant: when the sample contains the *whole* graph, the
per-edge count must equal the exact number of butterflies the incoming
edge would close — which we verify against the exact per-edge counter.
"""

import random

from repro.core.counting import count_with_sample, count_with_versioned_sample
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterflies_containing_edge
from repro.graph.generators import bipartite_erdos_renyi
from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.random_pairing import RandomPairing
from repro.sampling.versioned import VersionedGraphSample
from repro.types import insertion


def _sample_from_edges(edges):
    sample = GraphSample()
    for u, v in edges:
        sample.add_edge(u, v)
    return sample


class TestAgainstExact:
    def test_single_butterfly_completion(self):
        sample = _sample_from_edges([(1, 10), (2, 10), (2, 11)])
        count, work = count_with_sample(sample, 1, 11)
        assert count == 1
        assert work > 0

    def test_no_completion(self):
        sample = _sample_from_edges([(1, 10), (2, 11)])
        count, _ = count_with_sample(sample, 1, 11)
        assert count == 0

    def test_full_sample_matches_exact_per_edge(self):
        rng = random.Random(8)
        edges = bipartite_erdos_renyi(20, 15, 120, rng)
        graph = BipartiteGraph(edges)
        sample = _sample_from_edges(edges)
        # For each edge: remove it everywhere, then the count of the
        # incoming edge against the full sample equals the exact count.
        for u, v in edges[:40]:
            graph.remove_edge(u, v)
            sample.remove_edge(u, v)
            expected = butterflies_containing_edge(graph, u, v)
            got, _ = count_with_sample(sample, u, v)
            assert got == expected
            graph.add_edge(u, v)
            sample.add_edge(u, v)

    def test_heuristic_does_not_change_count(self):
        rng = random.Random(9)
        edges = bipartite_erdos_renyi(15, 12, 90, rng)
        sample = _sample_from_edges(edges[:-10])
        for u, v in edges[-10:]:
            with_heuristic, _ = count_with_sample(
                sample, u, v, cheapest_side=True
            )
            without, _ = count_with_sample(
                sample, u, v, cheapest_side=False
            )
            assert with_heuristic == without

    def test_deletion_edge_in_sample_not_miscounted(self):
        # Edge (1,10) is in the sample AND being processed (deletion
        # case): the degenerate "butterfly" through x == u must not be
        # counted.
        sample = _sample_from_edges([(1, 10), (1, 11), (2, 10), (2, 11)])
        count, _ = count_with_sample(sample, 1, 10)
        assert count == 1  # exactly the true butterfly {1,2,10,11}

    def test_empty_sample(self):
        count, work = count_with_sample(GraphSample(), 1, 10)
        assert (count, work) == (0, 0)

    def test_work_accounts_intersections(self):
        # Star around right vertex 10 plus one far edge: intersections
        # iterate the smaller set each time.
        sample = _sample_from_edges([(1, 10), (2, 10), (2, 11)])
        _, work = count_with_sample(sample, 1, 11)
        assert work >= 1


class TestVersionedCounting:
    def test_matches_live_counting_at_final_version(self):
        rng = random.Random(10)
        edges = bipartite_erdos_renyi(15, 12, 80, rng)
        sample = GraphSample()
        versioned = VersionedGraphSample(sample)
        rp = RandomPairing(1000, random.Random(0), sample=sample)
        versioned.begin_batch()
        for u, v in edges:
            versioned.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.process(insertion(u, v))
        versioned.end_batch()
        # Counting at the last version equals counting against the live
        # sample state just before the final element.
        last = len(edges) - 1
        u, v = edges[-1]
        sample.remove_edge(u, v)
        live_count, _ = count_with_sample(sample, u, v)
        sample.add_edge(u, v)
        versioned_count, _ = count_with_versioned_sample(
            versioned, last, u, v
        )
        assert versioned_count == live_count

    def test_version_zero_sees_nothing(self):
        sample = GraphSample()
        versioned = VersionedGraphSample(sample)
        rp = RandomPairing(100, random.Random(0), sample=sample)
        versioned.begin_batch()
        for u, v in [(1, 10), (2, 10), (2, 11), (1, 11)]:
            versioned.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.process(insertion(u, v))
        versioned.end_batch()
        count, _ = count_with_versioned_sample(versioned, 0, 1, 11)
        assert count == 0
        # But at version 3 the three other edges exist.
        count3, _ = count_with_versioned_sample(versioned, 3, 1, 11)
        assert count3 == 1
