"""Unit and statistical tests for the ensemble estimator."""

import math
import random

import pytest

from repro.core.abacus import Abacus
from repro.core.ensemble import EnsembleEstimator
from repro.errors import EstimatorError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic
from repro.types import insertion


def _workload(seed=0, alpha=0.2):
    rng = random.Random(seed)
    edges = bipartite_erdos_renyi(30, 30, 260, rng)
    return make_fully_dynamic(edges, alpha, random.Random(seed + 1))


class TestConstruction:
    def test_rejects_zero_replicas(self):
        with pytest.raises(EstimatorError):
            EnsembleEstimator(replicas=0, budget=10)

    def test_rejects_unknown_combiner(self):
        with pytest.raises(EstimatorError):
            EnsembleEstimator(replicas=2, budget=10, combiner="mode")

    def test_requires_budget_or_factory(self):
        with pytest.raises(EstimatorError):
            EnsembleEstimator(replicas=2)

    def test_rejects_bad_groups(self):
        with pytest.raises(EstimatorError):
            EnsembleEstimator(replicas=4, budget=10, groups=9)

    def test_custom_factory(self):
        ensemble = EnsembleEstimator(
            replicas=3,
            factory=lambda i, rng: Abacus(10 + i, rng=rng),
            seed=1,
        )
        assert ensemble.replicas == 3
        budgets = [m.budget for m in ensemble.members]
        assert budgets == [10, 11, 12]

    def test_share_budget_splits_memory(self):
        ensemble = EnsembleEstimator(
            replicas=4, budget=100, share_budget=True, seed=2
        )
        assert all(m.budget == 25 for m in ensemble.members)

    def test_replicas_use_independent_rngs(self):
        ensemble = EnsembleEstimator(replicas=2, budget=40, seed=3)
        stream = _workload(seed=4)
        ensemble.process_stream(stream)
        a, b = ensemble.member_estimates()
        assert a != b  # astronomically unlikely to collide


class TestCombiners:
    def _fed(self, combiner, seed=5, replicas=5):
        ensemble = EnsembleEstimator(
            replicas=replicas, budget=60, combiner=combiner, seed=seed
        )
        ensemble.process_stream(_workload(seed=6))
        return ensemble

    def test_mean_is_average_of_members(self):
        ensemble = self._fed("mean")
        values = ensemble.member_estimates()
        assert ensemble.estimate == pytest.approx(sum(values) / len(values))

    def test_median_is_member_median(self):
        ensemble = self._fed("median")
        values = sorted(ensemble.member_estimates())
        assert ensemble.estimate == pytest.approx(values[2])

    def test_median_of_means_between_extremes(self):
        ensemble = self._fed("median_of_means", replicas=9)
        values = ensemble.member_estimates()
        assert min(values) <= ensemble.estimate <= max(values)

    def test_single_replica_equals_member(self):
        ensemble = EnsembleEstimator(replicas=1, budget=60, seed=7)
        stream = _workload(seed=8)
        ensemble.process_stream(stream)
        assert ensemble.estimate == ensemble.member_estimates()[0]


class TestStatistics:
    def test_exact_regime_zero_spread(self):
        ensemble = EnsembleEstimator(replicas=3, budget=10_000, seed=9)
        ensemble.process_stream(_workload(seed=10, alpha=0.0))
        assert ensemble.spread() == pytest.approx(0.0)

    def test_confidence_interval_brackets_mean(self):
        ensemble = EnsembleEstimator(replicas=6, budget=60, seed=11)
        ensemble.process_stream(_workload(seed=12))
        low, high = ensemble.confidence_interval()
        values = ensemble.member_estimates()
        mean = sum(values) / len(values)
        assert low <= mean <= high

    def test_memory_edges_sums_members(self):
        ensemble = EnsembleEstimator(replicas=3, budget=5, seed=13)
        for i in range(10):
            ensemble.process(insertion(i, 100 + i))
        assert ensemble.memory_edges == sum(
            m.memory_edges for m in ensemble.members
        )

    def test_process_returns_combined_delta(self):
        ensemble = EnsembleEstimator(replicas=2, budget=1000, seed=14)
        total = 0.0
        for element in [
            insertion("u", "v"),
            insertion("u", "w"),
            insertion("x", "v"),
            insertion("x", "w"),
        ]:
            total += ensemble.process(element)
        assert total == pytest.approx(ensemble.estimate) == pytest.approx(1.0)


class TestVarianceReduction:
    def test_ensemble_mean_reduces_error(self):
        """Averaging r replicas should shrink the spread of the final
        estimate by about sqrt(r)."""
        stream = _workload(seed=15)
        truth = ground_truth_final_count(stream)
        assert truth > 0
        singles, ensembles = [], []
        for trial in range(40):
            single = Abacus(50, seed=2000 + trial)
            singles.append(single.process_stream(stream))
            ensemble = EnsembleEstimator(
                replicas=4, budget=50, seed=3000 + trial
            )
            ensembles.append(ensemble.process_stream(stream))

        def rmse(values):
            return math.sqrt(
                sum((v - truth) ** 2 for v in values) / len(values)
            )

        # Expected reduction is 2x; allow generous slack for 40 trials.
        assert rmse(ensembles) < 0.75 * rmse(singles)

    def test_ensemble_mean_unbiased(self):
        stream = _workload(seed=16)
        truth = ground_truth_final_count(stream)
        estimates = []
        for trial in range(120):
            ensemble = EnsembleEstimator(
                replicas=3, budget=60, seed=4000 + trial
            )
            estimates.append(ensemble.process_stream(stream))
        n = len(estimates)
        mean = sum(estimates) / n
        variance = sum((v - mean) ** 2 for v in estimates) / (n - 1)
        se = math.sqrt(variance / n)
        assert abs(mean - truth) < 4 * max(se, 1e-12), (mean, truth, se)
