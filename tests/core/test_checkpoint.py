"""Unit tests for ABACUS checkpoint/restore."""

import json

import pytest

from repro.core.abacus import Abacus
from repro.core.checkpoint import (
    abacus_from_dict,
    abacus_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import EstimatorError


class TestRoundTrip:
    def test_restored_state_fields(self, dynamic_stream):
        est = Abacus(200, seed=5)
        est.process_stream(dynamic_stream.prefix(1000))
        restored = abacus_from_dict(abacus_to_dict(est))
        assert restored.estimate == est.estimate
        assert restored.total_work == est.total_work
        assert restored.elements_processed == est.elements_processed
        assert restored.sampler.cb == est.sampler.cb
        assert restored.sampler.cg == est.sampler.cg
        assert restored.sampler.num_live_edges == est.sampler.num_live_edges
        assert set(restored.sampler.sample.edges()) == set(
            est.sampler.sample.edges()
        )

    def test_continuation_is_bit_identical(self, dynamic_stream):
        """Checkpoint at the midpoint, continue both copies: identical."""
        half = len(dynamic_stream) // 2
        uninterrupted = Abacus(200, seed=7)
        uninterrupted.process_stream(dynamic_stream)

        first_half = Abacus(200, seed=7)
        first_half.process_stream(dynamic_stream.prefix(half))
        resumed = abacus_from_dict(abacus_to_dict(first_half))
        resumed.process_stream(dynamic_stream[half:])

        assert resumed.estimate == uninterrupted.estimate
        assert set(resumed.sampler.sample.edges()) == set(
            uninterrupted.sampler.sample.edges()
        )

    def test_file_round_trip(self, tmp_path, dynamic_stream):
        est = Abacus(150, seed=3)
        est.process_stream(dynamic_stream.prefix(500))
        path = tmp_path / "abacus.ckpt.json"
        save_checkpoint(est, path)
        restored = load_checkpoint(path)
        assert restored.estimate == est.estimate

    def test_flags_preserved(self):
        est = Abacus(100, seed=1, cheapest_side=False, naive_increment=True)
        restored = abacus_from_dict(abacus_to_dict(est))
        assert restored._cheapest_side is False
        assert restored._naive_increment is True


class TestFailureModes:
    def test_wrong_format_version(self):
        est = Abacus(100, seed=0)
        state = abacus_to_dict(est)
        state["format_version"] = 99
        with pytest.raises(EstimatorError):
            abacus_from_dict(state)

    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(EstimatorError):
            load_checkpoint(path)

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(EstimatorError):
            load_checkpoint(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"format_version": 1, "budget": 10}))
        with pytest.raises(EstimatorError):
            load_checkpoint(path)
