"""Unit and statistical tests for per-edge support estimation."""

import math
import random

import pytest

from repro.core.support import AbacusSupport
from repro.errors import EstimatorError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.bitruss import butterfly_support
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import deletion, insertion


def _butterfly_elements():
    """The minimal butterfly {u, x} x {v, w} as four insertions."""
    return [
        insertion("u", "v"),
        insertion("u", "w"),
        insertion("x", "v"),
        insertion("x", "w"),
    ]


class TestExactRegime:
    """With budget >= stream size the sample is the full graph, so the
    estimator is exact and deterministic."""

    def test_single_butterfly_supports(self):
        est = AbacusSupport(budget=100, seed=0)
        for element in _butterfly_elements():
            est.process(element)
        supports = est.support_estimates()
        for edge in [("u", "v"), ("u", "w"), ("x", "v"), ("x", "w")]:
            assert supports[edge] == pytest.approx(1.0)
        assert est.estimate == pytest.approx(1.0)

    def test_supports_match_static_decomposition(self):
        rng = random.Random(1)
        edges = bipartite_erdos_renyi(12, 12, 50, rng)
        est = AbacusSupport(budget=10_000, seed=2)
        est.process_stream(stream_from_edges(edges))
        truth = butterfly_support(BipartiteGraph(edges))
        for edge, true_support in truth.items():
            assert est.support_estimates().get(edge, 0.0) == pytest.approx(
                float(true_support)
            ), edge

    def test_deletion_decrements_supports(self):
        est = AbacusSupport(budget=100, seed=3)
        for element in _butterfly_elements():
            est.process(element)
        est.process(deletion("x", "w"))
        supports = est.support_estimates()
        assert supports[("u", "v")] == pytest.approx(0.0)
        assert est.estimate == pytest.approx(0.0)

    def test_global_estimate_is_quarter_of_support_sum(self):
        # Every butterfly has exactly 4 edges, so sum(support) == 4|B|.
        rng = random.Random(4)
        edges = bipartite_erdos_renyi(15, 15, 70, rng)
        est = AbacusSupport(budget=10_000, seed=5)
        est.process_stream(stream_from_edges(edges))
        support_sum = sum(est.support_estimates().values())
        assert support_sum == pytest.approx(4.0 * est.estimate)


class TestWatchSet:
    def test_only_watched_edges_tracked(self):
        est = AbacusSupport(budget=100, watch={("u", "v")}, seed=6)
        for element in _butterfly_elements():
            est.process(element)
        assert est.support_estimate(("u", "v")) == pytest.approx(1.0)
        assert list(est.support_estimates()) == [("u", "v")]

    def test_unwatched_query_raises(self):
        est = AbacusSupport(budget=10, watch={("a", "b")}, seed=7)
        with pytest.raises(EstimatorError):
            est.support_estimate(("c", "d"))

    def test_watch_all_query_defaults_to_zero(self):
        est = AbacusSupport(budget=10, seed=8)
        assert est.support_estimate(("never", "seen")) == 0.0


class TestTopEdgesAndBitruss:
    def test_top_edges_ranked(self):
        # Dense 3x3 biclique plus an isolated butterfly: biclique edges
        # have support 4, the isolated butterfly's edges support 1.
        est = AbacusSupport(budget=1000, seed=9)
        for i in range(3):
            for j in range(3):
                est.process(insertion(f"l{i}", f"r{j}"))
        for element in _butterfly_elements():
            est.process(element)
        top = est.top_edges(limit=9)
        assert len(top) == 9
        assert all(s == pytest.approx(4.0) for _, s in top)

    def test_approximate_k_bitruss_edges(self):
        est = AbacusSupport(budget=1000, seed=10)
        for i in range(3):
            for j in range(3):
                est.process(insertion(f"l{i}", f"r{j}"))
        for element in _butterfly_elements():
            est.process(element)
        heavy = set(est.approximate_k_bitruss_edges(2.0))
        assert len(heavy) == 9
        assert ("u", "v") not in heavy

    def test_prune_drops_zeroed_entries(self):
        est = AbacusSupport(budget=100, seed=11)
        for element in _butterfly_elements():
            est.process(element)
        est.process(deletion("x", "w"))
        removed = est.prune()
        assert removed >= 3  # the three non-deleted edges drop to ~0
        assert est.support_estimates() == {} or all(
            s > 1e-9 for s in est.support_estimates().values()
        )


class TestUnbiasedness:
    def test_watched_edge_support_unbiased_under_sampling(self):
        rng = random.Random(12)
        edges = bipartite_erdos_renyi(25, 25, 220, rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(13))
        # Pick the live edge with the largest true support.
        graph = BipartiteGraph()
        for element in stream:
            if element.is_insertion:
                graph.add_edge(element.u, element.v)
            else:
                graph.remove_edge(element.u, element.v)
        truth = butterfly_support(graph)
        target, true_support = max(truth.items(), key=lambda kv: kv[1])
        assert true_support > 0
        estimates = []
        for trial in range(250):
            est = AbacusSupport(
                budget=80, watch={target}, seed=1000 + trial
            )
            est.process_stream(stream)
            estimates.append(est.support_estimate(target))
        n = len(estimates)
        mean = sum(estimates) / n
        variance = sum((v - mean) ** 2 for v in estimates) / (n - 1)
        se = math.sqrt(variance / n)
        assert abs(mean - true_support) < 4 * max(se, 1e-12), (
            mean,
            true_support,
            se,
        )
