"""Unit tests for Equation 1 and the Theorem 2 variance formulas."""

import math

import pytest

from repro.core.probabilities import (
    chebyshev_bound,
    discovery_probability,
    extrapolation_factor,
    subset_inclusion_probability,
    variance_closed_form,
    variance_upper_bound,
)
from repro.errors import EstimatorError


class TestSubsetInclusion:
    def test_matches_binomial_ratio(self):
        # C(n-j, k-j) / C(n, k) for a few hand cases.
        for n, k, j in [(10, 5, 3), (20, 7, 4), (8, 8, 2), (50, 10, 1)]:
            expected = math.comb(n - j, k - j) / math.comb(n, k)
            assert subset_inclusion_probability(n, k, j) == pytest.approx(
                expected
            )

    def test_j_zero_is_one(self):
        assert subset_inclusion_probability(10, 3, 0) == 1.0

    def test_sample_smaller_than_j_is_zero(self):
        assert subset_inclusion_probability(10, 2, 3) == 0.0

    def test_population_smaller_than_j_is_zero(self):
        assert subset_inclusion_probability(2, 2, 3) == 0.0

    def test_full_sample_is_certain(self):
        assert subset_inclusion_probability(7, 7, 3) == pytest.approx(1.0)

    def test_negative_j_raises(self):
        with pytest.raises(EstimatorError):
            subset_inclusion_probability(10, 5, -1)


class TestDiscoveryProbability:
    def test_equation_1_shape(self):
        # |E|=100, cb=2, cg=3, k=10 -> T=105, y=10.
        p = discovery_probability(100, 2, 3, 10)
        expected = (10 / 105) * (9 / 104) * (8 / 103)
        assert p == pytest.approx(expected)

    def test_full_sample_probability_one(self):
        # Early stream: everything sampled -> butterflies found surely.
        assert discovery_probability(5, 0, 0, 100) == pytest.approx(1.0)

    def test_too_few_edges_zero(self):
        assert discovery_probability(2, 0, 0, 100) == 0.0
        assert discovery_probability(10, 0, 0, 2) == 0.0

    def test_counters_increase_population(self):
        base = discovery_probability(100, 0, 0, 10)
        with_pending = discovery_probability(100, 3, 2, 10)
        assert with_pending < base

    def test_monotone_in_budget(self):
        probabilities = [
            discovery_probability(1000, 0, 0, k) for k in (10, 50, 200, 900)
        ]
        assert probabilities == sorted(probabilities)


class TestExtrapolationFactor:
    def test_gamma_formula(self):
        n, k = 30, 10
        expected = math.comb(n, k) / math.comb(n - 4, k - 4)
        assert extrapolation_factor(n, k) == pytest.approx(expected)

    def test_gamma_one_when_everything_sampled(self):
        assert extrapolation_factor(10, 10) == pytest.approx(1.0)

    def test_undefined_for_tiny_budget(self):
        with pytest.raises(EstimatorError):
            extrapolation_factor(100, 3)


class TestVariance:
    def test_zero_variance_with_full_sample(self):
        # k == |E|: the sample is the graph, estimates are exact.
        variance = variance_closed_form(
            expected=5.0,
            num_edges=20,
            budget=20,
            pairs_sharing_0=6,
            pairs_sharing_1=3,
            pairs_sharing_2=1,
        )
        assert variance == pytest.approx(0.0, abs=1e-9)

    def test_upper_bound_dominates_closed_form(self):
        expected = 10.0
        num_edges, budget = 200, 40
        # y1+y2+y3 = C(10,2) = 45 split arbitrarily.
        closed = variance_closed_form(expected, num_edges, budget, 30, 10, 5)
        bound = variance_upper_bound(expected, num_edges, budget)
        assert bound >= closed - 1e-9

    def test_variance_decreases_with_budget(self):
        expected = 50.0
        variances = [
            variance_upper_bound(expected, 1000, k) for k in (20, 50, 100, 500)
        ]
        assert variances == sorted(variances, reverse=True)

    def test_closed_form_nonnegative_on_valid_inputs(self):
        # A sanity grid: variance is a second moment, never negative.
        for budget in (8, 12, 20):
            variance = variance_closed_form(
                expected=4.0,
                num_edges=24,
                budget=budget,
                pairs_sharing_0=4,
                pairs_sharing_1=1,
                pairs_sharing_2=1,
            )
            assert variance >= -1e-9


class TestChebyshev:
    def test_basic_values(self):
        assert chebyshev_bound(2.0) == pytest.approx(0.25)
        assert chebyshev_bound(10.0) == pytest.approx(0.01)

    def test_capped_at_one(self):
        assert chebyshev_bound(0.5) == 1.0

    def test_invalid_lambda(self):
        with pytest.raises(EstimatorError):
            chebyshev_bound(0.0)
