"""Unit tests for ABACUS."""

import random

import pytest

from repro.core.abacus import Abacus
from repro.errors import SamplingError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import deletion, insertion


class TestBasics:
    def test_budget_validation(self):
        with pytest.raises(SamplingError):
            Abacus(1)

    def test_initial_state(self):
        a = Abacus(10, seed=0)
        assert a.estimate == 0.0
        assert a.memory_edges == 0
        assert a.elements_processed == 0

    def test_exact_while_sample_holds_everything(self):
        # With budget >> stream, p = 1 and ABACUS counts exactly.
        a = Abacus(1000, seed=0)
        a.process(insertion(1, 10))
        a.process(insertion(1, 11))
        a.process(insertion(2, 10))
        delta = a.process(insertion(2, 11))
        assert delta == pytest.approx(1.0)
        assert a.estimate == pytest.approx(1.0)

    def test_exact_deletion_while_sample_holds_everything(self):
        a = Abacus(1000, seed=0)
        for el in (
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ):
            a.process(el)
        delta = a.process(deletion(2, 11))
        assert delta == pytest.approx(-1.0)
        assert a.estimate == pytest.approx(0.0)

    def test_matches_exact_on_full_budget_stream(self, dynamic_stream):
        a = Abacus(10**6, seed=1)
        estimate = a.process_stream(dynamic_stream)
        truth = ground_truth_final_count(dynamic_stream)
        assert estimate == pytest.approx(truth)

    def test_memory_bounded(self, dynamic_stream):
        a = Abacus(50, seed=2)
        a.process_stream(dynamic_stream)
        assert a.memory_edges <= 50

    def test_work_accumulates(self, dynamic_stream):
        a = Abacus(200, seed=3)
        a.process_stream(dynamic_stream)
        assert a.total_work > 0
        assert a.elements_processed == len(dynamic_stream)


class TestAccuracy:
    def test_reasonable_error_with_deletions(self):
        rng = random.Random(77)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(7))
        truth = ground_truth_final_count(stream)
        errors = []
        for seed in range(5):
            a = Abacus(700, seed=seed)
            estimate = a.process_stream(stream)
            errors.append(abs(truth - estimate) / truth)
        assert sum(errors) / len(errors) < 0.25

    def test_error_shrinks_with_budget(self):
        rng = random.Random(78)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(8))
        truth = ground_truth_final_count(stream)

        def mean_error(budget, trials=6):
            errs = []
            for seed in range(trials):
                a = Abacus(budget, seed=1000 + seed)
                errs.append(
                    abs(truth - a.process_stream(stream)) / truth
                )
            return sum(errs) / len(errs)

        assert mean_error(1200) < mean_error(150)

    def test_insert_only_accuracy(self):
        rng = random.Random(79)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = stream_from_edges(edges)
        truth = ground_truth_final_count(stream)
        errors = []
        for seed in range(5):
            a = Abacus(800, seed=seed)
            errors.append(abs(truth - a.process_stream(stream)) / truth)
        assert sum(errors) / len(errors) < 0.25


class TestAblations:
    def test_cheapest_side_identical_estimates(self, dynamic_stream):
        a1 = Abacus(300, seed=5, cheapest_side=True)
        a2 = Abacus(300, seed=5, cheapest_side=False)
        e1 = a1.process_stream(dynamic_stream)
        e2 = a2.process_stream(dynamic_stream)
        assert e1 == pytest.approx(e2)

    def test_naive_increment_differs_under_deletions(self):
        rng = random.Random(80)
        edges = bipartite_chung_lu(300, 100, 3000, rng=rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(9))
        proper = Abacus(400, seed=6)
        naive = Abacus(400, seed=6, naive_increment=True)
        ep = proper.process_stream(stream)
        en = naive.process_stream(stream)
        assert ep != pytest.approx(en)

    def test_naive_increment_same_without_deletions(self, insert_only_stream):
        # With no deletions cb = cg = 0 always, so both agree exactly.
        proper = Abacus(300, seed=7)
        naive = Abacus(300, seed=7, naive_increment=True)
        assert proper.process_stream(
            insert_only_stream
        ) == pytest.approx(naive.process_stream(insert_only_stream))


class TestCheckpoints:
    def test_checkpoint_callback_fires(self, dynamic_stream):
        a = Abacus(200, seed=8)
        marks = dynamic_stream.checkpoints(5)
        seen = []
        a.process_stream(
            dynamic_stream,
            checkpoints=marks,
            on_checkpoint=lambda n, est: seen.append((n, est.estimate)),
        )
        assert [n for n, _ in seen] == marks

    def test_duplicate_checkpoints_fire_once_each(self, dynamic_stream):
        """Regression: duplicate marks used to collapse into one call."""
        a = Abacus(200, seed=8)
        seen = []
        a.process_stream(
            dynamic_stream.prefix(300),
            checkpoints=[100, 100, 200],
            on_checkpoint=lambda n, est: seen.append(n),
        )
        assert seen == [100, 100, 200]

    def test_unsorted_checkpoints_fire_in_order(self, dynamic_stream):
        a = Abacus(200, seed=8)
        seen = []
        a.process_stream(
            dynamic_stream.prefix(300),
            checkpoints=[200, 50, 150],
            on_checkpoint=lambda n, est: seen.append(n),
        )
        assert seen == [50, 150, 200]
