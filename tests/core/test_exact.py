"""Unit tests for the exact streaming oracle."""

import random

from repro.core.exact import ExactStreamingCounter
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import count_butterflies
from repro.streams.dynamic import make_fully_dynamic
from repro.types import deletion, insertion


class TestExactCounter:
    def test_single_butterfly_lifecycle(self):
        counter = ExactStreamingCounter()
        deltas = [
            counter.process(insertion(1, 10)),
            counter.process(insertion(1, 11)),
            counter.process(insertion(2, 10)),
            counter.process(insertion(2, 11)),
        ]
        assert deltas == [0.0, 0.0, 0.0, 1.0]
        assert counter.exact_count == 1
        assert counter.process(deletion(2, 11)) == -1.0
        assert counter.exact_count == 0

    def test_matches_static_count_at_every_step(self, dynamic_stream):
        counter = ExactStreamingCounter()
        shadow = BipartiteGraph()
        rng = random.Random(0)
        for i, element in enumerate(dynamic_stream):
            counter.process(element)
            if element.is_insertion:
                shadow.add_edge(element.u, element.v)
            else:
                shadow.remove_edge(element.u, element.v)
            # Static recount is expensive; check a random 2% of steps.
            if rng.random() < 0.02:
                assert counter.exact_count == count_butterflies(shadow), i
        assert counter.exact_count == count_butterflies(shadow)

    def test_memory_tracks_graph(self):
        counter = ExactStreamingCounter()
        counter.process(insertion(1, 10))
        assert counter.memory_edges == 1
        counter.process(deletion(1, 10))
        assert counter.memory_edges == 0

    def test_estimate_equals_exact(self, insert_only_stream):
        counter = ExactStreamingCounter()
        final = counter.process_stream(insert_only_stream.prefix(500))
        assert final == counter.exact_count

    def test_stream_then_reverse_returns_to_zero(self):
        edges = [(i % 6, 100 + i // 6) for i in range(30)]  # K_{6,5}
        counter = ExactStreamingCounter()
        for u, v in edges:
            counter.process(insertion(u, v))
        peak = counter.exact_count
        assert peak > 0
        for u, v in reversed(edges):
            counter.process(deletion(u, v))
        assert counter.exact_count == 0
        assert counter.graph.num_edges == 0

    def test_deletions_respect_symmetry(self):
        """Deleting an edge then re-inserting restores the count."""
        stream = make_fully_dynamic(
            [(i % 8, 200 + i // 8) for i in range(56)],  # K_{8,7}
            0.0,
        )
        counter = ExactStreamingCounter()
        counter.process_stream(stream)
        before = counter.exact_count
        assert before > 0
        counter.process(deletion(0, 200))
        counter.process(insertion(0, 200))
        assert counter.exact_count == before
