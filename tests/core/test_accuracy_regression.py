"""Statistical accuracy regression: seeded ABACUS vs the exact oracle.

Unit tests pin individual formulas; this test pins the *composition*.
A silent estimator-math regression — a wrong probability denominator,
a dropped compensation counter, a mis-signed delta — shifts the final
estimate by far more than sampling noise, but can leave every unit
test green.  Running fixed seeds on a fixed generated stream makes the
estimate fully deterministic, so tight relative-error bounds become a
legitimate regression assertion rather than a flaky statistical one.

Measured headroom at the pinned seeds: worst single-seed relative
error 1.2%, mean 0.7% — the bounds below are ~2.5x above that, far
below the >10% shift any of the regressions above causes.

Both paths are exercised: the stream is fed through ``process_batch``,
whose equivalence with per-element ingestion is enforced separately by
``tests/properties/test_batch_equivalence.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.api import build_estimator
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges

BUDGET = 1500
SEEDS = (1, 2, 3, 4, 5)
PER_SEED_TOLERANCE = 0.03
MEAN_TOLERANCE = 0.015


def _edges():
    return bipartite_erdos_renyi(60, 60, 2500, random.Random(21))


@pytest.mark.parametrize(
    "label, stream_factory",
    [
        ("insert_only", lambda: list(stream_from_edges(_edges()))),
        (
            "fully_dynamic",
            lambda: list(
                make_fully_dynamic(_edges(), alpha=0.2, rng=random.Random(22))
            ),
        ),
    ],
)
def test_abacus_relative_error_within_tolerance(label, stream_factory):
    stream = stream_factory()
    exact = build_estimator("exact")
    exact.process_batch(stream)
    assert exact.estimate > 0

    errors = []
    for seed in SEEDS:
        abacus = build_estimator(f"abacus:budget={BUDGET},seed={seed}")
        abacus.process_batch(stream)
        error = abs(abacus.estimate - exact.estimate) / exact.estimate
        errors.append(error)
        assert error <= PER_SEED_TOLERANCE, (label, seed, error)
    mean_error = sum(errors) / len(errors)
    assert mean_error <= MEAN_TOLERANCE, (label, mean_error, errors)
