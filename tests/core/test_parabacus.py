"""Unit tests for PARABACUS — above all, Theorem 5's exact equivalence
with ABACUS under a shared RNG seed."""

import pytest

from repro.core.abacus import Abacus
from repro.core.parabacus import Parabacus
from repro.errors import EstimatorError
from repro.experiments.runner import ground_truth_final_count
from repro.types import insertion


class TestConstruction:
    def test_invalid_batch_size(self):
        with pytest.raises(EstimatorError):
            Parabacus(10, batch_size=0)

    def test_invalid_threads(self):
        with pytest.raises(EstimatorError):
            Parabacus(10, num_threads=0)


class TestTheorem5Equivalence:
    @pytest.mark.parametrize("batch_size", [1, 7, 50, 500])
    def test_identical_to_abacus_any_batch_size(
        self, dynamic_stream, batch_size
    ):
        abacus = Abacus(300, seed=42)
        para = Parabacus(300, batch_size=batch_size, num_threads=4, seed=42)
        ea = abacus.process_stream(dynamic_stream)
        para.process_stream(dynamic_stream)
        para.flush()
        assert para.estimate == pytest.approx(ea, rel=1e-12)

    @pytest.mark.parametrize("num_threads", [1, 2, 8, 32])
    def test_identical_for_any_thread_count(
        self, dynamic_stream, num_threads
    ):
        abacus = Abacus(250, seed=7)
        para = Parabacus(
            250, batch_size=100, num_threads=num_threads, seed=7
        )
        ea = abacus.process_stream(dynamic_stream)
        para.process_stream(dynamic_stream)
        para.flush()
        assert para.estimate == pytest.approx(ea, rel=1e-12)

    def test_identical_with_real_thread_pool(self, dynamic_stream):
        abacus = Abacus(250, seed=9)
        with Parabacus(
            250,
            batch_size=128,
            num_threads=4,
            seed=9,
            use_thread_pool=True,
        ) as para:
            ea = abacus.process_stream(dynamic_stream)
            para.process_stream(dynamic_stream)
            para.flush()
            assert para.estimate == pytest.approx(ea, rel=1e-12)

    def test_same_sample_state_after_stream(self, dynamic_stream):
        abacus = Abacus(200, seed=3)
        para = Parabacus(200, batch_size=64, num_threads=4, seed=3)
        abacus.process_stream(dynamic_stream)
        para.process_stream(dynamic_stream)
        para.flush()
        assert set(abacus.sampler.sample.edges()) == set(
            para.sampler.sample.edges()
        )
        assert (abacus.sampler.cb, abacus.sampler.cg) == (
            para.sampler.cb,
            para.sampler.cg,
        )


class TestBatchMechanics:
    def test_process_buffers_until_batch(self):
        para = Parabacus(100, batch_size=3, num_threads=2, seed=0)
        para.process(insertion(1, 10))
        para.process(insertion(1, 11))
        assert para.elements_processed == 0  # still buffered
        para.process(insertion(2, 10))
        assert para.elements_processed == 3

    def test_flush_handles_partial_batch(self):
        para = Parabacus(100, batch_size=10, num_threads=2, seed=0)
        for el in (insertion(1, 10), insertion(2, 10)):
            para.process(el)
        para.flush()
        assert para.elements_processed == 2

    def test_flush_empty_is_noop(self):
        para = Parabacus(100, batch_size=10, num_threads=2, seed=0)
        assert para.flush() == 0.0

    def test_exact_on_unbounded_budget(self, dynamic_stream):
        para = Parabacus(10**6, batch_size=200, num_threads=4, seed=1)
        para.process_stream(dynamic_stream)
        para.flush()
        truth = ground_truth_final_count(dynamic_stream)
        assert para.estimate == pytest.approx(truth)

    def test_checkpoint_callback_at_batch_granularity(self, dynamic_stream):
        para = Parabacus(150, batch_size=100, num_threads=2, seed=2)
        marks = [250, 1000]
        seen = []
        para.process_stream(
            dynamic_stream,
            checkpoints=marks,
            on_checkpoint=lambda n, est: seen.append(n),
        )
        assert seen == marks


class TestWorkAccounting:
    def test_per_thread_work_sums_to_total(self, dynamic_stream):
        para = Parabacus(250, batch_size=128, num_threads=6, seed=4)
        para.process_stream(dynamic_stream)
        para.flush()
        assert sum(para.per_thread_work) == para.total_work
        assert para.total_work > 0

    def test_total_work_matches_abacus(self, dynamic_stream):
        # Same sample states -> identical intersection work.
        abacus = Abacus(250, seed=11)
        para = Parabacus(250, batch_size=64, num_threads=4, seed=11)
        abacus.process_stream(dynamic_stream)
        para.process_stream(dynamic_stream)
        para.flush()
        assert para.total_work == abacus.total_work

    def test_modeled_speedup_bounds(self, dynamic_stream):
        para = Parabacus(250, batch_size=500, num_threads=8, seed=5)
        para.process_stream(dynamic_stream)
        para.flush()
        speedup = para.modeled_speedup()
        assert 1.0 <= speedup <= 8.0 + 1.0

    def test_speedup_grows_with_threads(self, dynamic_stream):
        speedups = []
        for p in (1, 4, 16):
            para = Parabacus(250, batch_size=500, num_threads=p, seed=6)
            para.process_stream(dynamic_stream)
            para.flush()
            speedups.append(para.modeled_speedup())
        assert speedups[0] <= speedups[1] <= speedups[2]

    def test_no_work_returns_speedup_one(self):
        para = Parabacus(100, batch_size=10, num_threads=4, seed=0)
        assert para.modeled_speedup() == 1.0
