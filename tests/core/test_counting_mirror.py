"""The vectorized counting kernel against the scalar reference.

``count_with_mirror`` must return exactly the ``(count, work)`` pair of
``count_with_sample`` for every query — including the corner cases its
closed-form corrections cover: the arriving edge already sampled (the
skip_anchor/skip_common exclusions), unknown endpoints, emptied rows,
tie-broken side selection, and the small-query scalar fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.core.counting import (
    VECTOR_CUTOFF,
    count_with_mirror,
    count_with_sample,
)
from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.ndadjacency import NUMPY_AVAILABLE, NdAdjacency

pytestmark = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")


def _dense_sample(n_left=18, n_right=18, n_edges=260, seed=1):
    """A sample dense enough that queries clear the vectorization cutoff."""
    rng = random.Random(seed)
    sample = GraphSample()
    cells = [(u, n_left + v) for u in range(n_left) for v in range(n_right)]
    for u, v in rng.sample(cells, n_edges):
        sample.add_edge(u, v)
    return sample


def _synced_mirror(sample):
    mirror = NdAdjacency()
    mirror.sync(sample)
    return mirror


@pytest.mark.parametrize("cheapest_side", [True, False])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_kernel_matches_scalar_on_dense_queries(cheapest_side, seed):
    sample = _dense_sample(seed=seed)
    mirror = _synced_mirror(sample)
    rng = random.Random(seed + 50)
    checked_vector = 0
    for _ in range(300):
        u = rng.randrange(18)
        v = 18 + rng.randrange(18)
        expected = count_with_sample(sample, u, v, cheapest_side=cheapest_side)
        actual = count_with_mirror(mirror, sample, u, v, cheapest_side)
        assert actual == expected, (u, v, cheapest_side)
        if (
            sample.degree(u) + sample.degree(v) >= VECTOR_CUTOFF
            and expected[0] > 0
        ):
            checked_vector += 1
    # The config must actually exercise the vector path with hits.
    assert checked_vector > 50


@pytest.mark.parametrize("seed", [4, 5])
def test_kernel_matches_scalar_when_arriving_edge_is_sampled(seed):
    """Deletions query edges that sit in the sample: the exclusion path."""
    sample = _dense_sample(seed=seed)
    mirror = _synced_mirror(sample)
    for u, v in list(sample.edges())[:150]:
        assert sample.contains(u, v)
        expected = count_with_sample(sample, u, v)
        assert count_with_mirror(mirror, sample, u, v, True) == expected


def test_kernel_handles_unknown_and_emptied_vertices():
    sample = GraphSample()
    mirror = _synced_mirror(sample)
    assert count_with_mirror(mirror, sample, "never", "seen", True) == (0, 0)
    sample.add_edge("a", "x")
    mirror.sync(sample)
    assert count_with_mirror(mirror, sample, "a", "ghost", True) == (0, 0)
    sample.remove_edge("a", "x")
    mirror.apply((("-", "a", "x"),))
    # Known vertices whose rows emptied behave like the scalar empty set.
    assert count_with_mirror(mirror, sample, "a", "x", True) == (0, 0)


def test_kernel_mutation_interleaving_stays_exact():
    """Apply random sample mutations between queries; compare every one."""
    sample = _dense_sample(n_edges=230, seed=9)
    mirror = _synced_mirror(sample)
    rng = random.Random(99)
    for _ in range(400):
        if rng.random() < 0.25 and sample.num_edges > 150:
            u, v = rng.choice(sample.edges())
            sample.remove_edge(u, v)
            mirror.apply((("-", u, v),))
        elif rng.random() < 0.3:
            u = rng.randrange(18)
            v = 18 + rng.randrange(18)
            if not sample.contains(u, v):
                sample.add_edge(u, v)
                mirror.apply((("+", u, v),))
        u = rng.randrange(18)
        v = 18 + rng.randrange(18)
        assert count_with_mirror(mirror, sample, u, v, True) == (
            count_with_sample(sample, u, v)
        )
    assert mirror.version == sample.version
