"""Unit and statistical tests for the TRIEST-style LazyAbacus ablation."""

import math
import random

import pytest

from repro.core.abacus import Abacus
from repro.core.lazy import LazyAbacus
from repro.errors import SamplingError, StreamError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import deletion, insertion


class TestBasics:
    def test_budget_validation(self):
        with pytest.raises(SamplingError):
            LazyAbacus(1)

    def test_delete_without_live_edges_raises(self):
        with pytest.raises(StreamError):
            LazyAbacus(10, seed=0).process(deletion(1, 2))

    def test_exact_when_budget_unbounded(self):
        est = LazyAbacus(10**6, seed=0)
        for el in (
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ):
            est.process(el)
        # Everything accepted with q = 1 and p3 = 1: exact counting.
        assert est.estimate == pytest.approx(1.0)
        est.process(deletion(2, 11))
        assert est.estimate == pytest.approx(0.0)

    def test_memory_bounded(self, dynamic_stream):
        est = LazyAbacus(50, seed=1)
        est.process_stream(dynamic_stream)
        assert est.memory_edges <= 50

    def test_counts_fewer_elements_than_abacus(self, dynamic_stream):
        """The whole point: only a ~k/|E| fraction of insertions and the
        sampled deletions trigger counting."""
        est = LazyAbacus(200, seed=2)
        est.process_stream(dynamic_stream)
        assert 0.0 < est.counting_fraction < 0.5

    def test_less_work_than_abacus(self, dynamic_stream):
        lazy = LazyAbacus(200, seed=3)
        eager = Abacus(200, seed=3)
        lazy.process_stream(dynamic_stream)
        eager.process_stream(dynamic_stream)
        assert lazy.total_work < eager.total_work


class TestStatistics:
    def test_unbiased_on_insert_only(self):
        rng = random.Random(70)
        edges = bipartite_erdos_renyi(50, 35, 500, rng)
        stream = stream_from_edges(edges)
        truth = ground_truth_final_count(stream)
        assert truth > 0
        trials = 400
        estimates = []
        for t in range(trials):
            est = LazyAbacus(120, seed=9000 + t)
            estimates.append(est.process_stream(stream))
        mean = sum(estimates) / trials
        variance = sum((e - mean) ** 2 for e in estimates) / (trials - 1)
        se = math.sqrt(variance / trials)
        assert abs(mean - truth) < 4 * se, (mean, truth, se)

    def test_usable_under_moderate_deletions(self):
        """Documented corner-case bias stays modest at alpha = 20%."""
        rng = random.Random(71)
        edges = bipartite_erdos_renyi(50, 35, 500, rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(5))
        truth = ground_truth_final_count(stream)
        assert truth > 0
        trials = 200
        estimates = []
        for t in range(trials):
            est = LazyAbacus(120, seed=5000 + t)
            estimates.append(est.process_stream(stream))
        mean = sum(estimates) / trials
        assert abs(mean - truth) / truth < 0.35, (mean, truth)

    def test_higher_variance_than_abacus(self):
        """Lazy counting trades work for variance."""
        rng = random.Random(72)
        edges = bipartite_erdos_renyi(50, 35, 500, rng)
        stream = stream_from_edges(edges)
        trials = 150

        def variance_of(factory):
            values = [
                factory(seed).process_stream(stream)
                for seed in range(trials)
            ]
            mean = sum(values) / trials
            return sum((v - mean) ** 2 for v in values) / (trials - 1)

        lazy_var = variance_of(lambda s: LazyAbacus(100, seed=s))
        eager_var = variance_of(lambda s: Abacus(100, seed=s))
        assert lazy_var > eager_var
