"""Unit tests for per-vertex (local) butterfly estimation."""

import math
import random

import pytest

from repro.core.abacus import Abacus
from repro.core.local import AbacusLocal
from repro.errors import EstimatorError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import butterfly_counts_per_vertex
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import insertion


class TestExactRegime:
    """With an unbounded budget, local counts must be exact."""

    def test_single_butterfly_credits_all_four(self):
        est = AbacusLocal(10**6, seed=0)
        for el in (
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ):
            est.process(el)
        for vertex in (1, 2, 10, 11):
            assert est.local_estimate(vertex) == pytest.approx(1.0)
        assert est.estimate == pytest.approx(1.0)

    def test_matches_exact_per_vertex_counts(self):
        rng = random.Random(31)
        edges = bipartite_erdos_renyi(15, 12, 80, rng)
        est = AbacusLocal(10**6, seed=0)
        for u, v in edges:
            est.process(insertion(u, v))
        truth = butterfly_counts_per_vertex(BipartiteGraph(edges))
        for vertex, count in truth.items():
            assert est.local_estimate(vertex) == pytest.approx(count)

    def test_local_sums_to_four_times_global(self):
        rng = random.Random(32)
        edges = bipartite_erdos_renyi(15, 12, 80, rng)
        stream = make_fully_dynamic(edges, 0.25, random.Random(1))
        est = AbacusLocal(10**6, seed=0)
        est.process_stream(stream)
        total_local = sum(est.local_estimates().values())
        assert total_local == pytest.approx(4.0 * est.estimate)


class TestSampledRegime:
    def test_global_estimate_matches_plain_abacus(self, dynamic_stream):
        plain = Abacus(300, seed=9)
        local = AbacusLocal(300, seed=9)
        e1 = plain.process_stream(dynamic_stream)
        e2 = local.process_stream(dynamic_stream)
        assert e2 == pytest.approx(e1, rel=1e-12)

    def test_local_sum_identity_holds_when_sampling(self, dynamic_stream):
        est = AbacusLocal(300, seed=10)
        est.process_stream(dynamic_stream)
        total_local = sum(est.local_estimates().values())
        assert total_local == pytest.approx(4.0 * est.estimate, rel=1e-9)

    def test_local_estimates_unbiased(self):
        """Mean local estimate over repeated runs approaches truth for
        the highest-participation vertex."""
        rng = random.Random(33)
        edges = bipartite_erdos_renyi(25, 15, 150, rng)
        stream = stream_from_edges(edges)
        truth = butterfly_counts_per_vertex(BipartiteGraph(edges))
        hot_vertex = max(truth, key=truth.get)
        trials = 200
        estimates = []
        for t in range(trials):
            est = AbacusLocal(60, seed=1000 + t)
            est.process_stream(stream)
            estimates.append(est.local_estimates().get(hot_vertex, 0.0))
        mean = sum(estimates) / trials
        variance = sum((e - mean) ** 2 for e in estimates) / (trials - 1)
        se = math.sqrt(variance / trials)
        assert abs(mean - truth[hot_vertex]) < 4 * se + 1e-9


class TestWatchSet:
    def test_only_watched_vertices_tracked(self, dynamic_stream):
        est = AbacusLocal(300, watch={0, 1}, seed=11)
        est.process_stream(dynamic_stream)
        assert set(est.local_estimates()) <= {0, 1}

    def test_unwatched_query_raises(self):
        est = AbacusLocal(100, watch={1}, seed=0)
        with pytest.raises(EstimatorError):
            est.local_estimate(999)

    def test_watched_query_defaults_to_zero(self):
        est = AbacusLocal(100, watch={1}, seed=0)
        assert est.local_estimate(1) == 0.0

    def test_top_vertices(self):
        est = AbacusLocal(10**6, seed=0)
        for el in (
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
            insertion(3, 10),
            insertion(3, 11),
        ):
            est.process(el)
        top = est.top_vertices(limit=2)
        # Right vertices 10, 11 are in all 3 butterflies.
        assert {v for v, _ in top} == {10, 11}
        assert all(score == pytest.approx(3.0) for _, score in top)
