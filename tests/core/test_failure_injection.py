"""Failure injection: malformed input must raise typed errors, and
estimator state must stay usable after rejected operations."""

import pytest

from repro.core.abacus import Abacus
from repro.core.ensemble import EnsembleEstimator
from repro.core.exact import ExactStreamingCounter
from repro.core.support import AbacusSupport
from repro.errors import ReproError, SamplingError, StreamError
from repro.types import deletion, insertion


class TestDeletionOfNothing:
    def test_abacus_rejects_impossible_deletion(self):
        est = Abacus(budget=10, seed=0)
        with pytest.raises(StreamError):
            est.process(deletion("ghost", "edge"))

    def test_support_rejects_impossible_deletion(self):
        est = AbacusSupport(budget=10, seed=1)
        with pytest.raises(StreamError):
            est.process(deletion("ghost", "edge"))

    def test_ensemble_propagates_member_errors(self):
        est = EnsembleEstimator(replicas=2, budget=10, seed=2)
        with pytest.raises(ReproError):
            est.process(deletion("ghost", "edge"))

    def test_exact_oracle_rejects_impossible_deletion(self):
        oracle = ExactStreamingCounter()
        with pytest.raises(ReproError):
            oracle.process(deletion("ghost", "edge"))


class TestRecoveryAfterRejection:
    def test_abacus_usable_after_failed_shrink(self):
        est = Abacus(budget=10, seed=3)
        est.process(insertion("a", "x"))
        est.process(deletion("a", "x"))
        assert not est.can_resize
        with pytest.raises(SamplingError):
            est.shrink_budget(5)
        # The estimator keeps working after the refused resize.
        est.process(insertion("b", "y"))
        assert est.elements_processed == 3

    def test_budget_unchanged_after_failed_shrink(self):
        est = Abacus(budget=10, seed=4)
        est.process(insertion("a", "x"))
        est.process(deletion("a", "x"))
        try:
            est.shrink_budget(5)
        except SamplingError:
            pass
        assert est.budget == 10


class TestDegenerateStreams:
    def test_empty_stream(self):
        est = Abacus(budget=10, seed=5)
        assert est.process_stream([]) == 0.0

    def test_insert_delete_ping_pong(self):
        """Tight churn on a single edge: never a butterfly, never an
        error, estimate pinned at zero."""
        est = Abacus(budget=4, seed=6)
        for _ in range(200):
            est.process(insertion("a", "x"))
            est.process(deletion("a", "x"))
        assert est.estimate == 0.0
        assert est.memory_edges <= 4

    def test_duplicate_vertices_across_elements(self):
        """The same identifier may appear on one side repeatedly."""
        est = Abacus(budget=100, seed=7)
        for v in range(50):
            est.process(insertion("hub", v))
        assert est.estimate == 0.0  # a star has no butterflies

    def test_mixed_vertex_types(self):
        """Vertices are arbitrary hashables; mixing types must work."""
        est = Abacus(budget=50, seed=9)
        labels = ["s", 7, ("t", 1), frozenset({2})]
        for u in labels:
            for v in range(3):
                est.process(insertion(u, 1000 + v))
        assert est.elements_processed == 12
        assert est.estimate > 0  # the 4x3 biclique has butterflies
