"""Statistical verification of Theorem 1 (unbiasedness) and Theorem 2
(variance bound).

These tests average many independent ABACUS runs on a fixed small
workload and check that the sample mean lands within a tolerance of the
exact count, and that the sample variance respects the Theorem 2 upper
bound (within sampling slack).
"""

import math
import random

import pytest

from repro.core.abacus import Abacus
from repro.core.probabilities import variance_upper_bound
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges


def _run_trials(stream, budget, trials, seed_base=0):
    estimates = []
    for t in range(trials):
        estimator = Abacus(budget, seed=seed_base + t)
        estimates.append(estimator.process_stream(stream))
    return estimates


def _mean_and_se(values):
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance / n), variance


class TestUnbiasedness:
    def test_insert_only(self):
        rng = random.Random(50)
        edges = bipartite_erdos_renyi(60, 40, 600, rng)
        stream = stream_from_edges(edges)
        truth = ground_truth_final_count(stream)
        assert truth > 0
        estimates = _run_trials(stream, budget=120, trials=300)
        mean, se, _ = _mean_and_se(estimates)
        # Within 4 standard errors (false-failure probability ~1e-4).
        assert abs(mean - truth) < 4 * se, (mean, truth, se)

    def test_fully_dynamic(self):
        rng = random.Random(51)
        edges = bipartite_erdos_renyi(60, 40, 600, rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(5))
        truth = ground_truth_final_count(stream)
        assert truth > 0
        estimates = _run_trials(stream, budget=120, trials=300)
        mean, se, _ = _mean_and_se(estimates)
        assert abs(mean - truth) < 4 * se, (mean, truth, se)

    def test_heavy_deletions(self):
        rng = random.Random(52)
        edges = bipartite_erdos_renyi(50, 30, 500, rng)
        stream = make_fully_dynamic(edges, 0.5, random.Random(6))
        truth = ground_truth_final_count(stream)
        assert truth > 0
        estimates = _run_trials(stream, budget=100, trials=300)
        mean, se, _ = _mean_and_se(estimates)
        assert abs(mean - truth) < 4 * se, (mean, truth, se)


class TestVarianceBound:
    def test_sample_variance_within_theorem2_bound(self):
        rng = random.Random(53)
        edges = bipartite_erdos_renyi(60, 40, 600, rng)
        stream = stream_from_edges(edges)
        truth = ground_truth_final_count(stream)
        budget = 150
        estimates = _run_trials(stream, budget=budget, trials=300)
        _, _, sample_variance = _mean_and_se(estimates)
        bound = variance_upper_bound(float(truth), len(edges), budget)
        # The theoretical bound is for the end-of-stream estimate under
        # a static uniform-sample model; allow generous sampling slack.
        assert sample_variance < 2.0 * bound, (sample_variance, bound)

    def test_estimates_concentrate(self):
        """Chebyshev-style: most estimates fall within a few stdevs."""
        rng = random.Random(54)
        edges = bipartite_erdos_renyi(60, 40, 600, rng)
        stream = stream_from_edges(edges)
        estimates = _run_trials(stream, budget=150, trials=200)
        mean, _, variance = _mean_and_se(estimates)
        stdev = math.sqrt(variance)
        within3 = sum(1 for e in estimates if abs(e - mean) <= 3 * stdev)
        assert within3 / len(estimates) >= 8 / 9  # Chebyshev at lambda=3

    def test_zero_variance_when_budget_covers_stream(self):
        rng = random.Random(55)
        edges = bipartite_erdos_renyi(30, 20, 200, rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(7))
        truth = ground_truth_final_count(stream)
        estimates = _run_trials(stream, budget=10**6, trials=10)
        assert all(e == pytest.approx(truth) for e in estimates)
