"""Tier-1 doctest lane for the public API surface.

CI runs the same examples via ``pytest --doctest-modules src/repro/api
src/repro/shard src/repro/window src/repro/store src/repro/serve
src/repro/cluster src/repro/metrics src/repro/tenancy
src/repro/faults.py``; this lane keeps them green
inside the ordinary test run, so a broken docstring example fails fast
everywhere.
"""

import doctest

import pytest

import repro.api.docgen
import repro.api.registry
import repro.api.session
import repro.cluster.protocol
import repro.core.base
import repro.faults
import repro.metrics.replication
import repro.metrics.tenancy
import repro.serve.client
import repro.serve.protocol
import repro.serve.server
import repro.shard.autoscale
import repro.shard.engine
import repro.shard.partition
import repro.store.durable
import repro.store.snapshots
import repro.store.wal
import repro.tenancy.catalog
import repro.tenancy.fanout
import repro.tenancy.taps
import repro.types
import repro.window.engine
import repro.window.expiry
import repro.window.reference

MODULES = [
    repro.api.docgen,
    repro.api.registry,
    repro.api.session,
    repro.cluster.protocol,
    repro.core.base,
    repro.faults,
    repro.metrics.replication,
    repro.metrics.tenancy,
    repro.serve.client,
    repro.serve.protocol,
    repro.serve.server,
    repro.shard.autoscale,
    repro.shard.engine,
    repro.shard.partition,
    repro.store.durable,
    repro.store.snapshots,
    repro.store.wal,
    repro.tenancy.catalog,
    repro.tenancy.fanout,
    repro.tenancy.taps,
    repro.types,
    repro.window.engine,
    repro.window.expiry,
    repro.window.reference,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} lost its examples"
