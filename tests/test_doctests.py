"""Tier-1 doctest lane for the public API surface.

CI runs the same examples via ``pytest --doctest-modules src/repro/api
src/repro/shard src/repro/window``; this lane keeps them green inside
the ordinary test run, so a broken docstring example fails fast
everywhere.
"""

import doctest

import pytest

import repro.api.docgen
import repro.api.registry
import repro.api.session
import repro.core.base
import repro.shard.engine
import repro.shard.partition
import repro.types
import repro.window.engine
import repro.window.expiry
import repro.window.reference

MODULES = [
    repro.api.docgen,
    repro.api.registry,
    repro.api.session,
    repro.core.base,
    repro.shard.engine,
    repro.shard.partition,
    repro.types,
    repro.window.engine,
    repro.window.expiry,
    repro.window.reference,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} lost its examples"
