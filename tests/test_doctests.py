"""Tier-1 doctest lane for the public API surface.

CI runs the same examples via ``pytest --doctest-modules src/repro/api
src/repro/shard``; this lane keeps them green inside the ordinary test
run, so a broken docstring example fails fast everywhere.
"""

import doctest

import pytest

import repro.api.docgen
import repro.api.registry
import repro.api.session
import repro.core.base
import repro.shard.engine
import repro.shard.partition

MODULES = [
    repro.api.docgen,
    repro.api.registry,
    repro.api.session,
    repro.core.base,
    repro.shard.engine,
    repro.shard.partition,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} lost its examples"
