"""Unit tests for the Session facade: ingest, observe, snapshot."""

import json

import pytest

from repro.api import (
    SNAPSHOT_FORMAT_VERSION,
    build_estimator,
    open_session,
    parse_spec,
    restore_session,
)
from repro.core.abacus import Abacus
from repro.errors import EstimatorError, SpecError
from repro.types import insertion

ABACUS_SPEC = "abacus:budget=200,seed=7"
PARABACUS_SPEC = "parabacus:budget=200,seed=7,batch_size=64"


class TestOpenSession:
    def test_from_string_spec(self):
        with open_session(ABACUS_SPEC) as session:
            assert isinstance(session.estimator, Abacus)
            assert session.spec == parse_spec(ABACUS_SPEC)

    def test_from_dict_and_object_specs(self):
        spec = parse_spec(ABACUS_SPEC)
        with open_session(spec.to_dict()) as from_dict:
            with open_session(spec) as from_object:
                assert type(from_dict.estimator) is type(from_object.estimator)

    def test_from_instance(self):
        estimator = Abacus(100, seed=1)
        with open_session(estimator) as session:
            assert session.estimator is estimator
            assert session.spec is not None
            assert session.spec.name == "abacus"

    def test_overrides(self):
        with open_session("abacus:budget=100", budget=333) as session:
            assert session.estimator.budget == 333

    def test_overrides_rejected_for_instances(self):
        with pytest.raises(SpecError):
            open_session(Abacus(100), budget=5)

    @pytest.mark.parametrize(
        "spec",
        [
            "abacus:budget=100,seed=3",
            "parabacus:budget=100,seed=3,batch_size=64",
            "ensemble:budget=100,seed=3,replicas=2",
            "fleet:budget=100,seed=3",
            "cas:budget=100,seed=3",
            "sgrapp:budget=100",
            "exact",
        ],
        ids=lambda s: s.split(":")[0],
    )
    def test_every_estimator_opens_and_ingests(self, spec, dynamic_stream):
        with open_session(spec) as session:
            session.ingest(dynamic_stream.prefix(300))
            session.flush()
            assert session.elements == 300
            assert isinstance(session.estimate, (int, float))


class TestIngest:
    def test_single_element_and_batch_agree(self, dynamic_stream):
        elements = list(dynamic_stream.prefix(500))
        with open_session(ABACUS_SPEC) as one_by_one:
            for element in elements:
                one_by_one.ingest(element)
            with open_session(ABACUS_SPEC) as batched:
                batched.ingest(elements)
                assert batched.estimate == one_by_one.estimate
                assert batched.elements == one_by_one.elements == 500

    def test_matches_direct_estimator(self, dynamic_stream):
        direct = build_estimator(ABACUS_SPEC)
        direct.process_stream(dynamic_stream)
        with open_session(ABACUS_SPEC) as session:
            session.ingest(dynamic_stream)
            assert session.estimate == direct.estimate

    def test_ingest_returns_estimate_delta(self):
        with open_session("exact") as session:
            session.ingest(insertion("a", "x"))
            session.ingest(insertion("a", "y"))
            session.ingest(insertion("b", "x"))
            delta = session.ingest(insertion("b", "y"))  # closes a butterfly
            assert delta == 1.0

    def test_closed_session_rejects_ingest(self):
        session = open_session(ABACUS_SPEC)
        session.close()
        assert session.closed
        with pytest.raises(EstimatorError):
            session.ingest(insertion("a", "x"))

    def test_metrics(self, dynamic_stream):
        with open_session(ABACUS_SPEC) as session:
            session.ingest(dynamic_stream.prefix(400))
            metrics = session.metrics
            assert metrics.elements == 400
            assert metrics.estimate == session.estimate
            assert metrics.memory_edges == session.memory_edges
            assert metrics.processing_seconds > 0
            assert metrics.throughput_eps > 0


class TestObservers:
    def test_on_checkpoint_every(self, dynamic_stream):
        with open_session(ABACUS_SPEC) as session:
            seen = []
            session.on_checkpoint(lambda n, s: seen.append(n), every=100)
            session.ingest(dynamic_stream.prefix(350))
            assert seen == [100, 200, 300]

    def test_on_checkpoint_at_marks_unsorted_with_duplicates(
        self, dynamic_stream
    ):
        with open_session(ABACUS_SPEC) as session:
            seen = []
            session.on_checkpoint(
                lambda n, s: seen.append(n), at=[200, 50, 200]
            )
            session.ingest(dynamic_stream.prefix(300))
            # Duplicates fire once per listed entry.
            assert seen == [50, 200, 200]

    def test_multiple_subscriptions_and_unsubscribe(self, dynamic_stream):
        elements = list(dynamic_stream.prefix(200))
        with open_session(ABACUS_SPEC) as session:
            first, second = [], []
            unsubscribe = session.on_checkpoint(
                lambda n, s: first.append(n), every=50
            )
            session.on_checkpoint(lambda n, s: second.append(n), every=100)
            session.ingest(elements[:100])
            unsubscribe()
            session.ingest(elements[100:])
            assert first == [50, 100]
            assert second == [100, 200]

    def test_on_estimate_change(self):
        with open_session("exact") as session:
            deltas = []
            session.on_estimate_change(lambda d, s: deltas.append(d))
            session.ingest(insertion("a", "x"))
            session.ingest(insertion("a", "y"))
            session.ingest(insertion("b", "x"))
            session.ingest(insertion("b", "y"))
            assert deltas == [1.0]

    def test_on_estimate_change_min_delta(self):
        with open_session("exact") as session:
            big = []
            session.on_estimate_change(
                lambda d, s: big.append(d), min_delta=2.0
            )
            for left in ("a", "b", "c"):
                for right in ("x", "y"):
                    session.ingest(insertion(left, right))
            # The third left vertex completes 2 butterflies at once.
            assert big == [2.0]

    def test_invalid_subscriptions_raise(self):
        session = open_session(ABACUS_SPEC)
        with pytest.raises(SpecError):
            session.on_checkpoint(lambda n, s: None)
        with pytest.raises(SpecError):
            session.on_checkpoint(lambda n, s: None, every=0)


class TestSnapshotRestore:
    @pytest.mark.parametrize(
        "spec", [ABACUS_SPEC, PARABACUS_SPEC], ids=("abacus", "parabacus")
    )
    def test_midstream_continuation_is_bit_identical(
        self, spec, dynamic_stream
    ):
        """snapshot -> restore -> continue == never having stopped."""
        # 1000 is not a multiple of PARABACUS's batch_size=64, so the
        # snapshot captures a partially filled mini-batch buffer.
        half = 1000
        uninterrupted = open_session(spec)
        uninterrupted.ingest(dynamic_stream)
        uninterrupted.flush()

        first = open_session(spec)
        first.ingest(dynamic_stream.prefix(half))
        payload = json.dumps(first.snapshot())  # force full JSON trip

        resumed = restore_session(json.loads(payload))
        assert resumed.elements == half
        assert resumed.spec == parse_spec(spec)
        resumed.ingest(dynamic_stream[half:])
        resumed.flush()
        assert resumed.estimate == uninterrupted.estimate
        assert resumed.elements == uninterrupted.elements

    def test_snapshot_envelope(self):
        session = open_session(ABACUS_SPEC)
        snapshot = session.snapshot()
        assert snapshot["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert snapshot["estimator"] == "abacus"
        assert snapshot["spec"] == parse_spec(ABACUS_SPEC).to_dict()
        assert snapshot["session"]["elements"] == 0

    def test_file_round_trip(self, tmp_path, dynamic_stream):
        path = tmp_path / "session.json"
        session = open_session(ABACUS_SPEC)
        session.ingest(dynamic_stream.prefix(500))
        session.save(path)
        restored = restore_session(path)
        assert restored.estimate == session.estimate
        assert restored.elements == 500

    def test_unsupported_estimator_raises(self):
        with open_session("fleet:budget=100,seed=1") as session:
            with pytest.raises(SpecError):
                session.snapshot()

    def test_wrong_version_raises(self):
        snapshot = open_session(ABACUS_SPEC).snapshot()
        snapshot["format_version"] = 99
        with pytest.raises(EstimatorError):
            restore_session(snapshot)

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(EstimatorError):
            restore_session(path)

    def test_missing_fields_raise(self):
        with pytest.raises(EstimatorError):
            restore_session(
                {"format_version": SNAPSHOT_FORMAT_VERSION, "state": {}}
            )
