"""Session.ingest batching: observer offsets and snapshot continuity.

``Session.ingest`` routes iterables through the estimator's
``process_batch`` fast path.  These tests pin the two observable
guarantees the fast path must keep:

* checkpoint observers fire at exactly the element offsets (and with
  exactly the estimator state) they see under per-element ingestion —
  chunks split at every upcoming fire point;
* a snapshot taken at a checkpoint in the middle of a batched ingest
  restores to a session whose batched continuation is bit-identical to
  the uninterrupted run — extending the PR 1 snapshot guarantee to the
  batch path, including PARABACUS's partially filled mini-batch buffer.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.api import open_session, restore_session
from repro.errors import SpecError
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic

ABACUS = "abacus:budget=400,seed=3"
PARABACUS = "parabacus:budget=400,seed=3,batch_size=170"


def _stream(n_edges=900, seed=31, alpha=0.3):
    edges = bipartite_erdos_renyi(45, 45, n_edges, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=alpha, rng=random.Random(seed + 1))
    )


def _trace_run(spec, stream, batch_size, every=None, at=None):
    trace = []
    with open_session(spec) as session:
        if every is not None or at is not None:
            session.on_checkpoint(
                lambda elements, s: trace.append(
                    (elements, s.elements, s.estimate, s.memory_edges)
                ),
                every=every,
                at=at,
            )
        total = session.ingest(stream, batch_size=batch_size)
        final = (session.elements, session.estimate, session.memory_edges)
    return trace, total, final


def _assert_same_run(batched, reference):
    """Trace and final state bit-identical; the convenience return sum
    only up to float associativity (per-chunk vs per-element order)."""
    assert batched[0] == reference[0]
    assert batched[2] == reference[2]
    assert math.isclose(batched[1], reference[1], rel_tol=1e-12, abs_tol=1e-9)


@pytest.mark.parametrize("spec", [ABACUS, PARABACUS])
@pytest.mark.parametrize("batch_size", [64, 1024])
def test_periodic_checkpoints_fire_at_identical_offsets(spec, batch_size):
    stream = _stream()
    reference = _trace_run(spec, stream, batch_size=1, every=100)
    batched = _trace_run(spec, stream, batch_size=batch_size, every=100)
    _assert_same_run(batched, reference)
    assert [entry[0] for entry in batched[0]] == list(
        range(100, len(stream) + 1, 100)
    )


@pytest.mark.parametrize("spec", [ABACUS, PARABACUS])
def test_explicit_marks_fire_at_identical_offsets(spec):
    stream = _stream()
    marks = [1, 7, 7, 250, 893, len(stream)]  # unsorted dupes welcome
    random.Random(0).shuffle(marks)
    reference = _trace_run(spec, stream, batch_size=1, at=marks)
    batched = _trace_run(spec, stream, batch_size=256, at=marks)
    _assert_same_run(batched, reference)
    assert [entry[0] for entry in batched[0]] == sorted(marks)


def test_combined_every_and_marks_split_chunks_correctly():
    stream = _stream()
    reference = _trace_run(
        ABACUS, stream, batch_size=1, every=64, at=[10, 100]
    )
    batched = _trace_run(
        ABACUS, stream, batch_size=500, every=64, at=[10, 100]
    )
    _assert_same_run(batched, reference)


def test_estimate_observers_force_the_element_path():
    """Per-element deltas stay observable — and identical — regardless."""
    stream = _stream(n_edges=400)

    def run(batch_size):
        deltas = []
        with open_session(ABACUS) as session:
            session.on_estimate_change(lambda delta, s: deltas.append(delta))
            session.ingest(stream, batch_size=batch_size)
            return deltas, session.estimate

    assert run(1024) == run(1)


def test_batched_ingest_accepts_generators():
    stream = _stream(n_edges=400)
    with open_session(ABACUS) as session:
        session.ingest(iter(stream), batch_size=128)
        batched = session.estimate
    with open_session(ABACUS) as session:
        session.ingest(stream, batch_size=1)
        assert session.estimate == batched


def test_batch_size_must_be_positive():
    with open_session(ABACUS) as session:
        with pytest.raises(SpecError):
            session.ingest([], batch_size=0)


@pytest.mark.parametrize("spec", [ABACUS, PARABACUS])
@pytest.mark.parametrize("cut", [170, 457])
def test_snapshot_mid_batched_ingest_restores_bit_identically(spec, cut):
    """Snapshot at a checkpoint inside a batched ingest, then continue.

    ``cut=457`` lands inside a PARABACUS mini-batch (batch_size=170),
    so the snapshot must carry the partially filled buffer.
    """
    stream = _stream()

    # Uninterrupted batched run: the reference.
    with open_session(spec) as session:
        session.ingest(stream, batch_size=256)
        reference_estimate = session.estimate
        reference_state = session.estimator.state_to_dict()

    # Snapshot mid-ingest via a checkpoint observer...
    payloads = []
    with open_session(spec) as session:
        session.on_checkpoint(
            lambda _elements, s: payloads.append(json.dumps(s.snapshot())),
            at=[cut],
        )
        session.ingest(stream, batch_size=256)
    assert len(payloads) == 1

    # ...and continue the restored session over the remaining elements.
    resumed = restore_session(json.loads(payloads[0]))
    assert resumed.elements == cut
    resumed.ingest(stream[cut:], batch_size=256)
    assert resumed.estimate == reference_estimate
    assert resumed.estimator.state_to_dict() == reference_state
    assert resumed.elements == len(stream)
