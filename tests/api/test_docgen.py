"""The generated estimator reference: correctness and freshness.

The freshness test is the tier-1 twin of CI's
``python -m repro.api.docgen --check``: the committed
``docs/estimators.md`` must be byte-identical to fresh emitter output.
"""

import pathlib

from repro.api.docgen import DEFAULT_PATH, main, render_markdown
from repro.api.registry import registered_estimators

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
DOC_PATH = REPO_ROOT / DEFAULT_PATH


class TestRenderMarkdown:
    def test_every_registration_has_a_section(self):
        rendered = render_markdown()
        for name in registered_estimators():
            assert f"## `{name}`" in rendered

    def test_deterministic(self):
        assert render_markdown() == render_markdown()

    def test_capability_flags_present(self):
        rendered = render_markdown()
        assert "snapshot/restore, batch fast path, sharding" in rendered
        # The sharded engine itself must not claim sharding.
        sharded = rendered.split("## `sharded`")[1]
        assert "sharding" not in sharded.split("|", 1)[0]

    def test_marked_as_generated(self):
        assert render_markdown().startswith("<!-- GENERATED FILE")


class TestCommittedDocFreshness:
    def test_docs_estimators_md_is_byte_identical(self):
        committed = DOC_PATH.read_text(encoding="utf-8")
        assert committed == render_markdown(), (
            "docs/estimators.md is stale; regenerate with "
            "PYTHONPATH=src python -m repro.api.docgen --write"
        )


class TestCli:
    def test_check_mode_passes_on_fresh_file(self, capsys):
        assert main(["--check", str(DOC_PATH)]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_check_mode_fails_on_stale_file(self, tmp_path, capsys):
        stale = tmp_path / "estimators.md"
        stale.write_text("old", encoding="utf-8")
        assert main(["--check", str(stale)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_check_mode_fails_on_missing_file(self, tmp_path):
        assert main(["--check", str(tmp_path / "nope.md")]) == 1

    def test_write_then_check_round_trips(self, tmp_path, capsys):
        target = tmp_path / "estimators.md"
        assert main(["--write", str(target)]) == 0
        assert main(["--check", str(target)]) == 0

    def test_default_prints_to_stdout(self, capsys):
        assert main([]) == 0
        assert capsys.readouterr().out == render_markdown()


class TestLinkChecker:
    """tools/check_links.py must pass on the committed documentation."""

    def test_docs_references_resolve(self):
        import importlib.util
        import sys

        spec = importlib.util.spec_from_file_location(
            "check_links", REPO_ROOT / "tools" / "check_links.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        problems = []
        for path in module._markdown_files():
            problems += [
                (str(path.relative_to(REPO_ROOT)), kind, ref)
                for kind, ref in module.check_file(path)
            ]
        assert problems == []
        sys.modules.pop("check_links", None)
