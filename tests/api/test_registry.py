"""Unit tests for the estimator registry and spec grammar."""

import json

import pytest

import repro
from repro.api import (
    EstimatorSpec,
    build_estimator,
    describe_registry,
    get_registration,
    parse_spec,
    registered_estimators,
    registration_for_instance,
)
from repro.baselines.cas import CoAffiliationSampling
from repro.baselines.fleet import Fleet
from repro.baselines.sgrapp import SGrapp
from repro.core.abacus import Abacus
from repro.core.base import ButterflyEstimator
from repro.core.ensemble import EnsembleEstimator
from repro.core.exact import ExactStreamingCounter
from repro.core.parabacus import Parabacus
from repro.errors import EstimatorError, SpecError

ALL_NAMES = (
    "abacus",
    "parabacus",
    "ensemble",
    "fleet",
    "cas",
    "sgrapp",
    "exact",
)

EXPECTED_CLASSES = {
    "abacus": Abacus,
    "parabacus": Parabacus,
    "ensemble": EnsembleEstimator,
    "fleet": Fleet,
    "cas": CoAffiliationSampling,
    "sgrapp": SGrapp,
    "exact": ExactStreamingCounter,
}


class TestSpecParsing:
    def test_name_only(self):
        spec = parse_spec("exact")
        assert spec.name == "exact"
        assert spec.params == {}

    def test_full_grammar(self):
        spec = parse_spec("abacus:budget=1000,seed=42")
        assert spec.name == "abacus"
        assert spec.params == {"budget": 1000, "seed": 42}

    def test_scalar_types(self):
        spec = parse_spec("x:a=1,b=2.5,c=true,d=false,e=mean")
        assert spec.params == {
            "a": 1,
            "b": 2.5,
            "c": True,
            "d": False,
            "e": "mean",
        }

    def test_whitespace_and_case_normalised(self):
        spec = parse_spec("  ABACUS : budget = 1000 , seed = 7 ")
        assert spec.name == "abacus"
        assert spec.params == {"budget": 1000, "seed": 7}

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", ":budget=1", "abacus:budget", "abacus:=5",
         "abacus:budget=1,budget=2"],
    )
    def test_malformed_strings_raise(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)

    def test_spec_error_is_estimator_error(self):
        with pytest.raises(EstimatorError):
            parse_spec("")


class TestSpecRoundTrips:
    def test_string_round_trip(self):
        text = "abacus:budget=1000,seed=42"
        assert parse_spec(text).to_string() == text

    def test_string_round_trip_canonicalises_order(self):
        spec = parse_spec("abacus:seed=42,budget=1000")
        assert spec.to_string() == "abacus:budget=1000,seed=42"
        assert parse_spec(spec.to_string()) == spec

    def test_dict_round_trip(self):
        data = {"name": "parabacus", "params": {"budget": 500, "seed": 1}}
        spec = parse_spec(data)
        assert spec.to_dict() == data
        assert parse_spec(spec.to_dict()) == spec

    def test_string_dict_equivalence(self):
        from_string = parse_spec("fleet:budget=300,gamma=0.5")
        from_dict = parse_spec(
            {"name": "fleet", "params": {"budget": 300, "gamma": 0.5}}
        )
        assert from_string == from_dict
        assert from_string.to_string() == from_dict.to_string()

    def test_json_round_trip(self):
        spec = parse_spec("cas:budget=200,seed=9")
        assert parse_spec(spec.to_json()) == spec
        assert json.loads(spec.to_json()) == spec.to_dict()

    def test_spec_object_passthrough(self):
        spec = EstimatorSpec("abacus", {"budget": 10})
        assert parse_spec(spec) is spec

    def test_bool_renders_as_keyword(self):
        spec = EstimatorSpec("abacus", {"cheapest_side": False})
        assert spec.to_string() == "abacus:cheapest_side=false"
        assert parse_spec(spec.to_string()) == spec

    def test_with_overrides(self):
        spec = parse_spec("abacus:budget=100")
        merged = spec.with_overrides(budget=200, seed=5)
        assert merged.params == {"budget": 200, "seed": 5}
        assert spec.params == {"budget": 100}  # original untouched

    def test_dict_rejects_junk(self):
        with pytest.raises(SpecError):
            parse_spec({"params": {}})
        with pytest.raises(SpecError):
            parse_spec({"name": "abacus", "budget": 10})
        with pytest.raises(SpecError):
            parse_spec({"name": "abacus", "params": [1, 2]})

    def test_unparseable_types_raise(self):
        with pytest.raises(SpecError):
            parse_spec(42)

    def test_bracketed_value_round_trip(self):
        """Nested specs quote with [...] so to_string() re-parses exactly."""
        spec = EstimatorSpec(
            "sharded", {"inner": "abacus:budget=100,seed=1", "shards": 2}
        )
        text = spec.to_string()
        assert text == "sharded:inner=[abacus:budget=100,seed=1],shards=2"
        assert parse_spec(text) == spec

    def test_bracketed_value_keeps_commas_and_colons(self):
        spec = parse_spec("sharded:inner=[abacus:budget=100,seed=1],shards=2")
        assert spec.params["inner"] == "abacus:budget=100,seed=1"
        assert spec.params["shards"] == 2
        assert "seed" not in spec.params  # must not leak to the outer spec

    def test_unbalanced_brackets_raise(self):
        with pytest.raises(SpecError, match="unbalanced"):
            parse_spec("sharded:inner=[abacus:budget=100,shards=2")
        with pytest.raises(SpecError, match="unbalanced"):
            parse_spec("sharded:inner=abacus],shards=2")

    def test_balanced_nested_brackets_round_trip(self):
        spec = EstimatorSpec("sharded", {"inner": "a[b]c:x=1"})
        assert parse_spec(spec.to_string()) == spec

    def test_value_with_non_wrapping_brackets_is_verbatim(self):
        """'[a]mid[b]' merely *contains* brackets; nothing is stripped."""
        spec = parse_spec("x:k=[a]mid[b]")
        assert spec.params["k"] == "[a]mid[b]"
        assert parse_spec(spec.to_string()) == spec

    def test_scalar_looking_strings_round_trip(self):
        """String values like '5' or 'true' must keep their type."""
        for raw in ("5", "1.5", "true", "false"):
            spec = EstimatorSpec("x", {"p": raw})
            assert spec.to_string() == f"x:p=[{raw}]"
            assert parse_spec(spec.to_string()) == spec

    def test_unrenderable_value_raises_instead_of_corrupting(self):
        """to_string must refuse values the grammar cannot express."""
        spec = EstimatorSpec("abacus", {"label": "x]y"})
        with pytest.raises(SpecError, match="cannot render"):
            spec.to_string()
        # The dict form carries the same value without trouble.
        assert parse_spec(spec.to_dict()) == spec


class TestRegistryCompleteness:
    def test_all_seven_registered(self):
        assert set(ALL_NAMES) <= set(registered_estimators())

    def test_every_public_estimator_class_is_registered(self):
        """Each concrete estimator exported from repro.__all__ has a
        registry entry naming its class."""
        registered_classes = {
            get_registration(name).cls for name in registered_estimators()
        }
        for export in repro.__all__:
            obj = getattr(repro, export)
            if (
                isinstance(obj, type)
                and issubclass(obj, ButterflyEstimator)
                and obj is not ButterflyEstimator
                and not getattr(obj, "__abstractmethods__", None)
            ):
                assert obj in registered_classes, export

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_registered_class_matches(self, name):
        assert get_registration(name).cls is EXPECTED_CLASSES[name]

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_describe_registry_mentions(self, name):
        assert name in describe_registry()

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(SpecError, match="abacus"):
            get_registration("nope")

    def test_alias_resolves(self):
        assert get_registration("ensemble_abacus").name == "ensemble"


class TestBuildEstimator:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_builds_every_estimator_by_bare_name(self, name):
        estimator = build_estimator(name)
        assert isinstance(estimator, EXPECTED_CLASSES[name])

    def test_params_reach_the_constructor(self):
        estimator = build_estimator("abacus:budget=123,seed=7")
        assert isinstance(estimator, Abacus)
        assert estimator.budget == 123

    def test_overrides_win(self):
        estimator = build_estimator("abacus:budget=123", budget=456)
        assert estimator.budget == 456

    def test_none_override_restores_default(self):
        estimator = build_estimator("abacus:budget=123", budget=None)
        assert estimator.budget == 1000  # registry default

    def test_undeclared_parameter_raises(self):
        with pytest.raises(SpecError, match="bogus"):
            build_estimator("abacus:bogus=1")

    def test_type_mismatch_raises(self):
        with pytest.raises(SpecError):
            build_estimator({"name": "abacus", "params": {"budget": "lots"}})

    def test_int_coerces_to_float(self):
        from repro.api import Param

        coerced = Param("gamma", float).coerce(1)
        assert coerced == 1.0 and isinstance(coerced, float)
        estimator = build_estimator(
            {"name": "cas", "params": {"budget": 100, "sketch_fraction": 0.5}}
        )
        assert isinstance(estimator, CoAffiliationSampling)

    def test_bool_param_from_string(self):
        estimator = build_estimator("abacus:cheapest_side=false")
        assert estimator.cheapest_side is False

    def test_sgrapp_budget_maps_to_window(self):
        estimator = build_estimator("sgrapp:budget=500")
        assert isinstance(estimator, SGrapp)

    def test_reverse_lookup(self):
        estimator = build_estimator("parabacus:budget=50")
        registration = registration_for_instance(estimator)
        assert registration is not None
        assert registration.name == "parabacus"

    def test_reverse_lookup_unregistered_is_none(self):
        class Unregistered(Abacus):
            pass

        assert registration_for_instance(Unregistered(10)) is None

    SMOKE_SPECS = (
        "abacus:budget=100,seed=3",
        "parabacus:budget=100,seed=3,batch_size=64",
        "ensemble:budget=100,seed=3,replicas=2",
        "fleet:budget=100,seed=3",
        "cas:budget=100,seed=3",
        "sgrapp:budget=100",
        "exact",
    )

    @pytest.mark.parametrize(
        "spec", SMOKE_SPECS, ids=lambda s: s.split(":")[0]
    )
    def test_built_estimators_estimate(self, spec, dynamic_stream):
        """Smoke: every registered estimator ingests a real stream."""
        estimator = build_estimator(spec)
        estimator.process_stream(dynamic_stream.prefix(300))
        flush = getattr(estimator, "flush", None)
        if flush is not None:
            flush()
        assert isinstance(estimator.estimate, (int, float)), spec
