"""The autoscaling policy: hysteresis, dwell, settle, and bounds.

The :class:`~repro.shard.Autoscaler` is a pure policy object, so the
tests drive it with a real (tiny) engine and deterministic batch
sizes — every decision is a function of the observed load deltas.
"""

import pytest

from repro.errors import SpecError
from repro.shard import Autoscaler, AutoscaleDecision
from repro.shard.engine import ShardedEstimator
from repro.types import insertion


def _engine(shards=1):
    return ShardedEstimator("exact", shards=shards)


def _feed(engine, count, start=0):
    engine.process_batch(
        [insertion(f"u{start + i}", f"v{start + i}") for i in range(count)]
    )


@pytest.fixture
def engine():
    e = _engine()
    yield e
    e.close()


def _scaler(**overrides):
    config = dict(
        max_shards=4, high_load=10, low_load=2, dwell=2, settle_elements=0
    )
    config.update(overrides)
    return Autoscaler(**config)


class TestDecisions:
    def test_should_reshard_property(self):
        hold = AutoscaleDecision("hold", 2, 2, 0.0, "x")
        split = AutoscaleDecision("split", 2, 4, 99.0, "x")
        assert not hold.should_reshard
        assert split.should_reshard

    def test_first_observation_only_opens_the_window(self, engine):
        scaler = _scaler()
        _feed(engine, 100)
        decision = scaler.observe(engine)
        assert decision.action == "hold"
        assert "settling" in decision.reason

    def test_split_needs_dwell_consecutive_breaches(self, engine):
        scaler = _scaler(dwell=3)
        scaler.observe(engine)
        for round_index in range(2):
            _feed(engine, 50, start=1000 * (round_index + 1))
            assert scaler.observe(engine).action == "hold"
        _feed(engine, 50, start=5000)
        decision = scaler.observe(engine)
        assert decision.action == "split"
        assert decision.current_shards == 1
        assert decision.target_shards == 2

    def test_one_quiet_observation_resets_the_streak(self, engine):
        scaler = _scaler(dwell=2)
        scaler.observe(engine)
        _feed(engine, 50, start=0)
        assert scaler.observe(engine).action == "hold"
        # Back inside the band: the streak restarts.
        _feed(engine, 5, start=1000)
        assert scaler.observe(engine).action == "hold"
        _feed(engine, 50, start=2000)
        assert scaler.observe(engine).action == "hold"
        _feed(engine, 50, start=3000)
        assert scaler.observe(engine).action == "split"

    def test_merge_on_sustained_low_load(self):
        engine = _engine(shards=4)
        try:
            scaler = _scaler(dwell=2)
            _feed(engine, 200)
            scaler.observe(engine)  # opens the window
            _feed(engine, 1, start=9000)
            assert scaler.observe(engine).action == "hold"
            _feed(engine, 1, start=9100)
            decision = scaler.observe(engine)
            assert decision.action == "merge"
            assert decision.target_shards == 2
        finally:
            engine.close()

    def test_bounds_are_respected(self, engine):
        # At max_shards an overload holds instead of splitting.
        big = _engine(shards=4)
        try:
            scaler = _scaler(max_shards=4, dwell=1)
            scaler.observe(big)
            _feed(big, 200, start=100)
            decision = scaler.observe(big)
            assert decision.action == "hold"
            assert "max_shards" in decision.reason
        finally:
            big.close()
        # At min_shards an underload holds instead of merging.
        scaler = _scaler(dwell=1)
        scaler.observe(engine)
        decision = scaler.observe(engine)
        assert decision.action == "hold"
        assert "min_shards" in decision.reason


class TestSettle:
    def test_epoch_change_resets_the_window(self, engine):
        """A reshard (anyone's) starts a fresh settle period."""
        scaler = _scaler(dwell=1)
        scaler.observe(engine)
        engine.reshard(2)
        _feed(engine, 500, start=100)
        decision = scaler.observe(engine)
        assert decision.action == "hold"
        assert "new epoch" in decision.reason
        # The next breach acts again (settle_elements=0).
        _feed(engine, 500, start=5000)
        assert scaler.observe(engine).action == "split"

    def test_settle_elements_gate(self, engine):
        scaler = _scaler(dwell=1, settle_elements=100)
        scaler.observe(engine)
        _feed(engine, 50)
        decision = scaler.observe(engine)
        assert decision.action == "hold"
        assert "settling" in decision.reason
        _feed(engine, 60, start=1000)
        assert scaler.observe(engine).action == "split"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_shards=0),
            dict(min_shards=5, max_shards=2),
            dict(low_load=-1),
            dict(high_load=1.0, low_load=2.0),
            dict(dwell=0),
            dict(settle_elements=-1),
        ],
    )
    def test_bad_config_is_rejected(self, kwargs):
        with pytest.raises(SpecError):
            Autoscaler(**kwargs)
