"""Shard-merge correctness: the documented contract, verified.

Two layers (see docs/architecture.md):

* **exact identity** — with exact per-shard counters, the summed shard
  estimates equal the brute-force count of butterflies whose two left
  vertices collide under the same partition map (no tolerance);
* **unbiasedness** — `K * sum` averaged over many hash salts converges
  to the oracle count.
"""

import itertools
import random

import pytest

from repro.api.registry import build_estimator
from repro.errors import SpecError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import bipartite_chung_lu, bipartite_erdos_renyi
from repro.shard.engine import ShardedEstimator
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import Op


def _live_graph(stream):
    graph = BipartiteGraph()
    for element in stream:
        if element.op is Op.INSERT:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    return graph


def _colliding_butterflies(graph, shard_of):
    """Butterflies whose two left vertices land on the same shard."""
    total = 0
    for u1, u2 in itertools.combinations(sorted(graph.left_vertices()), 2):
        if shard_of(u1) != shard_of(u2):
            continue
        shared = len(graph.neighbors(u1) & graph.neighbors(u2))
        total += shared * (shared - 1) // 2
    return total


@pytest.fixture(scope="module")
def dynamic_stream():
    edges = bipartite_erdos_renyi(30, 30, 220, random.Random(11))
    return list(make_fully_dynamic(edges, alpha=0.25, rng=random.Random(12)))


class TestExactIdentity:
    """Sharded-exact equals the brute-force collision count, exactly."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    @pytest.mark.parametrize("partitioner", ["hash", "balanced"])
    def test_fully_dynamic_identity(self, dynamic_stream, shards, partitioner):
        engine = ShardedEstimator(
            "exact", shards=shards, partitioner=partitioner, salt=3
        )
        engine.process_batch(dynamic_stream)
        expected = _colliding_butterflies(
            _live_graph(dynamic_stream), engine.partitioner.shard_of
        )
        assert sum(engine.shard_estimates()) == expected
        assert engine.estimate == shards * expected
        engine.close()

    def test_single_shard_is_the_oracle(self, dynamic_stream):
        engine = ShardedEstimator("exact", shards=1)
        engine.process_batch(dynamic_stream)
        oracle = build_estimator("exact")
        for element in dynamic_stream:
            oracle.process(element)
        assert engine.estimate == oracle.estimate
        engine.close()


class TestUnbiasedness:
    """E[K * sum of shard estimates] = |B| over random partition maps."""

    def test_mean_over_salts_matches_oracle(self):
        edges = bipartite_chung_lu(40, 25, 260, rng=random.Random(21))
        stream = list(stream_from_edges(edges))
        oracle = build_estimator("exact")
        for element in stream:
            oracle.process(element)
        truth = oracle.estimate
        assert truth > 20  # the workload must actually contain butterflies

        estimates = []
        for salt in range(80):
            engine = ShardedEstimator("exact", shards=3, salt=salt)
            engine.process_batch(stream)
            estimates.append(engine.estimate)
            engine.close()
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.15)
        # The per-salt estimates really vary (we are averaging a random
        # variable, not re-reading a constant).
        assert len(set(estimates)) > 5

    def test_sharded_abacus_tracks_the_oracle(self, dynamic_stream):
        """End-to-end: sampled shards + correction land near the truth."""
        oracle = build_estimator("exact")
        for element in dynamic_stream:
            oracle.process(element)
        truth = oracle.estimate
        estimates = []
        for salt in range(40):
            engine = ShardedEstimator(
                "abacus:budget=400,seed=9", shards=2, salt=salt
            )
            engine.process_batch(dynamic_stream)
            estimates.append(engine.estimate)
            engine.close()
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.25)


class TestEngineBehavior:
    def test_correction_is_shard_count(self):
        engine = ShardedEstimator("exact", shards=4)
        assert engine.correction == 4.0
        engine.close()

    def test_budget_and_seed_derivation(self):
        engine = ShardedEstimator("abacus:budget=100,seed=5", shards=3)
        seeds = [spec.params["seed"] for spec in engine.shard_specs]
        assert len(set(seeds)) == 3
        assert all(spec.params["budget"] == 100 for spec in engine.shard_specs)
        engine.close()

    def test_single_shard_keeps_base_seed(self):
        engine = ShardedEstimator("abacus:budget=100,seed=5", shards=1)
        assert engine.shard_specs[0].params["seed"] == 5
        engine.close()

    def test_memory_edges_sums_shards(self, dynamic_stream):
        engine = ShardedEstimator("exact", shards=3)
        engine.process_batch(dynamic_stream)
        assert engine.memory_edges == _live_graph(dynamic_stream).num_edges
        engine.close()

    def test_rejects_non_shardable_inner(self):
        with pytest.raises(SpecError, match="does not support sharding"):
            ShardedEstimator("sgrapp", shards=2)

    def test_rejects_nested_sharding(self):
        with pytest.raises(SpecError, match="does not support sharding"):
            ShardedEstimator("sharded", shards=2)

    def test_rejects_unknown_backend_and_bad_shards(self):
        with pytest.raises(SpecError, match="unknown shard backend"):
            ShardedEstimator("exact", shards=2, backend="gpu")
        with pytest.raises(SpecError, match="shards must be"):
            ShardedEstimator("exact", shards=0)

    def test_registry_builds_dict_specs(self, dynamic_stream):
        estimator = build_estimator(
            {
                "name": "sharded",
                "params": {
                    "inner": "abacus:budget=150,seed=2",
                    "shards": 2,
                    "backend": "serial",
                },
            }
        )
        assert isinstance(estimator, ShardedEstimator)
        estimator.process_batch(dynamic_stream)
        direct = ShardedEstimator("abacus:budget=150,seed=2", shards=2)
        direct.process_batch(dynamic_stream)
        assert estimator.estimate == direct.estimate
        estimator.close()
        direct.close()

    def test_closed_engine_rejects_work(self, dynamic_stream):
        engine = ShardedEstimator("exact", shards=2)
        engine.close()
        engine.close()  # idempotent
        from repro.errors import EstimatorError

        with pytest.raises(EstimatorError, match="closed"):
            engine.process_batch(dynamic_stream)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_estimate_stays_readable_after_close(
        self, dynamic_stream, backend
    ):
        """Every backend must answer estimate/memory_edges post-close
        with the closing values (process workers are gone by then)."""
        engine = ShardedEstimator("exact", shards=2, backend=backend)
        engine.process_batch(dynamic_stream)
        final = (
            engine.estimate,
            engine.shard_estimates(),
            engine.memory_edges,
        )
        engine.close()
        assert (
            engine.estimate,
            engine.shard_estimates(),
            engine.memory_edges,
        ) == final

    def test_state_round_trip_continues_identically(self, dynamic_stream):
        half = len(dynamic_stream) // 2
        engine = ShardedEstimator(
            "abacus:budget=200,seed=7", shards=3, partitioner="balanced"
        )
        engine.process_batch(dynamic_stream[:half])
        state = engine.state_to_dict()
        engine.process_batch(dynamic_stream[half:])
        expected = engine.estimate
        engine.close()

        restored = ShardedEstimator.from_state_dict(state)
        restored.process_batch(dynamic_stream[half:])
        assert restored.estimate == expected
        restored.close()
