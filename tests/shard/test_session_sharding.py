"""Sharded sessions: fan-out behind the unchanged Session facade.

Checkpoint-offset semantics, observers, metrics, snapshot/restore, and
the `open_session(shards=...)` plumbing must behave exactly as for an
unsharded session.
"""

import random

import pytest

from repro.api import open_session, restore_session
from repro.api.session import Session
from repro.errors import SpecError
from repro.graph.generators import bipartite_erdos_renyi
from repro.shard.engine import ShardedEstimator
from repro.streams.dynamic import make_fully_dynamic
from repro.types import insertion

SPEC = "abacus:budget=200,seed=17"


@pytest.fixture(scope="module")
def stream():
    edges = bipartite_erdos_renyi(30, 30, 240, random.Random(41))
    return list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(42)))


class TestOpenSession:
    def test_shards_wraps_in_the_engine(self, stream):
        with open_session(SPEC, shards=3) as session:
            assert isinstance(session.estimator, ShardedEstimator)
            assert session.spec.name == "sharded"
            assert session.spec.params["inner"] == SPEC
            session.ingest(stream)
            assert session.elements == len(stream)

    def test_sharding_options_require_explicit_shards(self):
        # backend/partitioner/salt without shards= must not silently
        # build a default-4-shard engine with different semantics.
        for kwargs in ({"backend": "thread"}, {"partitioner": "balanced"},
                       {"salt": 3}):
            with pytest.raises(SpecError, match="shards=K"):
                open_session(SPEC, **kwargs)

    def test_explicit_shards_carries_the_options(self):
        with open_session(
            SPEC, shards=2, backend="thread", partitioner="balanced", salt=5
        ) as session:
            engine = session.estimator
            assert isinstance(engine, ShardedEstimator)
            assert engine.num_shards == 2
            assert engine.backend.name == "thread"
            assert engine.partitioner.name == "balanced"
            assert engine.partitioner.salt == 5

    def test_overrides_apply_to_inner_spec(self):
        with open_session("abacus:seed=1", shards=2, budget=99) as session:
            inner = session.estimator.inner_spec
            assert inner.params["budget"] == 99

    def test_sharding_options_rejected_for_instances(self):
        from repro.api.registry import build_estimator

        with pytest.raises(SpecError, match="sharding/windowing options"):
            open_session(build_estimator("exact"), shards=2)

    def test_session_close_shuts_down_workers(self, stream):
        session = open_session(SPEC, shards=2, backend="process")
        session.ingest(stream[:50])
        session.close()
        assert session.estimator.closed

    def test_session_close_tolerates_directly_closed_engine(self, stream):
        """Regression: the with-block exit used to raise EstimatorError
        when the wrapped engine had already been closed by hand."""
        with open_session(SPEC, shards=2) as session:
            session.ingest(stream[:10])
            session.estimator.close()
        assert session.closed

    def test_shards_one_matches_plain_session(self, stream):
        with open_session(SPEC) as plain, open_session(SPEC, shards=1) as one:
            plain.ingest(stream)
            one.ingest(stream)
            assert one.estimate == plain.estimate


class TestCheckpointSemantics:
    def test_offsets_match_unsharded_session(self, stream):
        def run(**kwargs):
            offsets = []
            with open_session(SPEC, **kwargs) as session:
                session.on_checkpoint(
                    lambda n, s: offsets.append(n), every=70, at=[5, 101]
                )
                session.ingest(stream)
            return offsets

        assert run(shards=3) == run()

    def test_estimate_observers_fire_per_element(self, stream):
        deltas = []
        with open_session(SPEC, shards=2) as session:
            session.on_estimate_change(lambda d, s: deltas.append(d))
            session.ingest(stream)
            total = sum(deltas)
            assert total == pytest.approx(session.estimate, rel=1e-9, abs=1e-6)
        assert deltas  # the stream contains butterflies


class TestSnapshotRestore:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_mid_stream_snapshot_continues_bit_identically(
        self, stream, backend
    ):
        half = len(stream) // 2
        with open_session(
            SPEC, shards=3, backend=backend, partitioner="balanced"
        ) as session:
            session.ingest(stream[:half])
            snapshot = session.snapshot()
            session.ingest(stream[half:])
            expected = session.estimate

        resumed = restore_session(snapshot)
        assert isinstance(resumed, Session)
        assert isinstance(resumed.estimator, ShardedEstimator)
        assert resumed.elements == half
        resumed.ingest(stream[half:])
        assert resumed.estimate == expected
        resumed.close()

    def test_snapshot_of_snapshotless_inner_is_rejected(self):
        with open_session("fleet:budget=100,seed=3", shards=2) as session:
            session.ingest([insertion(1, 2)])
            with pytest.raises(SpecError, match="snapshot"):
                session.snapshot()
