"""Backend equivalence: serial, thread, and process are bit-identical.

The acceptance contract of the sharded engine (ISSUE 3): for a fixed
seed and partition map, every executor backend produces the same final
estimate *and* the same complete per-shard `state_to_dict()` — the
backends may only differ in where the work runs.
"""

import random

import pytest

from repro.errors import EstimatorError, SpecError
from repro.graph.generators import bipartite_erdos_renyi
from repro.shard.backends import BACKEND_NAMES, ProcessBackend, make_backend
from repro.shard.engine import ShardedEstimator
from repro.streams.dynamic import make_fully_dynamic
from repro.types import insertion

SPEC = "abacus:budget=250,seed=13"


@pytest.fixture(scope="module")
def stream():
    edges = bipartite_erdos_renyi(35, 35, 300, random.Random(31))
    return list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(32)))


def _run(backend, stream, *, spec=SPEC, shards=3, chunk=None):
    engine = ShardedEstimator(spec, shards=shards, backend=backend, salt=1)
    if chunk is None:
        engine.process_batch(stream)
    else:
        for start in range(0, len(stream), chunk):
            engine.process_batch(stream[start : start + chunk])
    engine.flush()
    result = (
        engine.estimate,
        engine.shard_estimates(),
        engine.state_to_dict(),
    )
    engine.close()
    return result


class TestBackendEquivalence:
    def test_all_backends_bit_identical(self, stream):
        estimate, shard_estimates, state = _run("serial", stream)
        for backend in ("thread", "process"):
            other_estimate, other_shards, other_state = _run(backend, stream)
            assert other_estimate == estimate, backend
            assert other_shards == shard_estimates, backend
            assert (
                other_state["shard_states"] == state["shard_states"]
            ), backend

    def test_chunking_does_not_matter(self, stream):
        whole = _run("process", stream)
        ragged = _run("process", stream, chunk=37)
        assert ragged[0] == whole[0]
        assert ragged[2]["shard_states"] == whole[2]["shard_states"]

    def test_buffered_estimator_across_backends(self, stream):
        """PARABACUS buffers mini-batches; flush must behave everywhere."""
        spec = "parabacus:budget=250,seed=13,batch_size=100"
        serial = _run("serial", stream, spec=spec)
        process = _run("process", stream, spec=spec)
        assert process[0] == serial[0]
        assert process[2]["shard_states"] == serial[2]["shard_states"]

    def test_per_element_process_matches_batch(self, stream):
        engine_a = ShardedEstimator(SPEC, shards=2, backend="process", salt=1)
        engine_b = ShardedEstimator(SPEC, shards=2, backend="serial", salt=1)
        for element in stream[:120]:
            engine_a.process(element)
            engine_b.process(element)
        assert engine_a.estimate == engine_b.estimate
        engine_a.close()
        engine_b.close()


class TestProcessBackendLifecycle:
    def test_worker_error_surfaces_in_coordinator(self):
        backend = ProcessBackend(
            [{"spec": {"name": "exact", "params": {}}}]
        )
        # A deletion of a never-inserted edge violates the stream
        # contract and raises inside the worker; the coordinator must
        # re-raise rather than hang or die.
        from repro.types import deletion

        with pytest.raises(EstimatorError, match="shard worker failed"):
            backend.process_batches([[deletion("u", "v")]])
        backend.close()

    def test_pipes_stay_in_sync_after_a_worker_error(self):
        """A failing shard must not leave other shards' replies unread.

        Regression: the coordinator used to raise on the first error
        with later replies still queued, so every subsequent command
        read a stale reply from the wrong request.
        """
        from repro.types import deletion

        backend = ProcessBackend(
            [{"spec": {"name": "exact", "params": {}}} for _ in range(2)]
        )
        backend.process_batches([[insertion("a", "b")], [insertion("c", "d")]])
        # Shard 0 fails mid-batch; shard 1 succeeds concurrently.
        with pytest.raises(EstimatorError, match="shard worker failed"):
            backend.process_batches(
                [[deletion("x", "y")], [insertion("c", "e")]]
            )
        # Every later command must still pair with its own reply.
        assert backend.metrics() == [(0.0, 1), (0.0, 2)]
        assert backend.flush() == [0.0, 0.0]
        backend.close()

    def test_close_is_idempotent_and_terminates_workers(self):
        backend = ProcessBackend(
            [{"spec": {"name": "exact", "params": {}}} for _ in range(2)]
        )
        processes = list(backend._processes)
        backend.process_batches([[insertion(1, 2)], None])
        backend.close()
        backend.close()
        assert all(not p.is_alive() for p in processes)
        with pytest.raises(EstimatorError, match="closed"):
            backend.process_batches([[insertion(1, 2)], None])

    def test_restore_payload_resumes_worker_state(self):
        from repro.api.registry import build_estimator

        original = build_estimator(SPEC)
        for element in [insertion(i, i + 100) for i in range(50)]:
            original.process(element)
        backend = ProcessBackend(
            [
                {
                    "restore": {
                        "name": "abacus",
                        "state": original.state_to_dict(),
                    }
                }
            ]
        )
        assert backend.metrics()[0][0] == original.estimate
        assert backend.states()[0] == original.state_to_dict()
        backend.close()


class TestFactory:
    def test_names(self):
        assert BACKEND_NAMES == ("process", "serial", "thread")

    def test_unknown_backend(self):
        with pytest.raises(SpecError, match="unknown shard backend"):
            make_backend("distributed", estimators=[])

    def test_missing_inputs(self):
        with pytest.raises(SpecError, match="estimator instances"):
            make_backend("serial")
        with pytest.raises(SpecError, match="payloads"):
            make_backend("process")
