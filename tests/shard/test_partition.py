"""Partitioner unit tests: routing determinism, balance, round-trips."""

import random

import pytest

from repro.errors import SpecError
from repro.shard.partition import (
    BalancedPartitioner,
    HashPartitioner,
    make_partitioner,
    partitioner_from_state,
    shard_seed,
    stable_vertex_key,
)
from repro.types import deletion, insertion


class TestStableVertexKey:
    def test_ints_map_to_themselves(self):
        assert stable_vertex_key(0) == 0
        assert stable_vertex_key(12345) == 12345
        assert stable_vertex_key(-7) == -7

    def test_strings_are_deterministic_and_spread(self):
        keys = {stable_vertex_key(f"user-{i}") for i in range(100)}
        assert len(keys) == 100
        assert stable_vertex_key("alice") == stable_vertex_key("alice")

    def test_bool_is_not_confused_with_int_identity(self):
        assert stable_vertex_key(True) == 1
        assert stable_vertex_key(False) == 0


class TestShardSeed:
    def test_single_shard_passes_base_through(self):
        assert shard_seed(42, 0, 1) == 42

    def test_shards_get_distinct_seeds(self):
        seeds = [shard_seed(42, i, 8) for i in range(8)]
        assert len(set(seeds)) == 8

    def test_deterministic(self):
        assert shard_seed(7, 3, 4) == shard_seed(7, 3, 4)


class TestHashPartitioner:
    def test_routes_by_left_vertex_only(self):
        p = HashPartitioner(4)
        shards = {p.assign(insertion(10, v)) for v in range(50)}
        assert len(shards) == 1

    def test_deletion_follows_insertion(self):
        p = HashPartitioner(4)
        for u in range(30):
            assert p.assign(insertion(u, 0)) == p.assign(deletion(u, 0))

    def test_in_range_and_reasonably_uniform(self):
        p = HashPartitioner(4)
        counts = [0] * 4
        for u in range(4000):
            shard = p.shard_of(u)
            assert 0 <= shard < 4
            counts[shard] += 1
        assert min(counts) > 800  # uniform would be 1000 each

    def test_salt_changes_the_map(self):
        a = HashPartitioner(4, salt=0)
        b = HashPartitioner(4, salt=1)
        assert any(a.shard_of(u) != b.shard_of(u) for u in range(100))

    def test_collision_probability(self):
        assert HashPartitioner(5).collision_probability == pytest.approx(0.2)

    def test_state_round_trip(self):
        p = HashPartitioner(3, salt=9)
        restored = partitioner_from_state(p.state_to_dict())
        assert isinstance(restored, HashPartitioner)
        assert all(restored.shard_of(u) == p.shard_of(u) for u in range(200))

    def test_string_vertices_route_identically(self):
        p = HashPartitioner(4, salt=2)
        q = partitioner_from_state(p.state_to_dict())
        names = [f"user-{i}" for i in range(100)]
        assert [p.shard_of(n) for n in names] == [q.shard_of(n) for n in names]


class TestBalancedPartitioner:
    def test_first_seen_vertex_goes_to_least_loaded(self):
        p = BalancedPartitioner(2)
        # Vertex 10 takes shard 0 and accumulates load there.
        for v in range(3):
            assert p.assign(insertion(10, v)) == 0
        # A fresh vertex must land on the idle shard 1.
        assert p.assign(insertion(20, 0)) == 1

    def test_assignment_is_sticky(self):
        p = BalancedPartitioner(3)
        first = p.assign(insertion("u", 0))
        for v in range(10):
            assert p.assign(deletion("u", v)) == first

    def test_interleaved_heavy_vertices_balance_perfectly(self):
        # 8 equally heavy vertices arriving round-robin across 4 shards:
        # first-seen least-loaded assignment spreads them 2 per shard,
        # so the loads stay exactly equal.
        p = BalancedPartitioner(4)
        for round_ in range(100):
            for u in range(8):
                p.assign(insertion(u, round_))
        assert p.loads == [200, 200, 200, 200]
        assert sorted(p.assignment.values()) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_beats_an_unlucky_hash_on_skewed_degrees(self):
        # Heavy vertices with degree 60 and a light tail; greedy
        # balancing must end up no worse than the salted hash.
        rng = random.Random(5)
        stream = []
        for u in range(6):
            stream += [insertion(u, rng.randrange(500)) for _ in range(60)]
        for u in range(6, 60):
            stream += [insertion(u, rng.randrange(500)) for _ in range(5)]
        rng.shuffle(stream)
        balanced = BalancedPartitioner(3)
        hashed = HashPartitioner(3, salt=0)
        hash_loads = [0, 0, 0]
        for element in stream:
            balanced.assign(element)
            hash_loads[hashed.assign(element)] += 1
        spread = lambda loads: max(loads) - min(loads)  # noqa: E731
        assert spread(balanced.loads) <= spread(hash_loads)
        assert spread(balanced.loads) <= 0.2 * max(balanced.loads)

    def test_state_survives_a_real_json_round_trip(self):
        import json

        p = BalancedPartitioner(2)
        # Tuple vertices become JSON lists; restore must re-tuple them
        # so the assignment dict keys stay hashable and equal.
        p.assign(insertion(("a", 1), 0))
        p.assign(insertion(("b", 2), 0))
        state = json.loads(json.dumps(p.state_to_dict()))
        restored = partitioner_from_state(state)
        assert restored.assignment == p.assignment
        assert restored.shard_of(("a", 1)) == p.shard_of(("a", 1))

    def test_state_round_trip_preserves_routing(self):
        p = BalancedPartitioner(3)
        rng = random.Random(1)
        stream = [
            insertion(rng.randrange(30), rng.randrange(30))
            for _ in range(200)
        ]
        routed = [p.assign(e) for e in stream[:100]]
        restored = partitioner_from_state(p.state_to_dict())
        assert restored.loads == p.loads
        assert restored.assignment == p.assignment
        # Both continue identically, including for unseen vertices.
        tail = stream[100:]
        assert [restored.assign(e) for e in tail] == [
            p.assign(e) for e in tail
        ]
        assert routed  # sanity: the prefix actually exercised assignment


class TestLoadTable:
    """The public load accessor the autoscaler observes."""

    @pytest.mark.parametrize("name", ["hash", "balanced"])
    def test_counts_every_assignment(self, name):
        partitioner = make_partitioner(name, 3)
        assert partitioner.load_table() == (0, 0, 0)
        for i in range(30):
            partitioner.assign(insertion(f"u{i % 5}", f"v{i}"))
        table = partitioner.load_table()
        assert sum(table) == 30
        assert len(table) == 3

    def test_returns_a_copy_not_a_view(self):
        partitioner = make_partitioner("hash", 2)
        partitioner.assign(insertion("u", "v"))
        table = partitioner.load_table()
        partitioner.assign(insertion("u2", "v2"))
        assert sum(table) == 1  # the earlier copy did not mutate
        assert sum(partitioner.load_table()) == 2

    @pytest.mark.parametrize("name", ["hash", "balanced"])
    def test_loads_survive_the_state_round_trip(self, name):
        partitioner = make_partitioner(name, 2, salt=7)
        for i in range(12):
            partitioner.assign(insertion(f"u{i}", f"v{i}"))
        restored = partitioner_from_state(partitioner.state_to_dict())
        assert restored.load_table() == partitioner.load_table()


class TestEpochedRouting:
    """Epochs remix the hash space without touching the salt."""

    def test_epoch_changes_the_map(self):
        base = make_partitioner("hash", 4, salt=3)
        bumped = make_partitioner("hash", 4, salt=3, epoch=1)
        maps = [
            [p.shard_of(f"u{i}") for i in range(64)]
            for p in (base, bumped)
        ]
        assert maps[0] != maps[1]

    def test_epoch_zero_is_the_legacy_map(self):
        """Epoch 0 must route exactly like the pre-epoch code so old
        snapshots recover onto the identical partition map."""
        legacy_state = {
            "name": "hash", "num_shards": 3, "salt": 11
        }  # no "epoch" key, the pre-reshard snapshot shape
        restored = partitioner_from_state(legacy_state)
        fresh = make_partitioner("hash", 3, salt=11, epoch=0)
        for i in range(50):
            assert restored.shard_of(f"u{i}") == fresh.shard_of(f"u{i}")

    def test_epoch_round_trips(self):
        partitioner = make_partitioner("hash", 2, salt=5, epoch=4)
        restored = partitioner_from_state(partitioner.state_to_dict())
        assert restored.epoch == 4
        for i in range(20):
            assert restored.shard_of(i) == partitioner.shard_of(i)


class TestFactory:
    def test_make_partitioner_names(self):
        assert isinstance(make_partitioner("hash", 2), HashPartitioner)
        assert isinstance(make_partitioner("balanced", 2), BalancedPartitioner)

    def test_unknown_name_raises(self):
        with pytest.raises(SpecError, match="unknown partitioner"):
            make_partitioner("range", 2)

    def test_bad_shard_count_raises(self):
        with pytest.raises(SpecError, match="num_shards"):
            HashPartitioner(0)

    def test_unknown_state_raises(self):
        with pytest.raises(SpecError, match="unknown partitioner state"):
            partitioner_from_state({"name": "nope"})
