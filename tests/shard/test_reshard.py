"""Live resharding: the residue-replay contract, verified in memory.

The defining semantics (``docs/resharding.md``): ``reshard(K')``
replays the engine's **live-edge residue** — the surviving insertions,
in arrival order — into ``K'`` fresh shards under a next-epoch
partition map, then swaps atomically.  The tests pin:

* the **exact identity** — resharding an exact-inner engine to any
  ``K'`` reproduces the brute-force collision count under the new
  map, and ``K' = 1`` reproduces the oracle;
* **determinism** — reshard is a pure function of (state, target), so
  restore-then-reshard is bit-identical to reshard;
* **failure atomicity** — a reshard that dies mid-build leaves the
  old topology fully live;
* the **epoch/residue bookkeeping** the durable cut builds on.
"""

import itertools
import json
import random

import pytest

from repro.api.registry import build_estimator
from repro.errors import EstimatorError, SpecError
from repro.faults import crash_at, SimulatedCrash
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import bipartite_erdos_renyi
from repro.shard.engine import ReshardReport, ShardedEstimator
from repro.streams.dynamic import make_fully_dynamic
from repro.types import Op, deletion, insertion


def _stream(seed=21, alpha=0.25):
    edges = bipartite_erdos_renyi(25, 25, 160, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=alpha, rng=random.Random(seed + 1))
    )


def _live_graph(stream):
    graph = BipartiteGraph()
    for element in stream:
        if element.op is Op.INSERT:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    return graph


def _colliding_butterflies(graph, shard_of):
    total = 0
    for u1, u2 in itertools.combinations(sorted(graph.left_vertices()), 2):
        if shard_of(u1) != shard_of(u2):
            continue
        shared = len(graph.neighbors(u1) & graph.neighbors(u2))
        total += shared * (shared - 1) // 2
    return total


def _state(engine):
    return json.dumps(engine.state_to_dict(), sort_keys=True)


class TestExactIdentityAfterReshard:
    """The K-correction identity survives any topology change."""

    @pytest.mark.parametrize("old,new", [(1, 3), (2, 4), (3, 2), (4, 1)])
    def test_collision_count_under_the_new_map(self, old, new):
        stream = _stream()
        engine = ShardedEstimator("exact", shards=old, salt=5)
        engine.process_batch(stream)
        report = engine.reshard(new)
        assert isinstance(report, ReshardReport)
        expected = _colliding_butterflies(
            _live_graph(stream), engine.partitioner.shard_of
        )
        assert sum(engine.shard_estimates()) == expected
        assert engine.estimate == new * expected
        engine.close()

    def test_merge_to_one_shard_is_the_oracle(self):
        stream = _stream(seed=4)
        engine = ShardedEstimator("exact", shards=3, salt=9)
        engine.process_batch(stream)
        engine.reshard(1)
        oracle = build_estimator("exact")
        for element in stream:
            if element.op is Op.INSERT:
                oracle.process(element)
        live = {}
        for element in stream:
            key = (element.u, element.v)
            if element.op is Op.INSERT:
                live[key] = True
            else:
                live.pop(key, None)
        oracle = build_estimator("exact")
        for u, v in live:
            oracle.process(insertion(u, v))
        assert engine.estimate == oracle.estimate
        engine.close()


class TestReshardReport:
    def test_report_and_epoch_bookkeeping(self):
        engine = ShardedEstimator("exact", shards=2)
        engine.process_batch(
            [insertion(u, 100 + v) for u in range(10) for v in range(4)]
        )
        engine.process_batch([deletion(0, 100), deletion(1, 101)])
        assert engine.epoch == 0
        assert engine.live_edges == 38
        report = engine.reshard(4)
        assert report.old_shards == 2
        assert report.new_shards == 4
        assert report.epoch == 1
        assert report.replayed_edges == 38
        assert 0 <= report.moved_edges <= report.replayed_edges
        assert report.seconds >= 0.0
        assert engine.epoch == 1
        assert engine.num_shards == 4
        assert engine.live_edges == 38
        # A second reshard keeps counting epochs.
        assert engine.reshard(2).epoch == 2
        assert engine.epoch == 2
        engine.close()

    def test_same_k_reshard_remixes_the_map(self):
        """K -> K is a legal rebalance: the epoch salts the routing."""
        engine = ShardedEstimator("exact", shards=3, salt=2)
        engine.process_batch(
            [insertion(u, 500 + v) for u in range(40) for v in range(3)]
        )
        before = [
            engine.partitioner.shard_of(u) for u in range(40)
        ]
        report = engine.reshard(3)
        after = [
            engine.partitioner.shard_of(u) for u in range(40)
        ]
        assert before != after  # epoch remix moved somebody
        assert report.moved_edges > 0
        engine.close()

    def test_invalid_targets_are_rejected(self):
        engine = ShardedEstimator("exact", shards=2)
        with pytest.raises(SpecError):
            engine.reshard(0)
        with pytest.raises(SpecError):
            engine.reshard(-3)
        with pytest.raises(SpecError):
            engine.reshard(2, backend="no-such-backend")
        assert engine.epoch == 0  # nothing happened
        engine.close()


class TestDeterminism:
    """Reshard is a pure function of (engine state, target)."""

    @pytest.mark.parametrize(
        "spec", ["abacus:budget=64,seed=7", "parabacus:budget=64,seed=7"]
    )
    def test_restore_then_reshard_is_bit_identical(self, spec):
        stream = _stream(seed=13)
        engine = ShardedEstimator(spec, shards=2, salt=4)
        engine.process_batch(stream)
        twin = ShardedEstimator.from_state_dict(engine.state_to_dict())
        engine.reshard(3)
        twin.reshard(3)
        assert _state(engine) == _state(twin)
        engine.close()
        twin.close()

    def test_backend_switch_matches_serial(self):
        """Resharding onto a thread backend lands on the serial state."""
        stream = _stream(seed=17)
        serial = ShardedEstimator("abacus:budget=48,seed=3", shards=2)
        threaded = ShardedEstimator.from_state_dict(serial.state_to_dict())
        serial.process_batch(stream)
        threaded.process_batch(stream)
        serial.reshard(3, backend="serial")
        threaded.reshard(3, backend="thread")
        assert threaded.backend_name == "thread"
        a, b = serial.state_to_dict(), threaded.state_to_dict()
        assert a.pop("backend") == "serial"
        assert b.pop("backend") == "thread"
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )
        serial.close()
        threaded.close()


class TestFailureAtomicity:
    def test_crash_mid_build_keeps_the_old_topology(self):
        stream = _stream(seed=8)
        engine = ShardedEstimator("abacus:budget=48,seed=5", shards=2)
        engine.process_batch(stream)
        before = _state(engine)
        with pytest.raises(SimulatedCrash):
            with crash_at("reshard.built"):
                engine.reshard(4)
        assert engine.num_shards == 2
        assert engine.epoch == 0
        assert _state(engine) == before
        # The engine is fully live: it ingests and reshards normally.
        engine.process_batch([insertion("fresh-u", "fresh-v")])
        assert engine.reshard(4).new_shards == 4
        engine.close()


class TestResidueBookkeeping:
    def test_deletions_leave_the_residue(self):
        engine = ShardedEstimator("exact", shards=2)
        engine.process_batch(
            [insertion(u, 10 + v) for u in range(4) for v in range(4)]
        )
        engine.process_batch([deletion(0, 10), deletion(3, 13)])
        assert engine.live_edges == 14
        assert engine.reshard(3).replayed_edges == 14
        engine.close()

    def test_pre_residue_snapshots_refuse_to_reshard(self):
        """A snapshot from before residue tracking restores fine but
        cannot be resharded — the replay set is unknown."""
        engine = ShardedEstimator("abacus:budget=32,seed=2", shards=2)
        engine.process_batch(
            [insertion(u, 50 + v) for u in range(6) for v in range(3)]
        )
        state = engine.state_to_dict()
        engine.close()
        del state["residue"]  # what an old snapshot looks like
        restored = ShardedEstimator.from_state_dict(state)
        assert restored.estimate == pytest.approx(restored.estimate)
        with pytest.raises(EstimatorError, match="residue"):
            restored.reshard(3)
        # New ingest works; the engine is degraded only for reshard,
        # and its own snapshots stay honestly residue-free.
        restored.process_batch([insertion("zz", "yy")])
        assert "residue" not in restored.state_to_dict()
        restored.close()

    def test_residue_round_trips_through_snapshots(self):
        engine = ShardedEstimator("abacus:budget=32,seed=6", shards=2)
        engine.process_batch(
            [insertion(u, 30 + v) for u in range(5) for v in range(4)]
        )
        engine.process_batch([deletion(2, 31)])
        restored = ShardedEstimator.from_state_dict(engine.state_to_dict())
        assert restored.live_edges == engine.live_edges == 19
        engine.reshard(4)
        restored.reshard(4)
        assert _state(engine) == _state(restored)
        engine.close()
        restored.close()
