"""CLI option handling for ``repro serve`` (no server is started)."""

import pytest

from repro.api import open_session
from repro.cli import run_serve
from repro.errors import SpecError


@pytest.fixture
def durable_dir(tmp_path):
    open_session("abacus:budget=32,seed=3", durable_dir=tmp_path).close()
    return tmp_path


class TestReopenOptionValidation:
    def _block_server(self, monkeypatch):
        """Fail loudly if validation regresses into starting a server."""
        import repro.serve.server as server_module

        def _boom(*_args, **_kwargs):
            raise AssertionError("server must not start in this test")

        monkeypatch.setattr(server_module, "EstimatorServer", _boom)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 4},
            {"window": 100},
            {"window_time": 5.0},
            {"shards": 2, "window": 10},
        ],
        ids=lambda kw: "+".join(sorted(kw)),
    )
    def test_wrapping_flags_without_estimator_refuse(
        self, durable_dir, monkeypatch, kwargs
    ):
        self._block_server(monkeypatch)
        with pytest.raises(SpecError, match="stored spec"):
            run_serve(
                None,
                "127.0.0.1",
                0,
                durable_dir=str(durable_dir),
                **kwargs,
            )

    def test_mismatched_estimator_refuses(self, durable_dir, monkeypatch):
        self._block_server(monkeypatch)
        with pytest.raises(SpecError, match="refusing to continue"):
            run_serve(
                "abacus:budget=64,seed=3",
                "127.0.0.1",
                0,
                durable_dir=str(durable_dir),
            )
