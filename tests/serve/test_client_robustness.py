"""``ServeClient`` network robustness: timeouts, backoff, torn reads.

Every failure mode a flaky network hands the client must surface as a
:class:`~repro.errors.ServeError` with a diagnosable message — never a
raw socket exception and never an indefinite hang.  The stub servers
here misbehave on purpose: refuse to exist, accept and go silent, or
drop the connection halfway through a response line.
"""

import socket
import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve.client import ServeClient, connect_with_backoff


def _refused_port():
    """A port that nothing listens on (bound, then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _StubServer:
    """Accept one connection and run ``behavior`` against it."""

    def __init__(self, behavior):
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(
            target=self._serve, args=(behavior,), daemon=True
        )
        self._thread.start()

    def _serve(self, behavior):
        try:
            conn, _ = self._sock.accept()
        except OSError:
            return
        try:
            behavior(conn)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5)


class TestConnectRetry:
    def test_refused_port_fails_after_counted_attempts(
        self, monkeypatch
    ):
        attempts = []
        real_create = socket.create_connection

        def _counting(address, timeout=None):
            attempts.append(address)
            return real_create(address, timeout=timeout)

        monkeypatch.setattr(socket, "create_connection", _counting)
        port = _refused_port()
        with pytest.raises(ServeError, match="3 attempt"):
            ServeClient(
                "127.0.0.1", port, connect_retries=2, backoff=0.001
            )
        assert len(attempts) == 3

    def test_backoff_doubles_up_to_the_cap(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)

        def _always_refused(address, timeout=None):
            raise ConnectionRefusedError("nope")

        monkeypatch.setattr(
            socket, "create_connection", _always_refused
        )
        with pytest.raises(ServeError, match="5 attempt"):
            connect_with_backoff(
                ("127.0.0.1", 1),
                connect_timeout=0.1,
                retries=4,
                backoff=0.05,
                backoff_cap=0.1,
            )
        assert sleeps == [0.05, 0.1, 0.1, 0.1]

    def test_server_that_binds_late_answers_on_a_retry(
        self, monkeypatch
    ):
        """The first attempts hit a closed port; a later one lands."""
        from repro.api import open_session
        from repro.serve import serve_in_background

        real_create = socket.create_connection
        failures = iter([ConnectionRefusedError("still binding")] * 2)

        def _flaky(address, timeout=None):
            for exc in failures:
                raise exc
            return real_create(address, timeout=timeout)

        monkeypatch.setattr(socket, "create_connection", _flaky)
        with serve_in_background(open_session("exact")) as background:
            with ServeClient(
                *background.address, connect_retries=2, backoff=0.001
            ) as client:
                assert client.ping()["pong"]

    def test_connect_timeout_is_retried_then_wrapped(
        self, monkeypatch
    ):
        """A never-accepting endpoint surfaces as ServeError, not a
        hang: each attempt times out, the retries run dry, and the
        final error names the attempt count."""
        attempts = []

        def _never_accepts(address, timeout=None):
            attempts.append(timeout)
            raise socket.timeout("timed out")

        monkeypatch.setattr(
            socket, "create_connection", _never_accepts
        )
        with pytest.raises(ServeError, match="2 attempt"):
            ServeClient(
                "127.0.0.1",
                1,
                connect_timeout=0.01,
                connect_retries=1,
                backoff=0.001,
            )
        assert attempts == [0.01, 0.01]

    def test_negative_connect_retries_is_refused(self):
        with pytest.raises(ServeError, match="connect_retries"):
            ServeClient("127.0.0.1", 1, connect_retries=-1)


class TestReadRobustness:
    def test_silent_server_times_out(self):
        """Accepted-but-never-answered surfaces as a read timeout."""
        release = threading.Event()

        def _accept_and_stall(conn):
            conn.recv(4096)  # take the request, answer nothing
            release.wait(timeout=10)

        stub = _StubServer(_accept_and_stall)
        try:
            client = ServeClient(
                "127.0.0.1", stub.port, timeout=0.2, connect_retries=0
            )
            with pytest.raises(ServeError, match="timed out"):
                client.ping()
            release.set()
            client._sock.close()
        finally:
            stub.close()

    def test_mid_line_drop_is_reported(self):
        """A connection cut inside a response line is called out."""

        def _drop_mid_response(conn):
            conn.recv(4096)
            conn.sendall(b'{"id": 1, "ok": true, "resu')  # no newline

        stub = _StubServer(_drop_mid_response)
        try:
            client = ServeClient(
                "127.0.0.1", stub.port, timeout=2.0, connect_retries=0
            )
            with pytest.raises(ServeError, match="mid-response"):
                client.ping()
            client._sock.close()
        finally:
            stub.close()

    def test_clean_close_before_response_is_reported(self):
        def _close_without_answering(conn):
            conn.recv(4096)

        stub = _StubServer(_close_without_answering)
        try:
            client = ServeClient(
                "127.0.0.1", stub.port, timeout=2.0, connect_retries=0
            )
            with pytest.raises(
                ServeError, match="closed the connection"
            ):
                client.ping()
            client._sock.close()
        finally:
            stub.close()

    def test_mismatched_response_id_is_refused(self):
        def _answer_with_wrong_id(conn):
            conn.recv(4096)
            conn.sendall(b'{"id": 99, "ok": true, "result": {}}\n')

        stub = _StubServer(_answer_with_wrong_id)
        try:
            client = ServeClient(
                "127.0.0.1", stub.port, timeout=2.0, connect_retries=0
            )
            with pytest.raises(ServeError, match="does not match"):
                client.ping()
            client._sock.close()
        finally:
            stub.close()
