"""Server error paths keep the connection usable.

``tests/serve/test_server.py`` proves each malformed request gets a
structured error; this file proves the *aftermath*: the same
connection (and the server) keeps serving well-formed requests after
an oversized line, invalid JSON, or an unknown op.  The oversized case
is the interesting one — the server must drain the rest of the
offending line to get back on a message boundary without dropping
pipelined requests already buffered behind it.
"""

import json
import socket

import pytest

from repro.api import open_session
from repro.serve import ServeClient, serve_in_background
from repro.serve.protocol import MAX_LINE


@pytest.fixture
def server():
    with serve_in_background(open_session("exact")) as background:
        yield background


def _raw_connection(address):
    sock = socket.create_connection(address, timeout=10.0)
    return sock, sock.makefile("rb")


def _oversized_request():
    """A syntactically fine request whose line busts the cap."""
    padding = "x" * (MAX_LINE + 1024)
    return (
        json.dumps({"id": 1, "op": "ping", "pad": padding}).encode()
        + b"\n"
    )


class TestOversizedLineRecovery:
    def test_connection_survives_an_oversized_line(self, server):
        sock, reader = _raw_connection(server.address)
        try:
            sock.sendall(_oversized_request())
            error = json.loads(reader.readline())
            assert error["ok"] is False
            assert "exceeds" in error["error"]["message"]
            # The same connection serves the next request.
            sock.sendall(b'{"id": 2, "op": "ping"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is True
            assert response["result"]["pong"] is True
        finally:
            sock.close()

    def test_pipelined_request_behind_the_oversized_line_survives(
        self, server
    ):
        """Draining the bad line must not eat the buffered next one."""
        sock, reader = _raw_connection(server.address)
        try:
            sock.sendall(
                _oversized_request() + b'{"id": 2, "op": "ping"}\n'
            )
            error = json.loads(reader.readline())
            assert error["ok"] is False
            response = json.loads(reader.readline())
            assert response["ok"] is True
            assert response["id"] == 2
        finally:
            sock.close()

    def test_oversized_line_without_newline_ends_the_connection(
        self, server
    ):
        """EOF inside the oversized line: error out, then hang up —
        there is no message boundary left to recover to."""
        sock, reader = _raw_connection(server.address)
        try:
            sock.sendall(b"x" * (MAX_LINE + 1024))  # never terminated
            sock.shutdown(socket.SHUT_WR)
            error = json.loads(reader.readline())
            assert error["ok"] is False
            assert reader.readline() == b""  # server closed
        finally:
            sock.close()

    def test_server_stays_healthy_for_other_clients(self, server):
        sock, reader = _raw_connection(server.address)
        try:
            sock.sendall(_oversized_request())
            reader.readline()
        finally:
            sock.close()
        with ServeClient(*server.address) as client:
            assert client.ping()["pong"]


class TestMalformedRequestRecovery:
    @pytest.mark.parametrize(
        "bad_line",
        [
            b"{not json}\n",
            b'{"id": 1, "op": "transmogrify"}\n',
            b'{"id": 1}\n',
            b'["not", "an", "object"]\n',
        ],
        ids=["invalid-json", "unknown-op", "missing-op", "non-object"],
    )
    def test_connection_keeps_serving_after_the_error(
        self, server, bad_line
    ):
        sock, reader = _raw_connection(server.address)
        try:
            sock.sendall(bad_line)
            error = json.loads(reader.readline())
            assert error["ok"] is False
            assert error["error"]["type"]
            sock.sendall(b'{"id": 7, "op": "ping"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is True
            assert response["id"] == 7
        finally:
            sock.close()

    def test_interleaved_errors_do_not_corrupt_state(self, server):
        """Good ingests around bad requests land exactly once."""
        from repro.types import insertion

        with ServeClient(*server.address) as client:
            client.ingest([insertion("a", "b")])
        sock, reader = _raw_connection(server.address)
        try:
            sock.sendall(b"{broken\n")
            reader.readline()
        finally:
            sock.close()
        with ServeClient(*server.address) as client:
            client.ingest([insertion("c", "d")])
            assert client.stats()["elements"] == 2
