"""The asyncio serving layer: operations, errors, and consistency."""

import json
import socket
import threading

import pytest

from repro.api import open_session
from repro.errors import ServeError
from repro.serve import (
    MAX_LINE,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    ServeClient,
    serve_in_background,
)
from repro.types import deletion, insertion

BUTTERFLY = [
    insertion("u1", "v1"),
    insertion("u1", "v2"),
    insertion("u2", "v1"),
    insertion("u2", "v2"),
]


@pytest.fixture
def exact_server():
    with serve_in_background(open_session("exact")) as background:
        yield background


def _raw_exchange(address, payload: bytes) -> dict:
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(payload)
        with sock.makefile("rb") as reader:
            return json.loads(reader.readline())


class TestOperations:
    def test_ping(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            result = client.ping()
        assert result == {
            "pong": True,
            "version": PROTOCOL_VERSION,
            "codecs": list(SUPPORTED_CODECS),
        }

    def test_estimate_starts_at_zero(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            result = client.estimate()
        assert result == {"seq": 0, "elements": 0, "estimate": 0.0}

    def test_ingest_advances_the_view(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            summary = client.ingest(BUTTERFLY)
            assert summary["accepted"] == 4
            assert summary["elements"] == 4
            assert summary["estimate"] == 1.0
            assert summary["delta"] == 1.0
            view = client.estimate()
            assert view == {"seq": 1, "elements": 4, "estimate": 1.0}

    def test_single_element_ingest(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            client.ingest(BUTTERFLY)
            summary = client.ingest(deletion("u2", "v2"))
            assert summary["accepted"] == 1
            assert summary["estimate"] == 0.0

    def test_deletions_and_timed_edges_cross_the_wire(
        self, exact_server
    ):
        from repro.types import timed_insertion

        with ServeClient(*exact_server.address) as client:
            client.ingest([timed_insertion("u", "v", 1.0), deletion("u", "v")])
            assert client.estimate()["elements"] == 2

    def test_stats_reports_session_identity(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            client.ingest(BUTTERFLY)
            stats = client.stats()
        assert stats["spec"] == "exact"
        assert stats["durable"] is False
        assert stats["elements"] == 4
        assert stats["memory_edges"] == 4
        assert stats["operations"]["ingest"] == 1
        assert stats["connections"] == 1

    def test_snapshot_is_the_session_envelope(self):
        session = open_session("abacus:budget=32,seed=5")
        with serve_in_background(session) as background:
            with ServeClient(*background.address) as client:
                client.ingest(BUTTERFLY)
                snapshot = client.snapshot()
        assert snapshot["estimator"] == "abacus"
        assert snapshot["session"]["elements"] == 4

    def test_flush_on_buffering_estimator(self):
        spec = "parabacus:budget=64,seed=5,batch_size=500"
        with serve_in_background(open_session(spec)) as background:
            with ServeClient(*background.address) as client:
                client.ingest(BUTTERFLY)  # sits in the mini-batch
                result = client.flush()
                assert result["delta"] == 1.0
                assert client.estimate()["estimate"] == 1.0

    def test_requests_can_interleave_clients(self, exact_server):
        with ServeClient(*exact_server.address) as one:
            with ServeClient(*exact_server.address) as two:
                one.ingest(BUTTERFLY[:2])
                two.ingest(BUTTERFLY[2:])
                assert one.estimate() == two.estimate()
                assert one.estimate()["estimate"] == 1.0

    def test_close_op_ends_the_connection(self, exact_server):
        client = ServeClient(*exact_server.address)
        assert client.call("close") == {"goodbye": True}
        # Depending on timing the dead connection surfaces as a clean
        # EOF or as ECONNRESET; both wrap into ServeError.
        with pytest.raises(
            ServeError, match="closed the connection|Connection reset"
        ):
            client.call("ping")

    def test_shutdown_stops_the_server(self):
        background = serve_in_background(open_session("exact"))
        with ServeClient(*background.address) as client:
            assert client.shutdown() == {"stopping": True}
        background.stop()
        with pytest.raises(OSError):
            socket.create_connection(background.address, timeout=0.5)


class TestErrors:
    def test_unknown_op(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            with pytest.raises(ServeError, match="unknown operation"):
                client.call("frobnicate")

    def test_missing_op(self, exact_server):
        response = _raw_exchange(exact_server.address, b'{"id": 1}\n')
        assert response["ok"] is False
        assert "'op'" in response["error"]["message"]

    def test_malformed_json_line(self, exact_server):
        response = _raw_exchange(exact_server.address, b"{nope}\n")
        assert response["ok"] is False
        assert response["error"]["type"] == "ServeError"

    def test_non_object_request(self, exact_server):
        response = _raw_exchange(exact_server.address, b"[1,2]\n")
        assert response["ok"] is False

    def test_bad_element_record(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            with pytest.raises(ServeError):
                client.call("ingest", elements=[["+", "only-u"]])

    def test_estimator_errors_travel_back(self):
        spec = "windowed:inner=[exact],window=2,strict=true"
        with serve_in_background(open_session(spec)) as background:
            with ServeClient(*background.address) as client:
                with pytest.raises(ServeError, match="StreamError"):
                    client.ingest(deletion("ghost", "edge"))
                # The connection survives an application error.
                assert client.ping()["pong"] is True

    def test_oversized_line_is_refused(self, exact_server):
        blob = b'{"op": "ingest", "elements": [' + b" " * MAX_LINE
        response = _raw_exchange(exact_server.address, blob + b"\n")
        assert response["ok"] is False
        assert "exceeds" in response["error"]["message"]


class TestConsistency:
    """Queries during active ingest: stale is allowed, torn is not."""

    CHUNK = 100

    def _reference_views(self, spec, chunks):
        session = open_session(spec)
        views = {0: 0.0}
        for chunk in chunks:
            session.ingest(chunk)
            views[session.elements] = session.estimate
        return views

    def test_concurrent_estimates_are_never_torn(self):
        spec = "abacus:budget=256,seed=4"
        edges = [(f"u{i % 97}", f"v{i % 89}") for i in range(2500)]
        seen = set()
        stream = []
        for u, v in edges:
            if (u, v) not in seen:
                seen.add((u, v))
                stream.append(insertion(u, v))
        chunks = [
            stream[i : i + self.CHUNK]
            for i in range(0, len(stream), self.CHUNK)
        ]
        reference = self._reference_views(spec, chunks)

        observed = []
        done = threading.Event()

        def query_loop():
            with ServeClient(*background.address) as client:
                while not done.is_set():
                    view = client.estimate()
                    observed.append((view["elements"], view["estimate"]))

        with serve_in_background(open_session(spec)) as background:
            readers = [threading.Thread(target=query_loop) for _ in range(2)]
            for reader in readers:
                reader.start()
            with ServeClient(*background.address) as writer:
                for chunk in chunks:
                    writer.ingest(chunk)
            done.set()
            for reader in readers:
                reader.join(timeout=30)
        assert observed, "query threads never ran"
        for elements, estimate in observed:
            assert elements in reference, (
                f"view published at non-boundary offset {elements}"
            )
            assert estimate == reference[elements], (
                f"torn read: {estimate} at {elements} elements, "
                f"expected {reference[elements]}"
            )
        # The readers must have caught ingest mid-flight, not just
        # the final state.
        assert len({elements for elements, _ in observed}) > 1


class TestDurableServing:
    def test_checkpoint_then_restart_recovers(self, tmp_path):
        spec = "abacus:budget=64,seed=9"
        session = open_session(spec, durable_dir=tmp_path)
        with serve_in_background(session) as background:
            with ServeClient(*background.address) as client:
                client.ingest(BUTTERFLY)
                assert client.stats()["durable"] is True
                assert client.checkpoint() == 4
                client.ingest(deletion("u2", "v2"))
                before = client.estimate()
        # stop() closed the session (and synced the WAL).  A new
        # serving process over the same directory recovers it all.
        revived = open_session(durable_dir=tmp_path)
        with serve_in_background(revived) as background:
            with ServeClient(*background.address) as client:
                view = client.estimate()
                assert view["elements"] == before["elements"] == 5
                assert view["estimate"] == before["estimate"]

    def test_checkpoint_without_durability_errors(self, exact_server):
        with ServeClient(*exact_server.address) as client:
            with pytest.raises(ServeError, match="EstimatorError"):
                client.checkpoint()
