"""Backpressure: a saturated writer slows writers, never readers.

The server bounds its writer queue with a semaphore
(``max_pending_writes``).  The contract under a write storm:

* **no request is dropped or rejected** — every ingest eventually
  applies and every element is accounted for;
* the ``backpressure`` counter records that writers stalled;
* **reads never block** — ``estimate``/``stats`` answer from the
  published view while the writer is saturated.
"""

import threading
import time

import pytest

from repro.api import open_session
from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.server import EstimatorServer, serve_in_background
from repro.types import insertion


def _slow_session(delay=0.03):
    """An exact session whose ingest sleeps — a writer that can't keep
    up, without touching server code."""
    session = open_session("exact")
    real_ingest = session.ingest

    def slow_ingest(elements):
        time.sleep(delay)
        return real_ingest(elements)

    session.ingest = slow_ingest
    return session


def _tight_server(session, host, port):
    return EstimatorServer(
        session, host=host, port=port, max_pending_writes=1
    )


def test_storm_drops_nothing_and_counts_stalls():
    writers = 6
    per_writer = 3
    session = _slow_session()
    results = []
    errors = []

    def write(index):
        try:
            with ServeClient(*background.address) as client:
                for batch in range(per_writer):
                    base = index * 1000 + batch * 10
                    ack = client.ingest(
                        [insertion(f"u{base + i}", f"v{base + i}")
                         for i in range(4)]
                    )
                    results.append(ack)
        except ServeError as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    with serve_in_background(
        session, server_factory=_tight_server
    ) as background:
        threads = [
            threading.Thread(target=write, args=(index,))
            for index in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ServeClient(*background.address) as client:
            stats = client.stats()

    assert not errors
    # Nothing dropped: every batch acked in full, totals add up.
    assert len(results) == writers * per_writer
    assert all(ack["accepted"] == 4 for ack in results)
    assert stats["elements"] == writers * per_writer * 4
    # The storm actually saturated the single write slot.
    assert stats["backpressure"] > 0
    assert stats["max_pending_writes"] == 1


def test_reads_answer_while_the_writer_is_saturated():
    session = _slow_session(delay=0.1)
    stop = threading.Event()

    def hammer(name):
        with ServeClient(*background.address) as client:
            index = 0
            while not stop.is_set():
                index += 1
                client.ingest(
                    [insertion(f"w{name}-{index}-{i}",
                               f"x{name}-{index}-{i}")
                     for i in range(3)]
                )

    with serve_in_background(
        session, server_factory=_tight_server
    ) as background:
        writers = [
            threading.Thread(target=hammer, args=(name,), daemon=True)
            for name in range(3)
        ]
        for thread in writers:
            thread.start()
        try:
            time.sleep(0.15)  # let the storm saturate the slot
            with ServeClient(*background.address) as reader:
                latencies = []
                for _ in range(10):
                    started = time.monotonic()
                    view = reader.estimate()
                    latencies.append(time.monotonic() - started)
                    assert "estimate" in view
                stats = reader.stats()
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=5.0)
    assert stats["backpressure"] > 0
    # Reads answered from the published view: far faster than even a
    # single queued 100 ms write, let alone the queue behind it.
    assert min(latencies) < 0.1


def test_max_pending_writes_is_validated():
    session = open_session("exact")
    try:
        with pytest.raises(ServeError, match="max_pending_writes"):
            EstimatorServer(session, max_pending_writes=0)
    finally:
        session.close()
