"""Unit tests for the line-delimited JSON wire protocol."""

import pytest

from repro.errors import ServeError
from repro.serve.protocol import (
    decode_message,
    elements_to_records,
    encode_message,
    error_response,
    records_to_elements,
    result_response,
)
from repro.types import deletion, insertion, timed_insertion


class TestMessageFraming:
    def test_round_trip(self):
        message = {"id": 7, "op": "ingest", "elements": [["+", 1, 2]]}
        assert decode_message(encode_message(message)) == message

    def test_encoded_lines_are_newline_terminated(self):
        line = encode_message({"op": "ping"})
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]

    def test_malformed_json_raises(self):
        with pytest.raises(ServeError, match="malformed"):
            decode_message(b"{nope\n")

    def test_non_object_raises(self):
        with pytest.raises(ServeError, match="JSON objects"):
            decode_message(b"[1, 2, 3]\n")


class TestElementRecords:
    ELEMENTS = [
        insertion("alice", "matrix"),
        deletion(3, 7),
        timed_insertion("bob", "dune", 1.5),
    ]

    def test_round_trip(self):
        records = elements_to_records(self.ELEMENTS)
        assert records_to_elements(records) == self.ELEMENTS

    def test_timed_edges_keep_their_type(self):
        (element,) = records_to_elements([["+", "u", "v", 9.0]])
        assert type(element).__name__ == "TimedEdge"
        assert element.time == 9.0

    def test_non_list_body_raises(self):
        with pytest.raises(ServeError, match="list of records"):
            records_to_elements({"u": 1})

    def test_malformed_record_raises(self):
        with pytest.raises(ServeError, match="record"):
            records_to_elements([["+", "u"]])

    def test_bad_op_symbol_raises(self):
        with pytest.raises(ServeError):
            records_to_elements([["x", "u", "v"]])

    def test_non_numeric_timestamp_raises_serve_error(self):
        # float(None) is a TypeError; the record layer must surface
        # the documented ValueError so this wraps as ServeError.
        with pytest.raises(ServeError, match="timestamp"):
            records_to_elements([["+", "u", "v", None]])
        with pytest.raises(ServeError, match="timestamp"):
            records_to_elements([["+", "u", "v", "soon"]])


class TestResponses:
    def test_result_shape(self):
        response = result_response(3, {"estimate": 1.0})
        assert response == {
            "id": 3,
            "ok": True,
            "result": {"estimate": 1.0},
        }

    def test_error_shape(self):
        response = error_response(None, "SpecError", "boom")
        assert response["ok"] is False
        assert response["error"] == {
            "type": "SpecError",
            "message": "boom",
        }
