"""Unit tests for the sGrapp window-based baseline."""

import random

import pytest

from repro.baselines.sgrapp import SGrapp
from repro.errors import EstimatorError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import deletion, insertion


@pytest.fixture(scope="module")
def powerlaw_stream():
    rng = random.Random(101)
    edges = bipartite_chung_lu(1200, 250, 12000, rng=rng)
    return stream_from_edges(edges)


class TestConstruction:
    def test_window_validation(self):
        with pytest.raises(EstimatorError):
            SGrapp(window=0)

    def test_learning_windows_validation(self):
        with pytest.raises(EstimatorError):
            SGrapp(learning_windows=1)


class TestMechanics:
    def test_exact_during_learning(self, powerlaw_stream):
        est = SGrapp(window=1000, learning_windows=4)
        truth = 0.0
        from repro.core.exact import ExactStreamingCounter

        oracle = ExactStreamingCounter()
        for element in powerlaw_stream.prefix(3000):  # inside learning
            est.process(element)
            truth = oracle.process(element) or truth
        assert est.learning
        assert est.estimate == oracle.estimate

    def test_learning_graph_dropped_after_fit(self, powerlaw_stream):
        est = SGrapp(window=1000, learning_windows=3)
        est.process_stream(powerlaw_stream.prefix(5000))
        assert not est.learning
        # Memory now bounded by the current window.
        assert est.memory_edges <= 1000

    def test_deletions_ignored(self):
        est = SGrapp(window=10, learning_windows=2)
        est.process(insertion(1, 10))
        delta = est.process(deletion(1, 10))
        assert delta == 0.0

    def test_bdpl_exponent_available_after_learning(self, powerlaw_stream):
        est = SGrapp(window=1000, learning_windows=4)
        est.process_stream(powerlaw_stream)
        assert not est.learning
        assert est.bdpl_exponent != 0.0


class TestAccuracyShape:
    def test_reasonable_on_insert_only(self, powerlaw_stream):
        truth = ground_truth_final_count(powerlaw_stream)
        est = SGrapp(window=1500, learning_windows=4)
        estimate = est.process_stream(powerlaw_stream)
        assert abs(truth - estimate) / truth < 0.6

    def test_breaks_under_deletions(self):
        rng = random.Random(103)
        edges = bipartite_chung_lu(1200, 250, 12000, rng=rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(7))
        truth = ground_truth_final_count(stream)
        est = SGrapp(window=1500, learning_windows=4)
        estimate = est.process_stream(stream)
        # Ignoring 30% deletions leaves a large overestimate.
        assert estimate > truth * 1.3

    def test_no_butterflies_stream_estimates_zero(self):
        # Degree-1 star forest: no butterflies anywhere.
        stream = stream_from_edges([(i, 10_000 + i) for i in range(5000)])
        est = SGrapp(window=500, learning_windows=2)
        assert est.process_stream(stream) == 0.0
