"""Unit tests for the CAS baseline."""

import random

import pytest

from repro.baselines.cas import CoAffiliationSampling, _pair_key
from repro.errors import EstimatorError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import deletion, insertion


class TestConstruction:
    def test_budget_validation(self):
        with pytest.raises(EstimatorError):
            CoAffiliationSampling(3)

    def test_lambda_validation(self):
        with pytest.raises(EstimatorError):
            CoAffiliationSampling(100, sketch_fraction=0.0)
        with pytest.raises(EstimatorError):
            CoAffiliationSampling(100, sketch_fraction=1.0)

    def test_memory_split(self):
        cas = CoAffiliationSampling(300, sketch_fraction=0.33, seed=0)
        assert cas.reservoir_capacity == round(300 * 0.67)


class TestPairKey:
    def test_symmetric(self):
        assert _pair_key(3, 17) == _pair_key(17, 3)
        assert _pair_key("a", "b") == _pair_key("b", "a")

    def test_distinct_pairs_usually_differ(self):
        keys = {_pair_key(i, j) for i in range(30) for j in range(i)}
        assert len(keys) == 30 * 29 // 2  # no collisions on a tiny set


class TestMechanics:
    def test_deletions_ignored(self):
        cas = CoAffiliationSampling(100, seed=0)
        cas.process(insertion(1, 10))
        delta = cas.process(deletion(1, 10))
        assert delta == 0.0
        assert cas.memory_edges == 1

    def test_memory_bounded_by_reservoir(self):
        cas = CoAffiliationSampling(60, seed=1)
        for i in range(500):
            cas.process(insertion(i, 9000 + (i % 40)))
        assert cas.memory_edges <= cas.reservoir_capacity

    def test_sketch_updates_happen(self):
        cas = CoAffiliationSampling(100, seed=2)
        # A star: every new edge wedge-pairs with earlier neighbours.
        for i in range(10):
            cas.process(insertion(i, 777))
        assert cas.sketch_updates > 0

    def test_exact_while_everything_sampled(self):
        # Reservoir large enough to hold all edges -> p = 1 and point
        # queries are exact on this collision-free workload.
        cas = CoAffiliationSampling(1000, seed=3)
        for el in (
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ):
            cas.process(el)
        assert cas.estimate == pytest.approx(1.0)


class TestAccuracyShape:
    def test_plausible_on_insert_only(self):
        rng = random.Random(62)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = stream_from_edges(edges)
        truth = ground_truth_final_count(stream)
        errors = []
        for seed in range(5):
            cas = CoAffiliationSampling(800, seed=seed)
            errors.append(abs(truth - cas.process_stream(stream)) / truth)
        assert sum(errors) / len(errors) < 0.6  # noisy but in the ballpark

    def test_biased_under_deletions(self):
        rng = random.Random(63)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(4))
        truth = ground_truth_final_count(stream)
        overshoots = 0
        for seed in range(5):
            cas = CoAffiliationSampling(800, seed=seed)
            estimate = cas.process_stream(stream)
            if estimate > truth * 1.3:
                overshoots += 1
        assert overshoots >= 4
