"""Unit tests for the FLEET baseline."""

import random

import pytest

from repro.baselines.fleet import Fleet
from repro.errors import EstimatorError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import deletion, insertion


class TestConstruction:
    def test_budget_validation(self):
        with pytest.raises(EstimatorError):
            Fleet(1)

    def test_gamma_validation(self):
        with pytest.raises(EstimatorError):
            Fleet(10, gamma=1.0)
        with pytest.raises(EstimatorError):
            Fleet(10, gamma=0.0)


class TestMechanics:
    def test_deletions_ignored(self):
        f = Fleet(100, seed=0)
        f.process(insertion(1, 10))
        before = f.memory_edges
        delta = f.process(deletion(1, 10))
        assert delta == 0.0
        assert f.memory_edges == before  # the deleted edge stays sampled

    def test_exact_before_first_resize(self):
        # With p = 1 and no resize, FLEET counts exactly.
        f = Fleet(1000, seed=0)
        for el in (
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ):
            f.process(el)
        assert f.estimate == pytest.approx(1.0)
        assert f.sampling_probability == 1.0

    def test_resize_shrinks_reservoir_and_p(self):
        f = Fleet(50, gamma=0.75, seed=1)
        for i in range(200):
            f.process(insertion(i, 10_000 + i))
        assert f.num_resizes >= 1
        assert f.sampling_probability == pytest.approx(
            0.75**f.num_resizes
        )
        assert f.memory_edges < 50

    def test_memory_never_exceeds_budget(self):
        f = Fleet(40, seed=2)
        for i in range(2000):
            f.process(insertion(i % 100, 10_000 + i // 100))
        assert f.memory_edges <= 40


class TestAccuracyShape:
    def test_reasonable_on_insert_only(self):
        rng = random.Random(60)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = stream_from_edges(edges)
        truth = ground_truth_final_count(stream)
        errors = []
        for seed in range(5):
            f = Fleet(800, seed=seed)
            errors.append(abs(truth - f.process_stream(stream)) / truth)
        assert sum(errors) / len(errors) < 0.3

    def test_overestimates_under_deletions(self):
        """FLEET ignores deletions, so on a heavy-deletion stream its
        estimate vastly exceeds the surviving butterfly count — the
        failure mode Figure 3 quantifies."""
        rng = random.Random(61)
        edges = bipartite_chung_lu(400, 120, 4000, rng=rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(3))
        truth = ground_truth_final_count(stream)
        overshoots = 0
        for seed in range(5):
            f = Fleet(800, seed=seed)
            estimate = f.process_stream(stream)
            if estimate > truth * 1.5:
                overshoots += 1
        assert overshoots >= 4
