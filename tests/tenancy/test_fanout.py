"""SharedStreamFanout: one durable log driving N estimators.

The fan-out contract (``docs/multitenancy.md``): every member
observes exactly the shared stream — each member's estimate is
bit-identical to the same estimator fed the same elements standalone
— and recovery replays the one log through all members.
"""

import pytest

from repro.api import open_session
from repro.errors import StoreError, TenancyError
from repro.tenancy import (
    FANOUT_FORMAT,
    CardinalityTap,
    DeletionRateTap,
    SharedStreamFanout,
    TenantCatalog,
    default_taps,
)
from repro.types import deletion, insertion

MEMBERS = {
    "alice": "abacus:budget=64,seed=11",
    "bob": "abacus:budget=32,seed=22",
    "carol": "exact",
}


def _stream(n):
    elements = []
    for i in range(n):
        elements.append(insertion(f"u{i % 17}", f"v{i % 13}"))
        if i % 7 == 3:
            elements.append(
                deletion(f"u{(i - 2) % 17}", f"v{(i - 2) % 13}")
            )
    # Deduplicate illegal re-insertions/no-op deletions the cheap way:
    # keep only transitions the estimator would accept.
    live, cleaned = set(), []
    for element in elements:
        edge = element.edge
        if element.is_insertion:
            if edge in live:
                continue
            live.add(edge)
        else:
            if edge not in live:
                continue
            live.remove(edge)
        cleaned.append(element)
    return cleaned


def _fingerprints(fanout):
    return {
        name: fanout.session(name).fingerprint()
        for name in fanout.members
    }


class TestIdentity:
    def test_members_match_standalone_sessions(self, tmp_path):
        stream = _stream(300)
        fanout = SharedStreamFanout(tmp_path / "s", members=MEMBERS)
        fanout.ingest(stream)
        for name, spec in MEMBERS.items():
            standalone = open_session(spec)
            standalone.ingest(stream)
            assert (
                fanout.session(name).fingerprint()
                == standalone.fingerprint()
            ), name
            standalone.close()
        assert fanout.elements == len(stream)
        fanout.close()

    def test_estimates_and_stats_shape(self, tmp_path):
        fanout = SharedStreamFanout(tmp_path / "s", members=MEMBERS)
        fanout.ingest(_stream(60))
        estimates = fanout.estimates()
        assert set(estimates) == set(MEMBERS)
        stats = fanout.stats()
        assert stats["elements"] == fanout.elements
        for name in MEMBERS:
            member = stats["members"][name]
            assert member["spec"]
            assert member["estimate"] == estimates[name]
        fanout.close()

    def test_empty_batch_is_a_noop(self, tmp_path):
        fanout = SharedStreamFanout(tmp_path / "s", members=MEMBERS)
        before = _fingerprints(fanout)
        fanout.ingest([])
        assert fanout.elements == 0
        assert _fingerprints(fanout) == before
        fanout.close()


class TestRecovery:
    def test_tail_replay_is_bit_identical(self, tmp_path):
        stream = _stream(200)
        # Checkpointing snapshots every member, so all members must be
        # snapshot-capable ('exact' is deliberately not).
        members = {
            "alice": "abacus:budget=64,seed=11",
            "bob": "abacus:budget=32,seed=22",
            "carol": "abacus:budget=128,seed=33",
        }
        fanout = SharedStreamFanout(tmp_path / "s", members=members)
        fanout.ingest(stream[:120])
        fanout.checkpoint()
        fanout.ingest(stream[120:])
        fanout.sync()
        expected = _fingerprints(fanout)
        fanout.close()

        reopened = SharedStreamFanout(tmp_path / "s")
        assert reopened.members == fanout.members
        assert reopened.elements == len(stream)
        assert _fingerprints(reopened) == expected
        reopened.close()

    def test_reopen_without_checkpoint(self, tmp_path):
        stream = _stream(80)
        fanout = SharedStreamFanout(tmp_path / "s", members=MEMBERS)
        fanout.ingest(stream)
        fanout.sync()
        expected = _fingerprints(fanout)
        fanout.close()
        reopened = SharedStreamFanout(tmp_path / "s")
        assert _fingerprints(reopened) == expected
        reopened.close()

    def test_member_map_mismatch_is_refused(self, tmp_path):
        fanout = SharedStreamFanout(tmp_path / "s", members=MEMBERS)
        fanout.ingest(_stream(10))
        fanout.sync()
        fanout.close()
        different = {**MEMBERS, "dave": "exact"}
        with pytest.raises((TenancyError, StoreError)):
            SharedStreamFanout(tmp_path / "s", members=different)

    def test_format_constant_is_pinned(self):
        # Recovery refuses envelopes from a future format; the pin is
        # part of the on-disk contract.
        assert FANOUT_FORMAT == 1


class TestPoison:
    def test_member_refusal_rolls_back_and_poisons(self, tmp_path):
        fanout = SharedStreamFanout(
            tmp_path / "s", members={"a": "exact", "b": "exact"}
        )
        good = [insertion("u1", "v1"), insertion("u2", "v2")]
        fanout.ingest(good)
        fanout.sync()
        expected = _fingerprints(fanout)
        # A duplicate insertion is invalid stream input: the batch
        # must roll back the shared log and poison the fan-out.
        with pytest.raises(Exception):
            fanout.ingest([insertion("u9", "v9"), insertion("u1", "v1")])
        assert fanout.poisoned
        with pytest.raises(TenancyError, match="poisoned"):
            fanout.ingest([insertion("u3", "v3")])
        fanout.close()

        # Recovery lands every member at the pre-batch state.
        reopened = SharedStreamFanout(tmp_path / "s")
        assert reopened.elements == len(good)
        assert _fingerprints(reopened) == expected
        reopened.close()


class TestTaps:
    def test_default_taps_summarise_the_shared_stream(self, tmp_path):
        stream = _stream(150)
        fanout = SharedStreamFanout(
            tmp_path / "s", members=MEMBERS, taps=default_taps()
        )
        fanout.ingest(stream)
        stats = fanout.stats()
        assert stats["taps_since_offset"] == 0
        taps = stats["taps"]
        assert taps["cardinality"]["distinct_edges"] > 0
        assert 0.0 <= taps["deletion_rate"]["deletion_ratio"] <= 1.0
        fanout.close()

    def test_taps_survive_recovery_of_the_tail(self, tmp_path):
        stream = _stream(100)
        taps = (CardinalityTap(), DeletionRateTap())
        fanout = SharedStreamFanout(
            tmp_path / "s", members=MEMBERS, taps=taps
        )
        fanout.ingest(stream)
        fanout.sync()
        expected = fanout.stats()["taps"]
        fanout.close()
        # Fresh tap instances replay whatever the checkpoint did not
        # cover; with no checkpoint, that is the whole stream.
        reopened = SharedStreamFanout(
            tmp_path / "s",
            taps=(CardinalityTap(), DeletionRateTap()),
        )
        assert reopened.taps_since_offset == 0
        assert reopened.stats()["taps"] == expected
        reopened.close()


class TestLifecycle:
    def test_closed_fanout_refuses_work(self, tmp_path):
        fanout = SharedStreamFanout(
            tmp_path / "s", members={"a": "exact"}
        )
        fanout.close()
        with pytest.raises(TenancyError):
            fanout.ingest([insertion("u", "v")])

    def test_catalog_bound_stream_round_trip(self, tmp_path):
        stream = _stream(120)
        with TenantCatalog(tmp_path) as catalog:
            for name, spec in MEMBERS.items():
                catalog.create(name, spec)
            fanout = catalog.bind_stream("shared", list(MEMBERS))
            fanout.ingest(stream)
            fanout.sync()
            expected = _fingerprints(fanout)
        with TenantCatalog(tmp_path) as catalog:
            reopened = catalog.open_stream("shared")
            assert _fingerprints(reopened) == expected
