"""TenantCatalog: atomic create/drop/list over one durable root.

The catalog's contract (``docs/multitenancy.md``): ``catalog.json``
is the single atomic source of truth — a tenant exists exactly when
it is listed — and every side effect (the tenant's durable directory,
crash debris from a torn commit) converges on reopen.
"""

import json

import pytest

from repro.api import open_session
from repro.errors import SpecError, StoreError, TenancyError
from repro.tenancy import (
    CATALOG_FILE,
    DEFAULT_TENANT_QUOTA,
    TenantCatalog,
)
from repro.types import insertion


def _batch(n, base=0):
    return [insertion(f"u{base + i}", f"v{base + i}") for i in range(n)]


class TestCreateDropList:
    def test_create_lists_and_canonicalises_the_spec(self, tmp_path):
        catalog = TenantCatalog(tmp_path)
        spec = catalog.create("alice", "abacus:budget=64, seed=1")
        assert spec == "abacus:budget=64,seed=1"
        assert catalog.names() == ("alice",)
        assert "alice" in catalog
        assert catalog.spec("alice") == spec
        catalog.close()

    def test_create_rejects_bad_specs_without_committing(self, tmp_path):
        catalog = TenantCatalog(tmp_path)
        with pytest.raises(SpecError):
            catalog.create("alice", "abacus:budget")
        assert catalog.names() == ()
        assert not (tmp_path / "alice").exists()
        catalog.close()

    def test_create_rejects_unknown_estimators_and_params(self, tmp_path):
        """Typos fail at create time, not at first session build."""
        catalog = TenantCatalog(tmp_path)
        with pytest.raises(SpecError, match="unknown estimator"):
            catalog.create("alice", "abacuss:budget=64")
        with pytest.raises(SpecError, match="does not accept"):
            catalog.create("alice", "abacus:budget=64,bogus=1")
        assert catalog.names() == ()
        assert not (tmp_path / "alice").exists()
        catalog.close()

    def test_duplicate_tenant_is_refused(self, tmp_path):
        catalog = TenantCatalog(tmp_path)
        catalog.create("alice", "exact")
        with pytest.raises(TenancyError, match="alice"):
            catalog.create("alice", "exact")
        catalog.close()

    @pytest.mark.parametrize(
        "name",
        ["", ".hidden", "a/b", "a b", "-lead", "x" * 65, "ümlaut"],
    )
    def test_invalid_names_are_refused(self, tmp_path, name):
        catalog = TenantCatalog(tmp_path)
        with pytest.raises(TenancyError):
            catalog.create(name, "exact")
        catalog.close()

    def test_drop_removes_tenant_and_directory(self, tmp_path):
        catalog = TenantCatalog(tmp_path)
        catalog.create("alice", "exact")
        catalog.create("bob", "abacus:budget=32,seed=2")
        catalog.session("bob").ingest(_batch(5))
        catalog.drop("bob")
        assert catalog.names() == ("alice",)
        assert not (tmp_path / "bob").exists()
        with pytest.raises(TenancyError, match="unknown tenant"):
            catalog.session("bob")
        catalog.close()

    def test_quota_defaults_and_declared(self, tmp_path):
        catalog = TenantCatalog(tmp_path)
        catalog.create("alice", "exact")
        catalog.create("bob", "exact", quota=3)
        assert catalog.quota("alice") == DEFAULT_TENANT_QUOTA
        assert catalog.declared_quota("alice") is None
        assert catalog.quota("bob") == 3
        assert catalog.declared_quota("bob") == 3
        with pytest.raises(TenancyError, match="quota"):
            catalog.create("carol", "exact", quota=0)
        catalog.close()


class TestDurability:
    def test_catalog_survives_reopen(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "abacus:budget=32,seed=7", quota=5)
            catalog.create("bob", "exact")
            catalog.session("alice").ingest(_batch(10))
        with TenantCatalog(tmp_path) as catalog:
            assert catalog.names() == ("alice", "bob")
            assert catalog.quota("alice") == 5
            assert catalog.session("alice").elements == 10

    def test_tenant_sessions_are_independent(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "exact")
            catalog.create("bob", "exact")
            catalog.session("alice").ingest(
                [insertion(u, v)
                 for u in ("u1", "u2") for v in ("v1", "v2")]
            )
            assert catalog.session("alice").estimate == 1.0
            assert catalog.session("bob").elements == 0
            assert catalog.session("bob").estimate == 0.0

    def test_tenant_dir_matches_plain_durable_session(self, tmp_path):
        """A catalog tenant is an ordinary durable directory."""
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "abacus:budget=48,seed=3")
            catalog.session("alice").ingest(_batch(20))
        session = open_session(durable_dir=tmp_path / "alice")
        assert session.elements == 20
        session.close()


class TestSweep:
    def test_torn_tmp_catalog_is_swept(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "exact")
        torn = tmp_path / ".tmp-catalog.json"
        torn.write_bytes(b'{"format": 1, "tenants": {"al')
        with TenantCatalog(tmp_path) as catalog:
            assert catalog.names() == ("alice",)
        assert not torn.exists()

    def test_trash_dirs_are_swept(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "exact")
        trash = tmp_path / ".trash-bob"
        trash.mkdir()
        (trash / "junk").write_text("x")
        with TenantCatalog(tmp_path) as catalog:
            assert catalog.names() == ("alice",)
        assert not trash.exists()

    def test_orphan_tenant_dir_is_swept(self, tmp_path):
        """A directory with store state but no catalog entry — the
        half of a crashed drop — is removed on reopen."""
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "exact")
            catalog.create("bob", "exact")
            catalog.session("bob").ingest(_batch(3))
        # Forge the crash: rewrite catalog.json without bob while his
        # directory is still fully present.
        payload = json.loads((tmp_path / CATALOG_FILE).read_text())
        del payload["tenants"]["bob"]
        (tmp_path / CATALOG_FILE).write_text(json.dumps(payload))
        assert (tmp_path / "bob").exists()
        with TenantCatalog(tmp_path) as catalog:
            assert catalog.names() == ("alice",)
        assert not (tmp_path / "bob").exists()

    def test_foreign_directory_is_refused_not_deleted(self, tmp_path):
        """An unlisted directory that does not look like a tenant's
        durable store must never be silently destroyed."""
        with TenantCatalog(tmp_path):
            pass
        foreign = tmp_path / "precious"
        foreign.mkdir()
        (foreign / "thesis.txt").write_text("do not delete")
        with pytest.raises(TenancyError, match="foreign"):
            TenantCatalog(tmp_path)
        assert (foreign / "thesis.txt").exists()

    def test_corrupt_catalog_json_is_an_error(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("alice", "exact")
        (tmp_path / CATALOG_FILE).write_text("{not json")
        with pytest.raises(StoreError):
            TenantCatalog(tmp_path)


class TestStreamBindings:
    def test_bind_and_drop_stream(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("a", "abacus:budget=32,seed=1")
            catalog.create("b", "abacus:budget=32,seed=2")
            fanout = catalog.bind_stream("dash", ["a", "b"])
            assert sorted(fanout.members) == ["a", "b"]
            assert catalog.streams() == {"dash": ("a", "b")}
            assert catalog.bound_stream("a") == "dash"
            fanout.ingest(_batch(6))
            catalog.drop_stream("dash")
            assert catalog.streams() == {}
            # Tenants stay in the catalog after the stream is gone.
            assert catalog.names() == ("a", "b")

    def test_bound_tenant_has_no_standalone_session(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("a", "exact")
            catalog.create("b", "exact")
            catalog.bind_stream("dash", ["a", "b"])
            with pytest.raises(TenancyError, match="dash"):
                catalog.session("a")

    def test_bound_tenant_cannot_be_dropped(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("a", "exact")
            catalog.create("b", "exact")
            catalog.bind_stream("dash", ["a", "b"])
            with pytest.raises(TenancyError, match="dash"):
                catalog.drop("a")

    def test_binding_requires_fresh_tenants(self, tmp_path):
        """Binding a tenant that already ingested standalone would
        shadow its durable state — refused."""
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("a", "exact")
            catalog.create("b", "exact")
            catalog.session("a").ingest(_batch(2))
            catalog.session("a").sync()
            with pytest.raises(TenancyError):
                catalog.bind_stream("dash", ["a", "b"])

    def test_bindings_survive_reopen(self, tmp_path):
        with TenantCatalog(tmp_path) as catalog:
            catalog.create("a", "abacus:budget=32,seed=1")
            catalog.create("b", "abacus:budget=32,seed=2")
            catalog.bind_stream("dash", ["a", "b"])
            catalog.open_stream("dash").ingest(_batch(8))
        with TenantCatalog(tmp_path) as catalog:
            assert catalog.streams() == {"dash": ("a", "b")}
            fanout = catalog.open_stream("dash")
            assert fanout.elements == 8
