"""Catalog crash recovery: kill-at-every-byte, per tenant.

Extends the store's kill-at-every-offset contract
(``tests/store/test_recovery.py``) to a catalog of three tenants:
cutting one tenant's WAL at **any** byte and reopening the catalog
must land that tenant bit-identical to an uninterrupted run over the
surviving prefix — and must leave every *other* tenant bit-identical
to its own full run.  ``catalog.json`` itself commits via
tmp+fsync+rename, so the torn-write probes cut the *temp* file at
every byte and assert the old catalog stays authoritative.

Admin crashes use the fault-point registry (``repro.faults``):
``tenant.create_committed`` / ``tenant.drop_committed`` fire between
the atomic commit and the directory side effect, and
``checkpoint.*`` fires inside a tenant's checkpoint — after any of
them, reopen must converge (dropped directory fully present or fully
gone, survivors bit-identical).
"""

import json
import random
import struct

import pytest

from repro.api import open_session
from repro.errors import TenancyError
from repro.faults import SimulatedCrash, crash_at
from repro.graph.generators import bipartite_erdos_renyi
from repro.store.wal import WAL_MAGIC
from repro.streams import make_fully_dynamic
from repro.tenancy import CATALOG_FILE, TenantCatalog

_FRAME = struct.Struct("<II")

#: The catalog under test: three tenants, distinct estimators.
TENANTS = {
    "alice": "abacus:budget=48,seed=11",
    "bob": "abacus:budget=32,seed=22",
    "carol": "parabacus:budget=64,seed=33,batch_size=7",
}
VICTIM = "alice"


def _stream(seed):
    edges = bipartite_erdos_renyi(8, 8, 20, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.25, rng=random.Random(seed + 1))
    )


def _streams():
    return {
        name: _stream(seed)
        for seed, name in enumerate(sorted(TENANTS), start=3)
    }


def _reference_fingerprints(spec, stream):
    """Fingerprint after every prefix of an uninterrupted run."""
    session = open_session(spec)
    fingerprints = [session.fingerprint()]
    for element in stream:
        session.ingest(element)
        fingerprints.append(session.fingerprint())
    return fingerprints


def _build_catalog(root, streams, checkpoint_victim_at=None):
    with TenantCatalog(root) as catalog:
        for name, spec in TENANTS.items():
            catalog.create(name, spec)
        for name, stream in streams.items():
            session = catalog.session(name)
            if name == VICTIM and checkpoint_victim_at is not None:
                session.ingest(stream[:checkpoint_victim_at])
                assert session.checkpoint() == checkpoint_victim_at
                session.ingest(stream[checkpoint_victim_at:])
            else:
                session.ingest(stream)
            session.sync()


def _last_segment(directory):
    segments = sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith("wal-")
    )
    assert segments
    return segments[-1]


def _frame_boundaries(data):
    boundaries = [min(len(data), len(WAL_MAGIC))]
    position = len(WAL_MAGIC)
    while position + _FRAME.size <= len(data):
        length, _ = _FRAME.unpack(data[position : position + _FRAME.size])
        nxt = position + _FRAME.size + length
        if nxt > len(data):
            break
        position = nxt
        boundaries.append(position)
    return boundaries


class TestKillAtEveryByte:
    def _run_matrix(self, tmp_path, checkpoint_victim_at):
        streams = _streams()
        references = {
            name: _reference_fingerprints(spec, streams[name])
            for name, spec in TENANTS.items()
        }
        full = {
            name: references[name][len(streams[name])]
            for name in TENANTS
        }
        _build_catalog(
            tmp_path, streams, checkpoint_victim_at=checkpoint_victim_at
        )
        segment = _last_segment(tmp_path / VICTIM)
        data = segment.read_bytes()
        floor = checkpoint_victim_at or 0
        recovered_counts = set()
        for cut in range(len(data) + 1):
            segment.write_bytes(data[:cut])
            with TenantCatalog(tmp_path) as catalog:
                assert catalog.names() == tuple(sorted(TENANTS))
                victim = catalog.session(VICTIM)
                count = victim.elements
                assert count >= floor, (cut, count)
                assert victim.fingerprint() == references[VICTIM][count], (
                    f"{VICTIM} recovered at byte {cut} "
                    f"(= {count} elements) is not bit-identical to "
                    "the uninterrupted run"
                )
                recovered_counts.add(count)
                for name in TENANTS:
                    if name == VICTIM:
                        continue
                    assert (
                        catalog.session(name).fingerprint() == full[name]
                    ), f"{name} must be untouched by {VICTIM}'s crash"
        assert min(recovered_counts) == floor
        assert max(recovered_counts) == len(streams[VICTIM])
        assert len(recovered_counts) > 2

    def test_without_checkpoint(self, tmp_path):
        self._run_matrix(tmp_path, checkpoint_victim_at=None)

    def test_with_mid_stream_checkpoint(self, tmp_path):
        self._run_matrix(tmp_path, checkpoint_victim_at=10)


class TestTornCatalogCommit:
    def test_torn_tmp_write_leaves_old_catalog_authoritative(
        self, tmp_path
    ):
        """Cut the tmp+rename commit at every byte of the temp file.

        The rename is the commit point; any prefix of the temp file on
        disk next to an intact ``catalog.json`` must reopen as the
        *old* catalog with the debris swept.
        """
        streams = _streams()
        _build_catalog(tmp_path, streams)
        old = (tmp_path / CATALOG_FILE).read_bytes()
        # The payload the next commit would have written: the old
        # catalog plus one more tenant.
        payload = json.loads(old)
        payload["tenants"]["dana"] = {"spec": "exact"}
        new = json.dumps(payload, indent=2, sort_keys=True).encode()
        torn = tmp_path / ".tmp-catalog.json"
        for cut in range(len(new) + 1):
            torn.write_bytes(new[:cut])
            with TenantCatalog(tmp_path) as catalog:
                assert catalog.names() == tuple(sorted(TENANTS))
                assert "dana" not in catalog
            assert not torn.exists(), cut
            assert (tmp_path / CATALOG_FILE).read_bytes() == old

    def test_renamed_catalog_is_the_commit(self, tmp_path):
        """Once the rename lands, the new tenant exists — even though
        its directory was never materialised."""
        streams = _streams()
        _build_catalog(tmp_path, streams)
        payload = json.loads((tmp_path / CATALOG_FILE).read_bytes())
        payload["tenants"]["dana"] = {"spec": "abacus:budget=16,seed=9"}
        (tmp_path / CATALOG_FILE).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
        with TenantCatalog(tmp_path) as catalog:
            assert "dana" in catalog
            session = catalog.session("dana")  # lazily materialised
            assert session.elements == 0


class TestAdminCrashPoints:
    def test_crash_after_create_commit(self, tmp_path):
        _build_catalog(tmp_path, _streams())
        catalog = TenantCatalog(tmp_path)
        with pytest.raises(SimulatedCrash):
            with crash_at("tenant.create_committed"):
                catalog.create("dana", "abacus:budget=16,seed=9")
        # Crashed catalog is abandoned, never closed — like kill -9.
        reopened = TenantCatalog(tmp_path)
        assert "dana" in reopened
        assert reopened.session("dana").elements == 0
        reopened.close()

    def test_crash_after_drop_commit(self, tmp_path):
        streams = _streams()
        _build_catalog(tmp_path, streams)
        full = {
            name: _reference_fingerprints(spec, streams[name])[-1]
            for name, spec in TENANTS.items()
        }
        catalog = TenantCatalog(tmp_path)
        with pytest.raises(SimulatedCrash):
            with crash_at("tenant.drop_committed"):
                catalog.drop("bob")
        # The directory may be fully present (commit beat the crash,
        # removal did not start) — never half-deleted garbage that a
        # reopen would trip over.
        reopened = TenantCatalog(tmp_path)
        assert "bob" not in reopened
        assert not (tmp_path / "bob").exists()
        with pytest.raises(TenancyError):
            reopened.session("bob")
        for name in ("alice", "carol"):
            assert reopened.session(name).fingerprint() == full[name]
        reopened.close()

    @pytest.mark.parametrize(
        "point",
        ["checkpoint.synced", "checkpoint.snapshotted",
         "checkpoint.rotated"],
    )
    def test_drop_tenant_mid_checkpoint(self, tmp_path, point):
        """A tenant's checkpoint crashes mid-way; another tenant is
        then dropped.  Reopen: the checkpointing tenant recovers
        bit-identically, the dropped one is fully gone."""
        streams = _streams()
        _build_catalog(tmp_path, streams)
        full = {
            name: _reference_fingerprints(spec, streams[name])[-1]
            for name, spec in TENANTS.items()
        }
        catalog = TenantCatalog(tmp_path)
        with pytest.raises(SimulatedCrash):
            with crash_at(point):
                catalog.session("alice").checkpoint()
        # The server process survived the torn checkpoint (it is a
        # background failure, not a wedge) and drops another tenant.
        survivor = TenantCatalog(tmp_path)
        survivor.drop("carol")
        survivor.close()

        reopened = TenantCatalog(tmp_path)
        assert reopened.names() == ("alice", "bob")
        assert not (tmp_path / "carol").exists()
        for name in ("alice", "bob"):
            assert reopened.session(name).fingerprint() == full[name], (
                point,
                name,
            )
        reopened.close()
