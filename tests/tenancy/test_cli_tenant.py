"""``repro tenant`` and the tenancy-facing CLI surface."""

import pytest

from repro.cli import build_parser, main, run_tenant
from repro.errors import ClusterError, TenancyError
from repro.tenancy import TenantCatalog


class TestRunTenant:
    def test_create_list_drop_round_trip(self, tmp_path):
        root = str(tmp_path)
        created = run_tenant(
            "create", root, "alice", "abacus:budget=32,seed=5", quota=4
        )
        assert "alice" in created
        assert "quota 4" in created
        run_tenant("create", root, "bob", None)
        listing = run_tenant("list", root, None, None)
        assert "alice" in listing
        assert "bob" in listing
        dropped = run_tenant("drop", root, "bob", None)
        assert "dropped tenant 'bob'" in dropped
        assert "alice" in dropped
        # The CLI wrote a real catalog.
        with TenantCatalog(tmp_path) as catalog:
            assert catalog.names() == ("alice",)
            assert catalog.quota("alice") == 4

    def test_list_empty_catalog(self, tmp_path):
        listing = run_tenant("list", str(tmp_path), None, None)
        assert "(none)" in listing

    def test_missing_action_is_refused(self, tmp_path):
        with pytest.raises(TenancyError, match="action"):
            run_tenant(None, str(tmp_path), None, None)

    def test_missing_root_is_refused(self):
        with pytest.raises(TenancyError, match="--tenant-root"):
            run_tenant("list", None, None, None)

    @pytest.mark.parametrize("action", ["create", "drop"])
    def test_missing_name_is_refused(self, tmp_path, action):
        with pytest.raises(TenancyError, match="--name"):
            run_tenant(action, str(tmp_path), None, None)


class TestParser:
    def test_tenant_arguments_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "tenant",
                "create",
                "--tenant-root",
                "/tmp/x",
                "--name",
                "alice",
                "--estimator",
                "exact",
                "--quota",
                "4",
            ]
        )
        assert args.experiment == "tenant"
        assert args.action == "create"
        assert args.tenant_root == "/tmp/x"
        assert args.name == "alice"
        assert args.quota == 4

    def test_version_flag(self, capsys):
        import repro

        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_serve_accepts_tenant_root(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--tenant-root", "/tmp/x"]
        )
        assert args.tenant_root == "/tmp/x"


class TestMainDispatch:
    def test_main_runs_tenant_commands(self, tmp_path, capsys):
        root = str(tmp_path)
        main(
            [
                "tenant",
                "create",
                "--tenant-root",
                root,
                "--name",
                "alice",
                "--estimator",
                "exact",
            ]
        )
        main(["tenant", "list", "--tenant-root", root])
        out = capsys.readouterr().out
        assert "created tenant 'alice'" in out
        assert "== tenants in" in out


class TestServeValidation:
    def test_tenant_root_with_replication_is_refused(self, tmp_path):
        from repro.cli import run_serve

        with pytest.raises(ClusterError, match="tenant"):
            run_serve(
                None,
                "127.0.0.1",
                0,
                replicate_to=1,
                tenant_root=str(tmp_path),
            )
