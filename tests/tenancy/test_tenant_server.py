"""Multi-tenant serving: wire ops, fair-share, byte-compatibility.

The server-side contract (``docs/multitenancy.md``): a catalog-hosting
server answers tenant-scoped requests through per-tenant fair-share
lanes feeding the one writer thread; a server *without* a catalog
keeps the exact single-tenant protocol of previous releases.
"""

import threading
import time

import pytest

from repro.api import open_session
from repro.errors import ServeError
from repro.serve import ServeClient, serve_in_background
from repro.serve.server import EstimatorServer
from repro.tenancy import TenantCatalog
from repro.types import insertion

BUTTERFLY = [
    insertion("u1", "v1"),
    insertion("u1", "v2"),
    insertion("u2", "v1"),
    insertion("u2", "v2"),
]


def _batch(n, base=0):
    return [insertion(f"u{base + i}", f"v{base + i}") for i in range(n)]


def catalog_server(root, session=None, **server_kwargs):
    """A background server hosting a TenantCatalog at ``root``."""

    def factory(inner_session, host, port):
        return EstimatorServer(
            inner_session,
            host=host,
            port=port,
            catalog=TenantCatalog(root),
            **server_kwargs,
        )

    return serve_in_background(session, server_factory=factory)


@pytest.fixture
def server(tmp_path):
    with catalog_server(tmp_path / "root") as background:
        yield background


class TestTenantWireOps:
    def test_create_list_drop(self, server):
        with ServeClient(*server.address) as client:
            created = client.create_tenant(
                "alice", "abacus:budget=64,seed=1", quota=4
            )
            assert created["tenant"] == "alice"
            assert created["quota"] == 4
            client.create_tenant("bob", "exact")
            listing = client.list_tenants()
            names = [t["name"] for t in listing["tenants"]]
            assert names == ["alice", "bob"]
            dropped = client.drop_tenant("bob")
            assert dropped["dropped"] == "bob"
            assert dropped["tenants"] == ["alice"]

    def test_tenants_are_isolated(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            client.create_tenant("bob", "exact")
            client.ingest(BUTTERFLY, tenant="alice")
            assert (
                client.estimate(tenant="alice")["estimate"] == 1.0
            )
            bob = client.estimate(tenant="bob")
            assert bob["elements"] == 0
            assert bob["estimate"] == 0.0

    def test_tenant_stats_carry_lane_counters(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact", quota=3)
            client.ingest(BUTTERFLY, tenant="alice")
            stats = client.stats(tenant="alice")
            assert stats["tenant"] == "alice"
            assert stats["elements"] == 4
            assert stats["writes"] >= 1
            assert stats["max_pending_writes"] == 3
            assert stats["backpressure"] >= 0

    def test_untenanted_stats_reports_catalog_and_fairness(
        self, server
    ):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            client.ingest(BUTTERFLY, tenant="alice")
            stats = client.stats()
            assert "alice" in stats["catalog"]["tenants"]
            assert stats["tenants"]["alice"]["writes"] >= 1
            fairness = stats["fairness"]
            assert 0.0 < fairness["jain_index"] <= 1.0

    def test_tenant_checkpoint_and_snapshot(self, server, tmp_path):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "abacus:budget=32,seed=5")
            client.ingest(_batch(10), tenant="alice")
            assert client.checkpoint(tenant="alice") == 10
            snapshot = client.snapshot(tenant="alice")
            assert snapshot["state"]


class TestTenantWireErrors:
    def test_unknown_tenant_is_refused(self, server):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError, match="unknown tenant"):
                client.ingest(BUTTERFLY, tenant="ghost")
            with pytest.raises(ServeError, match="unknown tenant"):
                client.estimate(tenant="ghost")

    def test_catalog_only_server_refuses_untenanted_writes(
        self, server
    ):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError, match="name a tenant"):
                client.ingest(BUTTERFLY)
            with pytest.raises(ServeError):
                client.estimate()

    def test_tenant_and_stream_together_are_refused(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            with pytest.raises(ServeError):
                client.call(
                    "estimate", tenant="alice", stream="shared"
                )

    def test_duplicate_create_is_a_clean_error(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            with pytest.raises(ServeError, match="TenancyError"):
                client.create_tenant("alice", "exact")
            # The connection survives the refusal.
            assert client.ping()["pong"]


class TestByteCompatibility:
    """A server without a catalog is byte-for-byte the old protocol."""

    def test_no_catalog_stats_has_no_tenancy_keys(self):
        with serve_in_background(open_session("exact")) as background:
            with ServeClient(*background.address) as client:
                client.ingest(BUTTERFLY)
                stats = client.stats()
        for key in ("catalog", "tenants", "streams", "fairness"):
            assert key not in stats, key

    def test_no_catalog_server_refuses_tenant_ops(self):
        with serve_in_background(open_session("exact")) as background:
            with ServeClient(*background.address) as client:
                with pytest.raises(ServeError, match="catalog"):
                    client.create_tenant("alice", "exact")
                with pytest.raises(ServeError, match="catalog"):
                    client.ingest(BUTTERFLY, tenant="alice")

    def test_default_session_still_served_alongside_catalog(
        self, tmp_path
    ):
        session = open_session("exact")
        with catalog_server(tmp_path / "root", session) as background:
            with ServeClient(*background.address) as client:
                client.create_tenant("alice", "exact")
                client.ingest(BUTTERFLY)  # untenanted: default session
                assert client.estimate()["estimate"] == 1.0
                assert client.estimate(tenant="alice")["elements"] == 0


class TestStreamWireOps:
    def test_bind_ingest_estimate_drop(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("a", "abacus:budget=32,seed=1")
            client.create_tenant("b", "abacus:budget=32,seed=2")
            bound = client.bind_stream("shared", ["a", "b"])
            assert bound["stream"] == "shared"
            summary = client.ingest(_batch(12), stream="shared")
            assert summary["accepted"] == 12
            assert set(summary["estimates"]) == {"a", "b"}
            view = client.estimate(stream="shared")
            assert view["elements"] == 12
            # A bound member's tenant-scoped read works too.
            member = client.estimate(tenant="a")
            assert member["elements"] == 12
            dropped = client.drop_stream("shared")
            assert dropped["dropped"] == "shared"

    def test_stream_snapshot_is_refused(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("a", "abacus:budget=32,seed=1")
            client.create_tenant("b", "abacus:budget=32,seed=2")
            client.bind_stream("shared", ["a", "b"])
            with pytest.raises(ServeError, match="stream"):
                client.call("snapshot", stream="shared")

    def test_bound_tenant_write_is_refused(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("a", "abacus:budget=32,seed=1")
            client.create_tenant("b", "abacus:budget=32,seed=2")
            client.bind_stream("shared", ["a", "b"])
            with pytest.raises(ServeError):
                client.ingest(BUTTERFLY, tenant="a")


class TestFairShare:
    def test_round_robin_interleaves_lanes(self, tmp_path):
        """Queue bursts on two lanes while the writer is blocked;
        the drainer must alternate lanes, not drain one then the
        other."""
        with catalog_server(tmp_path / "root") as background:
            server = background.server
            with ServeClient(*background.address) as admin:
                admin.create_tenant("alice", "exact", quota=8)
                admin.create_tenant("bob", "exact", quota=8)
                # Prime both lanes (creates them) then block the one
                # writer thread so queued writes pile up.
                admin.ingest([insertion("w", "x")], tenant="alice")
                admin.ingest([insertion("w", "x")], tenant="bob")
                trace_start = len(server._fair_trace)
                gate = threading.Event()
                server._writer_pool.submit(gate.wait)
                try:
                    threads = []
                    for i in range(4):
                        for name in ("alice", "bob"):
                            def send(name=name, i=i):
                                with ServeClient(
                                    *background.address
                                ) as client:
                                    client.ingest(
                                        [insertion(f"a{i}", f"b{i}")],
                                        tenant=name,
                                    )
                            thread = threading.Thread(target=send)
                            thread.start()
                            threads.append(thread)
                    # Wait for all eight to be queued behind the gate.
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        lanes = server._lanes
                        queued = sum(
                            len(lane.queue) for lane in lanes.values()
                        )
                        if queued >= 8:
                            break
                        time.sleep(0.01)
                finally:
                    gate.set()
                for thread in threads:
                    thread.join(timeout=30)
            trace = server._fair_trace[trace_start:]
            alice = ("tenant", "alice")
            bob = ("tenant", "bob")
            picks = [key for key in trace if key in (alice, bob)]
            assert picks.count(alice) == 4
            assert picks.count(bob) == 4
            # Strict round-robin: among the dispatches that were
            # queued together, no lane is ever picked twice while the
            # other still has queued work — the longest same-lane run
            # is bounded by 2 (one in-flight straggler at the edges).
            longest, run = 1, 1
            for previous, current in zip(picks, picks[1:]):
                run = run + 1 if current == previous else 1
                longest = max(longest, run)
            assert longest <= 2, picks

    def test_quota_backpressure_is_counted(self, tmp_path):
        with catalog_server(tmp_path / "root") as background:
            server = background.server
            with ServeClient(*background.address) as admin:
                admin.create_tenant("alice", "exact", quota=1)
                admin.ingest([insertion("w", "x")], tenant="alice")
                gate = threading.Event()
                server._writer_pool.submit(gate.wait)
                try:
                    threads = []
                    for i in range(3):
                        def send(i=i):
                            with ServeClient(
                                *background.address
                            ) as client:
                                client.ingest(
                                    [insertion(f"a{i}", f"b{i}")],
                                    tenant="alice",
                                )
                        thread = threading.Thread(target=send)
                        thread.start()
                        threads.append(thread)
                    deadline = time.monotonic() + 10.0
                    lane = None
                    while time.monotonic() < deadline:
                        lane = server._lanes.get(("tenant", "alice"))
                        if lane is not None and lane.backpressure >= 2:
                            break
                        time.sleep(0.01)
                finally:
                    gate.set()
                for thread in threads:
                    thread.join(timeout=30)
                stats = admin.stats(tenant="alice")
            assert stats["backpressure"] >= 2
            assert stats["writes"] == 4


class TestScopedConsistency:
    def test_read_your_writes_per_tenant(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            summary = client.ingest(BUTTERFLY, tenant="alice")
            view = client.estimate(
                tenant="alice",
                read_mode="read_your_writes",
                min_offset=summary["elements"],
            )
            assert view["elements"] >= summary["elements"]

    def test_stale_read_is_refused(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            client.ingest(BUTTERFLY, tenant="alice")
            with pytest.raises(ServeError, match="StaleReadError"):
                client.estimate(
                    tenant="alice",
                    read_mode="read_your_writes",
                    min_offset=10_000,
                )

    def test_dropped_tenant_reads_cleanly_refused(self, server):
        with ServeClient(*server.address) as client:
            client.create_tenant("alice", "exact")
            client.ingest(BUTTERFLY, tenant="alice")
            client.drop_tenant("alice")
            with pytest.raises(ServeError):
                client.estimate(tenant="alice")
            assert client.ping()["pong"]


class TestDurabilityAcrossRestart:
    def test_tenants_recover_after_server_restart(self, tmp_path):
        root = tmp_path / "root"
        with catalog_server(root) as background:
            with ServeClient(*background.address) as client:
                client.create_tenant(
                    "alice", "abacus:budget=32,seed=5"
                )
                client.create_tenant("bob", "exact")
                client.ingest(_batch(10), tenant="alice")
                expected = client.estimate(tenant="alice")["estimate"]
        with catalog_server(root) as background:
            with ServeClient(*background.address) as client:
                listing = client.list_tenants()
                names = [t["name"] for t in listing["tenants"]]
                assert names == ["alice", "bob"]
                view = client.estimate(tenant="alice")
                assert view["elements"] == 10
                assert view["estimate"] == expected
