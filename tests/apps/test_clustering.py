"""Unit tests for the streaming clustering coefficient."""

import pytest

from repro.apps.clustering import StreamingClusteringCoefficient
from repro.core.exact import ExactStreamingCounter
from repro.errors import StreamError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.wedges import count_wedges
from repro.types import Side, deletion, insertion


def _feed(cc, elements):
    value = 0.0
    for el in elements:
        value = cc.process(el)
    return value


class TestWedgeMaintenance:
    def test_wedges_match_static_count(self, dynamic_stream):
        cc = StreamingClusteringCoefficient(ExactStreamingCounter())
        graph = BipartiteGraph()
        for element in dynamic_stream.prefix(800):
            cc.process(element)
            if element.is_insertion:
                graph.add_edge(element.u, element.v)
            else:
                graph.remove_edge(element.u, element.v)
        expected = count_wedges(graph, Side.LEFT) + count_wedges(
            graph, Side.RIGHT
        )
        assert cc.wedges == expected

    def test_empty_graph_after_deletions(self):
        cc = StreamingClusteringCoefficient(ExactStreamingCounter())
        _feed(cc, [insertion(1, 10), deletion(1, 10)])
        assert cc.wedges == 0
        assert cc.coefficient == 0.0

    def test_delete_unknown_edge_raises(self):
        # The wrapped exact estimator rejects the bogus deletion first;
        # with a sampling estimator the wedge bookkeeping would raise
        # StreamError.  Either way, a typed library error surfaces.
        from repro.errors import ReproError

        cc = StreamingClusteringCoefficient(ExactStreamingCounter())
        with pytest.raises(ReproError):
            cc.process(deletion(1, 10))

    def test_delete_unknown_edge_raises_with_sampling_estimator(self):
        from repro.core.abacus import Abacus

        cc = StreamingClusteringCoefficient(Abacus(10, seed=0))
        cc.process(insertion(1, 10))
        with pytest.raises(StreamError):
            cc.process(deletion(2, 11))


class TestCoefficient:
    def test_single_butterfly_value(self):
        cc = StreamingClusteringCoefficient(ExactStreamingCounter())
        value = _feed(
            cc,
            [
                insertion(1, 10),
                insertion(1, 11),
                insertion(2, 10),
                insertion(2, 11),
            ],
        )
        # K_{2,2}: B = 1, W = 4 -> coefficient = 4*1/4 = 1.
        assert value == pytest.approx(1.0)

    def test_wedge_without_butterfly_is_zero(self):
        cc = StreamingClusteringCoefficient(ExactStreamingCounter())
        value = _feed(cc, [insertion(1, 10), insertion(2, 10)])
        assert value == 0.0
        assert cc.wedges == 1

    def test_negative_estimates_clamped(self):
        class NegativeEstimator(ExactStreamingCounter):
            @property
            def estimate(self):
                return -5.0

        cc = StreamingClusteringCoefficient(NegativeEstimator())
        _feed(cc, [insertion(1, 10), insertion(2, 10)])
        assert cc.coefficient == 0.0

    def test_trajectory_sampling(self, insert_only_stream):
        cc = StreamingClusteringCoefficient(ExactStreamingCounter())
        points = cc.trajectory(insert_only_stream.prefix(600), every=200)
        assert [n for n, _ in points] == [200, 400, 600]
        assert all(v >= 0.0 for _, v in points)
