"""Unit tests for butterfly-burst anomaly detection."""

import random

import pytest

from repro.apps.anomaly import Alert, ButterflyBurstDetector, precision_recall
from repro.core.exact import ExactStreamingCounter
from repro.core.abacus import Abacus
from repro.errors import ExperimentError
from repro.graph.generators import bipartite_erdos_renyi
from repro.types import insertion


def _burst_stream(n_windows=30, window=200, burst_window=20, seed=1):
    """Sparse background with one dense biclique inside one window."""
    rng = random.Random(seed)
    background = bipartite_erdos_renyi(
        4000, 4000, n_windows * window, rng
    )
    elements = [insertion(u, v) for u, v in background]
    # Build a 6x6 biclique from fresh vertices inside the burst window.
    lefts = [9_000_000 + i for i in range(6)]
    rights = [9_500_000 + i for i in range(6)]
    clique = [insertion(u, v) for u in lefts for v in rights]
    offset = burst_window * window + window // 4
    elements[offset:offset] = clique
    return elements, burst_window


class TestDetector:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            ButterflyBurstDetector(ExactStreamingCounter(), window=0)
        with pytest.raises(ExperimentError):
            ButterflyBurstDetector(
                ExactStreamingCounter(), history=2, min_history=5
            )

    def test_no_alerts_on_flat_background(self):
        rng = random.Random(2)
        edges = bipartite_erdos_renyi(5000, 5000, 6000, rng)
        detector = ButterflyBurstDetector(
            ExactStreamingCounter(), window=200, z_threshold=6.0
        )
        alerts = detector.process_stream(
            insertion(u, v) for u, v in edges
        )
        assert alerts == []

    def test_detects_planted_burst_with_exact_counts(self):
        elements, burst_window = _burst_stream()
        detector = ButterflyBurstDetector(
            ExactStreamingCounter(), window=200, z_threshold=4.0
        )
        alerts = detector.process_stream(elements)
        assert alerts, "the planted 6x6 biclique burst was missed"
        assert any(
            abs(a.window_index - burst_window) <= 1 for a in alerts
        )

    def test_detects_burst_with_abacus_estimates(self):
        elements, burst_window = _burst_stream(seed=3)
        detector = ButterflyBurstDetector(
            Abacus(3000, seed=5), window=200, z_threshold=4.0
        )
        alerts = detector.process_stream(elements)
        assert any(
            abs(a.window_index - burst_window) <= 1 for a in alerts
        )

    def test_alert_fields(self):
        elements, _ = _burst_stream(seed=4)
        detector = ButterflyBurstDetector(
            ExactStreamingCounter(), window=200, z_threshold=4.0
        )
        alerts = detector.process_stream(elements)
        alert = alerts[0]
        assert isinstance(alert, Alert)
        assert alert.delta > 0
        assert alert.score > 4.0
        assert alert.element_index > 0


class TestTwoSided:
    def test_mass_deletion_alerts_only_when_two_sided(self):
        """A takedown (pure deletion burst) triggers a two-sided
        detector on exact counts, and never a one-sided one."""
        from repro.types import deletion

        background = [
            insertion(i, 1_000_000 + i) for i in range(12 * 200)
        ]
        clique = [
            (u, 2_000_000 + v) for u in range(8) for v in range(8)
        ]
        elements = list(background)
        # Both events land after the detector's 5-window warm-up so the
        # registration alert is excluded from the baseline.
        elements[1400:1400] = [insertion(u, v) for u, v in clique]
        elements[2100:2100] = [deletion(u, v) for u, v in clique]

        two_sided = ButterflyBurstDetector(
            ExactStreamingCounter(),
            window=200,
            z_threshold=4.0,
            two_sided=True,
        )
        alerts = two_sided.process_stream(elements)
        assert any(a.delta < 0 for a in alerts), "takedown missed"

        one_sided = ButterflyBurstDetector(
            ExactStreamingCounter(),
            window=200,
            z_threshold=4.0,
            two_sided=False,
        )
        alerts = one_sided.process_stream(elements)
        assert all(a.delta > 0 for a in alerts)


class TestPrecisionRecall:
    def test_perfect(self):
        alerts = [Alert(5, 1000, 10.0, 6.0)]
        p, r = precision_recall(alerts, [5])
        assert (p, r) == (1.0, 1.0)

    def test_tolerance(self):
        alerts = [Alert(6, 1200, 10.0, 6.0)]
        p, r = precision_recall(alerts, [5], tolerance=1)
        assert (p, r) == (1.0, 1.0)
        p, r = precision_recall(alerts, [5], tolerance=0)
        assert (p, r) == (0.0, 0.0)

    def test_false_positive_hurts_precision(self):
        alerts = [Alert(5, 0, 1.0, 5.0), Alert(20, 0, 1.0, 5.0)]
        p, r = precision_recall(alerts, [5])
        assert p == pytest.approx(0.5)
        assert r == 1.0

    def test_missed_burst_hurts_recall(self):
        p, r = precision_recall([], [5, 9])
        assert p == 1.0
        assert r == 0.0

    def test_one_alert_matches_one_truth_only(self):
        alerts = [Alert(5, 0, 1.0, 5.0), Alert(5, 0, 1.0, 5.0)]
        p, r = precision_recall(alerts, [5])
        assert p == pytest.approx(0.5)
        assert r == 1.0
