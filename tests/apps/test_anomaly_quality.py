"""Tests for the anomaly-quality evaluation harness — including the
paper's motivating claim that ignoring deletions degrades detection."""

import random

import pytest

from repro.apps.anomaly_quality import (
    DetectionQuality,
    compare_estimators,
    evaluate_detector,
    planted_anomaly_stream,
)
from repro.baselines.fleet import Fleet
from repro.core.abacus import Abacus
from repro.core.exact import ExactStreamingCounter
from repro.errors import ExperimentError
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import validate_stream


def _background(seed=0, n_edges=6000):
    rng = random.Random(seed)
    # Sparse background: bombs must stand out against organic
    # butterfly formation, so keep average degree ~2.
    return bipartite_chung_lu(3000, 3000, n_edges, rng=rng)


class TestDetectionQuality:
    def test_f1(self):
        quality = DetectionQuality(
            precision=0.5, recall=1.0, num_alerts=4, num_planted=2
        )
        assert quality.f1 == pytest.approx(2 / 3)

    def test_f1_zero_when_both_zero(self):
        quality = DetectionQuality(
            precision=0.0, recall=0.0, num_alerts=0, num_planted=2
        )
        assert quality.f1 == 0.0


class TestPlantedAnomalyStream:
    def test_structure_and_validity(self):
        stream, truths = planted_anomaly_stream(
            _background(1),
            bomb_windows=[4, 8],
            window=500,
            bomb_size=(4, 4),
            alpha=0.2,
            rng=random.Random(2),
        )
        assert truths == [4, 8]
        validate_stream(stream)
        # 2 bombs x 16 edges each on top of the dynamic background.
        assert stream.num_insertions >= 6000 + 32

    def test_bomb_lands_at_window_start(self):
        stream, _ = planted_anomaly_stream(
            _background(3, n_edges=3000),
            bomb_windows=[2],
            window=500,
            bomb_size=(3, 3),
            alpha=0.0,
            rng=random.Random(4),
        )
        burst = [e for e in stream[1000:1009]]
        assert all(str(e.u).startswith("bomb") for e in burst)

    def test_rejects_tiny_bomb(self):
        with pytest.raises(ExperimentError):
            planted_anomaly_stream(
                _background(5, n_edges=100),
                bomb_windows=[0],
                bomb_size=(1, 4),
            )

    def test_rejects_window_beyond_stream(self):
        with pytest.raises(ExperimentError):
            planted_anomaly_stream(
                _background(6, n_edges=100),
                bomb_windows=[1000],
                window=500,
                alpha=0.0,
            )


class TestEvaluateDetector:
    def test_exact_oracle_detects_planted_bombs(self):
        stream, truths = planted_anomaly_stream(
            _background(7),
            bomb_windows=[6, 10],
            window=500,
            bomb_size=(12, 12),
            alpha=0.2,
            rng=random.Random(8),
        )
        quality = evaluate_detector(
            stream, truths, ExactStreamingCounter(), window=500
        )
        assert quality.recall == 1.0
        assert quality.precision >= 0.5
        assert quality.num_planted == 2

    def test_abacus_detects_with_modest_budget(self):
        stream, truths = planted_anomaly_stream(
            _background(9),
            bomb_windows=[6, 10],
            window=500,
            bomb_size=(12, 12),
            alpha=0.2,
            rng=random.Random(10),
        )
        quality = evaluate_detector(
            stream, truths, Abacus(budget=1500, seed=11), window=500
        )
        assert quality.recall >= 0.5

    def test_custom_detector_factory(self):
        from repro.apps.anomaly import ButterflyBurstDetector

        stream, truths = planted_anomaly_stream(
            _background(12, n_edges=2000),
            bomb_windows=[3],
            window=400,
            bomb_size=(6, 6),
            alpha=0.0,
        )
        quality = evaluate_detector(
            stream,
            truths,
            ExactStreamingCounter(),
            detector_factory=lambda est: ButterflyBurstDetector(
                est, window=400, z_threshold=2.0
            ),
        )
        assert quality.num_planted == 1

    def test_compare_estimators_runs_all(self):
        stream, truths = planted_anomaly_stream(
            _background(13, n_edges=2000),
            bomb_windows=[3],
            window=400,
            bomb_size=(6, 6),
            alpha=0.2,
            rng=random.Random(14),
        )
        results = compare_estimators(
            stream,
            truths,
            {
                "exact": ExactStreamingCounter,
                "abacus": lambda: Abacus(budget=800, seed=15),
            },
            window=400,
        )
        assert set(results) == {"exact", "abacus"}
        assert all(
            isinstance(q, DetectionQuality) for q in results.values()
        )


class TestMotivatingClaim:
    def test_deletion_awareness_does_not_hurt_detection(self):
        """The paper's Section I claim, as a regression test: on a fully
        dynamic stream, the deletion-aware estimator's detection quality
        must be at least that of the insert-only baseline with the same
        budget."""
        stream, truths = planted_anomaly_stream(
            _background(16, n_edges=8000),
            bomb_windows=[5, 9, 13],
            window=500,
            bomb_size=(12, 12),
            alpha=0.3,
            rng=random.Random(17),
        )
        budget = 2000
        abacus_quality = evaluate_detector(
            stream, truths, Abacus(budget=budget, seed=18), window=500
        )
        fleet_quality = evaluate_detector(
            stream, truths, Fleet(budget=budget, seed=18), window=500
        )
        assert abacus_quality.f1 >= fleet_quality.f1
        assert abacus_quality.recall >= 0.5
