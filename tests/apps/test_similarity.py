"""Unit tests for bipartite similarity utilities."""

import random

import pytest

from repro.apps.similarity import (
    SampleSimilarity,
    butterfly_affinity,
    common_neighbors,
    cosine_similarity,
    jaccard_similarity,
    similarity_matrix,
    top_k_similar,
)
from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.sampling.adjacency_sample import GraphSample


@pytest.fixture
def ratings() -> BipartiteGraph:
    """Users u1/u2 agree on two items; u3 overlaps u1 on one."""
    g = BipartiteGraph()
    g.add_edge("u1", "matrix")
    g.add_edge("u1", "inception")
    g.add_edge("u1", "alien")
    g.add_edge("u2", "matrix")
    g.add_edge("u2", "inception")
    g.add_edge("u3", "alien")
    g.add_edge("u3", "casablanca")
    return g


class TestPairwiseMetrics:
    def test_common_neighbors(self, ratings):
        assert common_neighbors(ratings, "u1", "u2") == 2
        assert common_neighbors(ratings, "u1", "u3") == 1
        assert common_neighbors(ratings, "u2", "u3") == 0

    def test_jaccard(self, ratings):
        assert jaccard_similarity(ratings, "u1", "u2") == pytest.approx(
            2 / 3
        )
        assert jaccard_similarity(ratings, "u2", "u3") == 0.0

    def test_jaccard_isolated_pair(self, ratings):
        assert jaccard_similarity(ratings, "ghost1", "ghost2") == 0.0

    def test_cosine(self, ratings):
        assert cosine_similarity(ratings, "u1", "u2") == pytest.approx(
            2 / (3 * 2) ** 0.5
        )
        assert cosine_similarity(ratings, "u1", "ghost") == 0.0

    def test_butterfly_affinity(self, ratings):
        assert butterfly_affinity(ratings, "u1", "u2") == 1
        assert butterfly_affinity(ratings, "u1", "u3") == 0

    def test_affinity_matches_global_count(self, ratings):
        from repro.graph.butterflies import count_butterflies

        users = ["u1", "u2", "u3"]
        total = sum(
            butterfly_affinity(ratings, a, b)
            for i, a in enumerate(users)
            for b in users[i + 1:]
        )
        assert total == count_butterflies(ratings)

    def test_right_side_queries_work(self, ratings):
        assert common_neighbors(ratings, "matrix", "inception") == 2
        assert butterfly_affinity(ratings, "matrix", "inception") == 1


class TestTopK:
    def test_ranking(self, ratings):
        result = top_k_similar(ratings, "u1", k=5, metric="jaccard")
        assert result[0][0] == "u2"
        assert [v for v, _ in result] == ["u2", "u3"]

    def test_zero_scores_omitted(self, ratings):
        result = top_k_similar(ratings, "u2", k=5)
        assert all(v != "u3" for v, _ in result)

    def test_k_truncates(self, ratings):
        assert len(top_k_similar(ratings, "u1", k=1)) == 1

    def test_absent_vertex_empty(self, ratings):
        assert top_k_similar(ratings, "nobody") == []

    def test_unknown_metric_raises(self, ratings):
        with pytest.raises(GraphError):
            top_k_similar(ratings, "u1", metric="euclidean")

    @pytest.mark.parametrize(
        "metric", ["jaccard", "cosine", "common", "butterfly"]
    )
    def test_all_metrics_run(self, ratings, metric):
        result = top_k_similar(ratings, "u1", metric=metric)
        assert isinstance(result, list)


class TestSimilarityMatrix:
    def test_upper_triangle_only(self, ratings):
        matrix = similarity_matrix(ratings, ["u1", "u2", "u3"])
        assert set(matrix) == {("u1", "u2"), ("u1", "u3"), ("u2", "u3")}

    def test_values_match_pairwise(self, ratings):
        matrix = similarity_matrix(
            ratings, ["u1", "u2"], metric="cosine"
        )
        assert matrix[("u1", "u2")] == pytest.approx(
            cosine_similarity(ratings, "u1", "u2")
        )

    def test_unknown_metric_raises(self, ratings):
        with pytest.raises(GraphError):
            similarity_matrix(ratings, ["u1"], metric="nope")


class TestSampleSimilarity:
    def _full_sample(self, graph: BipartiteGraph) -> GraphSample:
        sample = GraphSample()
        for u, v in graph.edges():
            sample.add_edge(u, v)
        return sample

    def test_full_sample_matches_exact(self, ratings):
        sim = SampleSimilarity(self._full_sample(ratings))
        assert sim.common_neighbors("u1", "u2") == 2
        assert sim.jaccard("u1", "u2") == pytest.approx(2 / 3)

    def test_scaled_common_neighbors_debiases(self, ratings):
        sim = SampleSimilarity(
            self._full_sample(ratings), inclusion_probability=1.0
        )
        assert sim.scaled_common_neighbors("u1", "u2") == pytest.approx(
            2.0
        )

    def test_scaled_requires_rate(self, ratings):
        sim = SampleSimilarity(self._full_sample(ratings))
        with pytest.raises(GraphError):
            sim.scaled_common_neighbors("u1", "u2")

    def test_rejects_bad_rate(self, ratings):
        with pytest.raises(GraphError):
            SampleSimilarity(
                self._full_sample(ratings), inclusion_probability=1.5
            )

    def test_top_k_on_sample(self, ratings):
        sim = SampleSimilarity(self._full_sample(ratings))
        result = sim.top_k_similar("u1", k=3)
        assert result[0][0] == "u2"

    def test_scaled_overlap_statistically_unbiased(self):
        """Downsampled overlap, rescaled by rate^2, averages to truth."""
        g = BipartiteGraph()
        items = [f"i{j}" for j in range(30)]
        for item in items:
            g.add_edge("a", item)
            g.add_edge("b", item)
        truth = common_neighbors(g, "a", "b")
        rate = 0.5
        rng = random.Random(7)
        estimates = []
        for _ in range(400):
            sample = GraphSample()
            for u, v in g.edges():
                if rng.random() < rate:
                    sample.add_edge(u, v)
            sim = SampleSimilarity(sample, inclusion_probability=rate)
            estimates.append(sim.scaled_common_neighbors("a", "b"))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(truth, rel=0.1)
