"""The documented public API surface stays importable and coherent."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_estimators_share_interface(self):
        from repro import ButterflyEstimator

        for cls in (
            repro.Abacus,
            repro.AbacusSupport,
            repro.EnsembleEstimator,
            repro.Parabacus,
            repro.Fleet,
            repro.CoAffiliationSampling,
            repro.ExactStreamingCounter,
        ):
            assert issubclass(cls, ButterflyEstimator)

    def test_subpackage_alls_resolve(self):
        import repro.apps as apps
        import repro.baselines as baselines
        import repro.core as core
        import repro.graph as graph
        import repro.metrics as metrics
        import repro.sampling as sampling
        import repro.serve as serve
        import repro.sketch as sketch
        import repro.store as store
        import repro.streams as streams

        for module in (
            core,
            graph,
            streams,
            sampling,
            sketch,
            baselines,
            apps,
            metrics,
            store,
            serve,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_estimator_names_unique(self):
        names = {
            repro.Abacus.name,
            repro.Parabacus.name,
            repro.Fleet.name,
            repro.CoAffiliationSampling.name,
            repro.ExactStreamingCounter.name,
        }
        assert len(names) == 5
