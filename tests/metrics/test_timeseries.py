"""Unit tests for error-trajectory tracking."""

import math
import random

import pytest

from repro.core.abacus import Abacus
from repro.core.exact import ExactStreamingCounter
from repro.errors import ExperimentError
from repro.graph.generators import bipartite_erdos_renyi
from repro.metrics.timeseries import (
    TrajectoryPoint,
    TrajectoryTracker,
    track_against_oracle,
)
from repro.streams.dynamic import make_fully_dynamic


class TestTrajectoryPoint:
    def test_error_and_deviation(self):
        point = TrajectoryPoint(10, truth=100.0, estimate=90.0)
        assert point.error == pytest.approx(0.1)
        assert point.signed_deviation == pytest.approx(-10.0)

    def test_zero_truth_zero_estimate(self):
        point = TrajectoryPoint(1, truth=0.0, estimate=0.0)
        assert point.error == 0.0

    def test_zero_truth_nonzero_estimate(self):
        point = TrajectoryPoint(1, truth=0.0, estimate=5.0)
        assert math.isinf(point.error)


class TestTrajectoryTracker:
    def _populated(self):
        tracker = TrajectoryTracker()
        tracker.record(10, truth=0.0, estimate=0.0)
        tracker.record(20, truth=100.0, estimate=110.0)
        tracker.record(30, truth=200.0, estimate=160.0)
        return tracker

    def test_record_and_len(self):
        tracker = self._populated()
        assert len(tracker) == 3
        assert [p.elements_processed for p in tracker] == [10, 20, 30]

    def test_out_of_order_rejected(self):
        tracker = self._populated()
        with pytest.raises(ExperimentError):
            tracker.record(25, truth=1.0, estimate=1.0)

    def test_errors_skip_zero_truth(self):
        tracker = self._populated()
        assert tracker.errors() == pytest.approx([0.1, 0.2])

    def test_mean_and_max_error(self):
        tracker = self._populated()
        assert tracker.mean_relative_error() == pytest.approx(0.15)
        assert tracker.max_relative_error() == pytest.approx(0.2)

    def test_no_truth_checkpoints_give_nan(self):
        tracker = TrajectoryTracker()
        tracker.record(1, truth=0.0, estimate=0.0)
        assert math.isnan(tracker.mean_relative_error())
        assert math.isnan(tracker.max_relative_error())

    def test_final_error(self):
        tracker = self._populated()
        assert tracker.final_relative_error() == pytest.approx(0.2)

    def test_final_error_requires_points(self):
        with pytest.raises(ExperimentError):
            TrajectoryTracker().final_relative_error()

    def test_mean_signed_deviation(self):
        tracker = self._populated()
        assert tracker.mean_signed_deviation() == pytest.approx(
            (0.0 + 10.0 - 40.0) / 3
        )

    def test_series_unpacks_columns(self):
        tracker = self._populated()
        xs, truths, estimates = tracker.series()
        assert xs == [10, 20, 30]
        assert truths == [0.0, 100.0, 200.0]
        assert estimates == [0.0, 110.0, 160.0]

    def test_worst_window(self):
        tracker = TrajectoryTracker()
        errors = [0.1, 0.1, 0.5, 0.6, 0.1]
        for i, err in enumerate(errors):
            truth = 100.0
            tracker.record(
                (i + 1) * 10, truth=truth, estimate=truth * (1 + err)
            )
        start, end, mean_error = tracker.worst_window(width=2)
        assert (start, end) == (30, 40)
        assert mean_error == pytest.approx(0.55)

    def test_worst_window_insufficient_points(self):
        tracker = self._populated()
        assert tracker.worst_window(width=10) is None


class TestTrackAgainstOracle:
    def _stream(self):
        edges = bipartite_erdos_renyi(20, 20, 150, random.Random(0))
        return make_fully_dynamic(edges, 0.2, random.Random(1))

    def test_every_mode_records_expected_checkpoints(self):
        stream = self._stream()
        tracker = track_against_oracle(
            stream,
            Abacus(budget=10_000, seed=2),
            ExactStreamingCounter(),
            every=50,
        )
        assert len(tracker) == len(stream) // 50
        assert all(
            p.elements_processed % 50 == 0 for p in tracker
        )

    def test_exact_budget_gives_zero_error(self):
        stream = self._stream()
        tracker = track_against_oracle(
            stream,
            Abacus(budget=10_000, seed=3),
            ExactStreamingCounter(),
            every=30,
        )
        errors = tracker.errors()
        assert errors  # the stream does build butterflies
        assert max(errors) == pytest.approx(0.0, abs=1e-9)

    def test_explicit_checkpoints(self):
        stream = self._stream()
        marks = [10, 40, 90]
        tracker = track_against_oracle(
            stream,
            Abacus(budget=100, seed=4),
            ExactStreamingCounter(),
            checkpoints=marks,
        )
        assert [p.elements_processed for p in tracker] == marks

    def test_requires_exactly_one_mode(self):
        stream = self._stream()
        with pytest.raises(ExperimentError):
            track_against_oracle(
                stream, Abacus(budget=10, seed=5),
                ExactStreamingCounter(),
            )
        with pytest.raises(ExperimentError):
            track_against_oracle(
                stream, Abacus(budget=10, seed=6),
                ExactStreamingCounter(), checkpoints=[1], every=1,
            )
