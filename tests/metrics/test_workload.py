"""Unit tests for workload-balance statistics."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.workload import workload_balance


class TestWorkloadBalance:
    def test_perfect_balance(self):
        balance = workload_balance([100, 100, 100, 100])
        assert balance.imbalance == pytest.approx(1.0)
        assert balance.coefficient_of_variation == pytest.approx(0.0)
        assert balance.total == 400
        assert balance.mean == 100.0

    def test_skewed(self):
        balance = workload_balance([300, 100, 100, 100])
        assert balance.imbalance == pytest.approx(300 / 150)
        assert balance.maximum == 300
        assert balance.minimum == 100
        assert balance.coefficient_of_variation > 0.0

    def test_all_zero(self):
        balance = workload_balance([0, 0, 0])
        assert balance.imbalance == 1.0
        assert balance.coefficient_of_variation == 0.0

    def test_single_thread(self):
        balance = workload_balance([42])
        assert balance.imbalance == 1.0
        assert balance.total == 42

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            workload_balance([])

    def test_str_summary(self):
        assert "imbalance" in str(workload_balance([10, 10]))
