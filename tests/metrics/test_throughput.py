"""Unit tests for throughput helpers."""

import time

import pytest

from repro.errors import ExperimentError
from repro.metrics.throughput import Stopwatch, throughput_eps


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        total = watch.stop()
        assert total >= 0.01
        assert watch.elapsed == total

    def test_pause_resume(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        time.sleep(0.005)
        second = watch.stop()
        assert second > first

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(ExperimentError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(ExperimentError):
            Stopwatch().stop()

    def test_running_property_and_live_elapsed(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        assert watch.elapsed >= 0.0
        watch.stop()
        assert not watch.running

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.002)
        assert watch.elapsed >= 0.002


class TestThroughput:
    def test_basic(self):
        assert throughput_eps(1000, 2.0) == 500.0

    def test_zero_duration_raises(self):
        with pytest.raises(ExperimentError):
            throughput_eps(10, 0.0)

    def test_negative_elements_raises(self):
        with pytest.raises(ExperimentError):
            throughput_eps(-1, 1.0)
