"""Unit tests for accuracy metrics."""

import pytest

from repro.errors import ExperimentError
from repro.metrics.accuracy import (
    mean,
    percentile,
    relative_error,
    summarize_errors,
)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(100, 90) == pytest.approx(0.1)
        assert relative_error(100, 110) == pytest.approx(0.1)
        assert relative_error(100, 100) == 0.0

    def test_non_positive_truth_raises(self):
        with pytest.raises(ExperimentError):
            relative_error(0, 5)
        with pytest.raises(ExperimentError):
            relative_error(-3, 5)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            mean([])


class TestPercentile:
    def test_median(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 90) == 7.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            percentile([], 50)
        with pytest.raises(ExperimentError):
            percentile([1.0], 150)


class TestSummarize:
    def test_fields(self):
        summary = summarize_errors([0.1, 0.2, 0.3])
        assert summary.mean == pytest.approx(0.2)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.3)
        assert summary.trials == 3
        assert summary.stdev == pytest.approx(0.1)

    def test_single_trial_zero_stdev(self):
        summary = summarize_errors([0.05])
        assert summary.stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            summarize_errors([])

    def test_str_contains_percentages(self):
        assert "%" in str(summarize_errors([0.1]))
