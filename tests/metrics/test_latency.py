"""Unit tests for the latency recorder."""

import pytest

from repro.core.exact import ExactStreamingCounter
from repro.errors import ExperimentError
from repro.metrics.latency import LatencyRecorder
from repro.types import insertion


class _InstantEstimator(ExactStreamingCounter):
    """Exact counter; used purely as a cheap processable target."""


class TestRecorder:
    def test_boundary_validation(self):
        with pytest.raises(ExperimentError):
            LatencyRecorder(_InstantEstimator(), boundaries=[])
        with pytest.raises(ExperimentError):
            LatencyRecorder(_InstantEstimator(), boundaries=[2.0, 1.0])

    def test_counts_elements(self):
        recorder = LatencyRecorder(_InstantEstimator())
        for i in range(10):
            recorder.process(insertion(i, 1000 + i))
        assert recorder.count == 10
        assert recorder.total_seconds > 0.0
        assert recorder.max_seconds >= recorder.mean_seconds

    def test_delegates_estimate(self):
        recorder = LatencyRecorder(_InstantEstimator())
        stream = [
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ]
        estimate = recorder.process_stream(stream)
        assert estimate == 1.0

    def test_percentiles_monotone(self):
        recorder = LatencyRecorder(_InstantEstimator())
        for i in range(200):
            recorder.process(insertion(i, 1000 + i % 17))
        p50 = recorder.percentile(50)
        p90 = recorder.percentile(90)
        p99 = recorder.percentile(99)
        assert 0 < p50 <= p90 <= p99
        assert p99 <= recorder.max_seconds or p99 <= recorder.percentile(100)

    def test_percentile_validation(self):
        recorder = LatencyRecorder(_InstantEstimator())
        with pytest.raises(ExperimentError):
            recorder.percentile(50)  # nothing recorded
        recorder.process(insertion(1, 2))
        with pytest.raises(ExperimentError):
            recorder.percentile(150)

    def test_summary_keys_and_units(self):
        recorder = LatencyRecorder(_InstantEstimator())
        for i in range(50):
            recorder.process(insertion(i, 1000 + i))
        summary = recorder.summary()
        assert summary["count"] == 50
        assert summary["p50_us"] <= summary["p99_us"]
        assert summary["mean_us"] > 0

    def test_known_latencies_bucketed(self):
        recorder = LatencyRecorder(
            _InstantEstimator(), boundaries=[0.5, 1.0, 2.0]
        )
        # Inject synthetic latencies directly.
        for value in (0.1, 0.6, 0.7, 1.5, 3.0):
            recorder._record(value)
        assert recorder.count == 5
        assert recorder.percentile(10) == 0.5   # 0.1 -> first bucket
        assert recorder.percentile(60) == 1.0   # 0.6, 0.7 -> second
        assert recorder.percentile(100) == pytest.approx(3.0)  # overflow
