"""Jain's fairness index over per-tenant write counts."""

import pytest

from repro.metrics import FairShareSummary, fair_share


class TestFairShare:
    def test_perfect_fairness_is_one(self):
        summary = fair_share({"a": 10, "b": 10, "c": 10})
        assert summary.jain_index == pytest.approx(1.0)
        assert summary.min_share == pytest.approx(1 / 3)
        assert summary.max_share == pytest.approx(1 / 3)
        assert summary.tenants == 3

    def test_total_starvation_is_one_over_n(self):
        summary = fair_share({"a": 30, "b": 0, "c": 0})
        assert summary.jain_index == pytest.approx(1 / 3)
        assert summary.min_share == 0.0
        assert summary.max_share == pytest.approx(1.0)

    def test_known_intermediate_value(self):
        # Jain: (sum x)^2 / (n * sum x^2) = 9^2 / (3 * 29)
        summary = fair_share({"a": 4, "b": 3, "c": 2})
        assert summary.jain_index == pytest.approx(81 / 87)

    def test_empty_and_all_zero_are_vacuously_fair(self):
        assert fair_share({}).jain_index == 1.0
        assert fair_share({"a": 0, "b": 0}).jain_index == 1.0

    def test_index_is_scale_invariant(self):
        small = fair_share({"a": 1, "b": 2, "c": 3})
        large = fair_share({"a": 100, "b": 200, "c": 300})
        assert small.jain_index == pytest.approx(large.jain_index)

    def test_as_dict_round_trips_the_summary(self):
        summary = fair_share({"a": 4, "b": 2})
        payload = summary.as_dict()
        assert payload["tenants"] == 2
        assert payload["writes"] == 6
        assert payload["jain_index"] == summary.jain_index
        assert isinstance(summary, FairShareSummary)

    def test_negative_writes_clamp_to_zero(self):
        summary = fair_share({"a": -5, "b": 10})
        assert summary.writes == 10
        assert summary.min_share == 0.0
