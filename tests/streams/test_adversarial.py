"""Unit tests for adversarial workload generators."""

import random

import pytest

from repro.core.exact import ExactStreamingCounter
from repro.errors import StreamError
from repro.streams.adversarial import (
    butterfly_bomb,
    churn_stream,
    deletion_storm,
    hub_stream,
)
from repro.streams.dynamic import validate_stream
from repro.types import Op


class TestDeletionStorm:
    def test_structure(self):
        edges = [(i, 100 + i % 4) for i in range(20)]
        stream = deletion_storm(
            edges, storm_fraction=0.5, rng=random.Random(0)
        )
        assert stream.num_insertions == 20
        assert stream.num_deletions == 10
        # All deletions are at the tail.
        ops = [e.op for e in stream]
        first_delete = ops.index(Op.DELETE)
        assert all(op is Op.DELETE for op in ops[first_delete:])

    def test_contract_valid(self):
        stream = deletion_storm(
            [(i, i % 7) for i in range(50)],
            storm_fraction=0.8,
            rng=random.Random(1),
        )
        validate_stream(stream)

    def test_full_storm_empties_graph(self):
        stream = deletion_storm(
            [(i, 0) for i in range(10)],
            storm_fraction=1.0,
            rng=random.Random(2),
        )
        _, final_edges = validate_stream(stream)
        assert final_edges == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(StreamError):
            deletion_storm([(1, 2)], storm_fraction=1.5)

    def test_rejects_duplicate_edges(self):
        with pytest.raises(StreamError):
            deletion_storm([(1, 2), (1, 2)])


class TestChurnStream:
    def test_each_cycle_returns_to_zero(self):
        edges = [(i, 100 + j) for i in range(3) for j in range(3)]
        stream = churn_stream(edges, cycles=4)
        _, final_edges = validate_stream(stream)
        assert final_edges == 0
        assert len(stream) == 2 * 4 * len(edges)

    def test_true_count_zero_after_churn(self):
        edges = [(i, 100 + j) for i in range(4) for j in range(4)]
        oracle = ExactStreamingCounter()
        oracle.process_stream(churn_stream(edges, cycles=3))
        assert oracle.estimate == 0

    def test_shuffled_deletions_still_valid(self):
        edges = [(i, 50 + i % 5) for i in range(30)]
        stream = churn_stream(edges, cycles=2, rng=random.Random(3))
        validate_stream(stream)

    def test_rejects_bad_cycles(self):
        with pytest.raises(StreamError):
            churn_stream([(1, 2)], cycles=0)

    def test_rejects_duplicates(self):
        with pytest.raises(StreamError):
            churn_stream([(1, 2), (1, 2)])


class TestButterflyBomb:
    def test_planted_count_formula(self):
        _, planted = butterfly_bomb(4, 5)
        assert planted == 6 * 10  # C(4,2) * C(5,2)

    def test_exact_counter_sees_planted_butterflies(self):
        stream, planted = butterfly_bomb(3, 3)
        oracle = ExactStreamingCounter()
        oracle.process_stream(stream)
        assert oracle.estimate == planted == 9

    def test_bomb_embedded_in_background(self):
        background = [(f"bg{i}", f"bg_r{i}") for i in range(10)]
        stream, planted = butterfly_bomb(
            2, 2, background=background, bomb_position=5
        )
        assert len(stream) == 10 + 4
        # Bomb edges occupy positions 5..8.
        assert stream[5].u == "bomb_l0"
        oracle = ExactStreamingCounter()
        oracle.process_stream(stream)
        assert oracle.estimate == planted == 1

    def test_rejects_sub_biclique(self):
        with pytest.raises(StreamError):
            butterfly_bomb(1, 5)

    def test_rejects_bad_position(self):
        with pytest.raises(StreamError):
            butterfly_bomb(2, 2, background=[("a", "b")], bomb_position=9)

    def test_shuffled_bomb_same_count(self):
        stream, planted = butterfly_bomb(3, 4, rng=random.Random(4))
        oracle = ExactStreamingCounter()
        oracle.process_stream(stream)
        assert oracle.estimate == planted


class TestHubStream:
    def test_star_has_no_butterflies(self):
        oracle = ExactStreamingCounter()
        oracle.process_stream(hub_stream(100))
        assert oracle.estimate == 0

    def test_two_sided_star_still_butterfly_free(self):
        stream = hub_stream(50, two_sided=True)
        assert len(stream) == 100
        oracle = ExactStreamingCounter()
        oracle.process_stream(stream)
        assert oracle.estimate == 0

    def test_rejects_empty_star(self):
        with pytest.raises(StreamError):
            hub_stream(0)
