"""Unit tests for the sliding-window stream adapter."""

import random

import pytest

from repro.core.abacus import Abacus
from repro.core.exact import ExactStreamingCounter
from repro.errors import StreamError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import count_butterflies
from repro.streams.dynamic import validate_stream
from repro.streams.window import (
    expired_edges,
    sliding_window_stream,
    window_deletion_ratio,
    windowed_counts,
)
from repro.types import Op


EDGES = [(i % 9, 100 + i // 9) for i in range(63)]  # K_{9,7} in order


class TestSlidingWindowStream:
    def test_invalid_window(self):
        with pytest.raises(StreamError):
            list(sliding_window_stream(EDGES, 0))

    def test_contract_valid(self):
        stream = list(sliding_window_stream(EDGES, 10))
        validate_stream(stream)

    def test_live_set_is_last_w_edges(self):
        window = 10
        live = set()
        insertions_seen = []
        for element in sliding_window_stream(EDGES, window):
            if element.op is Op.INSERT:
                live.add(element.edge)
                insertions_seen.append(element.edge)
                # Right after each insertion, the live set is exactly
                # the most recent `window` insertions.
                assert live == set(insertions_seen[-window:])
            else:
                live.remove(element.edge)
            assert len(live) <= window
        assert live == set(EDGES[-window:])

    def test_window_larger_than_stream_no_deletions(self):
        stream = list(sliding_window_stream(EDGES, 1000))
        assert all(e.op is Op.INSERT for e in stream)

    def test_element_count(self):
        window = 10
        stream = list(sliding_window_stream(EDGES, window))
        expected = len(EDGES) + max(0, len(EDGES) - window)
        assert len(stream) == expected

    def test_reinsertion_within_window_rejected(self):
        with pytest.raises(StreamError):
            list(sliding_window_stream([(1, 10), (1, 10)], 5))

    def test_reinsertion_after_expiry_allowed(self):
        edges = [(1, 10), (2, 11), (1, 10)]
        stream = list(sliding_window_stream(edges, 1))
        validate_stream(stream)


class TestWindowedCounts:
    def test_exact_matches_static_window_count(self):
        window = 20
        counter = ExactStreamingCounter()
        windowed_counts(counter, EDGES, window, every=1000)
        graph = BipartiteGraph(EDGES[-window:])
        assert counter.exact_count == count_butterflies(graph)

    def test_sampling_points(self):
        counter = ExactStreamingCounter()
        points = windowed_counts(counter, EDGES, 20, every=20)
        assert [n for n, _ in points] == [20, 40, 60]

    def test_abacus_over_window_reasonable(self):
        rng = random.Random(4)
        edges = [
            (rng.randrange(40), 1000 + rng.randrange(30)) for _ in range(600)
        ]
        distinct = list(dict.fromkeys(edges))
        window = 150
        abacus = Abacus(10**6, seed=0)  # unbounded: must be exact
        windowed_counts(abacus, distinct, window, every=10**9)
        truth = count_butterflies(BipartiteGraph(distinct[-window:]))
        assert abacus.estimate == pytest.approx(truth)


class TestHelpers:
    def test_deletion_ratio(self):
        assert window_deletion_ratio(100, 100) == 0.0
        assert window_deletion_ratio(0, 10) == 0.0
        # n=100, W=50 -> 50 expirations of 150 elements.
        assert window_deletion_ratio(100, 50) == pytest.approx(50 / 150)

    def test_expired_edges(self):
        assert list(expired_edges(EDGES, 60)) == EDGES[:3]
        assert list(expired_edges(EDGES, 100)) == []
