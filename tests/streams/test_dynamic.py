"""Unit tests for fully dynamic stream synthesis and validation."""

import random

import pytest

from repro.errors import StreamError
from repro.streams.dynamic import (
    interleave_reinsertions,
    make_fully_dynamic,
    stream_from_edges,
    validate_stream,
)
from repro.types import Op, deletion, insertion


EDGES = [(i, 100 + (i % 13)) for i in range(50)]


class TestMakeFullyDynamic:
    def test_element_counts(self):
        stream = make_fully_dynamic(EDGES, 0.2, random.Random(1))
        assert stream.num_insertions == 50
        assert stream.num_deletions == 10
        assert len(stream) == 60

    def test_alpha_zero_is_insert_only(self):
        stream = make_fully_dynamic(EDGES, 0.0, random.Random(1))
        assert stream.num_deletions == 0
        assert len(stream) == 50

    def test_alpha_one_deletes_everything(self):
        stream = make_fully_dynamic(EDGES, 1.0, random.Random(1))
        assert stream.num_deletions == 50
        assert stream.final_num_edges == 0

    def test_every_deletion_follows_its_insertion(self):
        for seed in range(10):
            stream = make_fully_dynamic(EDGES, 0.3, random.Random(seed))
            seen = set()
            for element in stream:
                if element.op is Op.DELETE:
                    assert element.edge in seen
                else:
                    seen.add(element.edge)

    def test_contract_valid(self):
        for seed in range(10):
            stream = make_fully_dynamic(EDGES, 0.3, random.Random(seed))
            validate_stream(stream)  # raises on violation

    def test_insertions_keep_natural_order(self):
        stream = make_fully_dynamic(EDGES, 0.25, random.Random(3))
        inserted = [e.edge for e in stream if e.op is Op.INSERT]
        assert inserted == EDGES

    def test_invalid_alpha(self):
        with pytest.raises(StreamError):
            make_fully_dynamic(EDGES, 1.5)
        with pytest.raises(StreamError):
            make_fully_dynamic(EDGES, -0.1)

    def test_duplicate_edges_rejected(self):
        with pytest.raises(StreamError):
            make_fully_dynamic([(1, 10), (1, 10)], 0.2)

    def test_deterministic_given_seed(self):
        s1 = make_fully_dynamic(EDGES, 0.2, random.Random(5))
        s2 = make_fully_dynamic(EDGES, 0.2, random.Random(5))
        assert list(s1) == list(s2)


class TestStreamFromEdges:
    def test_wraps_in_order(self):
        stream = stream_from_edges(EDGES[:5])
        assert [e.edge for e in stream] == EDGES[:5]
        assert stream.num_deletions == 0


class TestValidateStream:
    def test_returns_max_and_final(self):
        stream = [
            insertion(1, 10),
            insertion(2, 10),
            deletion(1, 10),
        ]
        max_edges, final = validate_stream(stream)
        assert max_edges == 2
        assert final == 1

    def test_duplicate_insert_rejected(self):
        with pytest.raises(StreamError, match="insertion of live edge"):
            validate_stream([insertion(1, 10), insertion(1, 10)])

    def test_delete_absent_rejected(self):
        with pytest.raises(StreamError, match="deletion of absent edge"):
            validate_stream([deletion(1, 10)])

    def test_reinsert_after_delete_is_legal(self):
        validate_stream(
            [insertion(1, 10), deletion(1, 10), insertion(1, 10)]
        )


class TestReinsertions:
    def test_contract_valid(self):
        for seed in range(5):
            stream = interleave_reinsertions(
                EDGES,
                alpha=0.4,
                reinsert_fraction=0.5,
                rng=random.Random(seed),
            )
            validate_stream(stream)

    def test_more_elements_than_base(self):
        base = make_fully_dynamic(EDGES, 0.4, random.Random(2))
        augmented = interleave_reinsertions(
            EDGES, alpha=0.4, reinsert_fraction=1.0, rng=random.Random(2)
        )
        assert len(augmented) > len(base)

    def test_invalid_fraction(self):
        with pytest.raises(StreamError):
            interleave_reinsertions(EDGES, 0.2, reinsert_fraction=2.0)
