"""Unit tests for stream transformations."""

import random

import pytest

from repro.errors import StreamError
from repro.streams.dynamic import make_fully_dynamic, validate_stream
from repro.streams.stream import EdgeStream
from repro.streams.transform import (
    deletion_tail,
    inverse,
    merged,
    relabeled,
    sanitized,
    suspicious_elements,
)
from repro.types import deletion, insertion


def _dirty_stream():
    """Two violations: duplicate insertion (idx 1), absent delete (idx 4)."""
    return EdgeStream(
        [
            insertion("a", "x"),
            insertion("a", "x"),  # duplicate
            insertion("b", "x"),
            deletion("a", "x"),
            deletion("a", "x"),  # already gone
            insertion("a", "y"),
        ]
    )


class TestSanitized:
    def test_clean_stream_untouched(self):
        stream = make_fully_dynamic(
            [(i, 100 + i % 7) for i in range(30)],
            alpha=0.2,
            rng=random.Random(0),
        )
        clean, report = sanitized(stream)
        assert report.dropped == 0
        assert report.kept == len(stream)
        assert list(clean) == list(stream)

    def test_violations_dropped_and_reported(self):
        clean, report = sanitized(_dirty_stream())
        assert report.duplicate_insertions == 1
        assert report.absent_deletions == 1
        assert report.dropped_indices == [1, 4]
        assert report.kept == 4
        validate_stream(clean)  # output is contract-valid

    def test_output_always_validates(self):
        rng = random.Random(1)
        # A deliberately chaotic stream.
        elements = []
        for _ in range(300):
            u, v = rng.randrange(5), rng.randrange(5)
            op = insertion if rng.random() < 0.6 else deletion
            elements.append(op(u, 100 + v))
        clean, _ = sanitized(EdgeStream(elements))
        validate_stream(clean)


class TestSuspiciousElements:
    def test_all_real_violations_flagged(self):
        flagged = suspicious_elements(
            _dirty_stream(), capacity=100, rng=random.Random(2)
        )
        assert 1 in flagged
        assert 4 in flagged

    def test_clean_stream_rarely_flagged(self):
        stream = make_fully_dynamic(
            [(i, 1000 + i) for i in range(500)],
            alpha=0.2,
            rng=random.Random(3),
        )
        flagged = suspicious_elements(
            stream, capacity=1000, fp_rate=0.001, rng=random.Random(4)
        )
        # Only Bloom false positives may be flagged; at 0.1% design FP
        # rate a handful at most.
        assert len(flagged) <= 5


class TestRelabeled:
    def test_dense_integer_labels(self):
        stream = EdgeStream(
            [insertion("alice", "matrix"), insertion("bob", "matrix")]
        )
        dense, left_map, right_map = relabeled(stream)
        assert left_map == {"alice": 0, "bob": 1}
        assert right_map == {"matrix": 0}
        assert [(e.u, e.v) for e in dense] == [(0, 0), (1, 0)]

    def test_ops_preserved(self):
        stream = EdgeStream([insertion("a", "x"), deletion("a", "x")])
        dense, _, _ = relabeled(stream)
        assert dense[0].is_insertion
        assert dense[1].is_deletion

    def test_sides_are_independent_namespaces(self):
        stream = EdgeStream([insertion("same", "same")])
        dense, left_map, right_map = relabeled(stream)
        assert left_map["same"] == 0
        assert right_map["same"] == 0
        assert dense[0].edge == (0, 0)

    def test_contract_validity_preserved(self):
        stream = make_fully_dynamic(
            [(f"u{i}", f"v{i % 5}") for i in range(40)],
            alpha=0.3,
            rng=random.Random(5),
        )
        dense, _, _ = relabeled(stream)
        validate_stream(dense)


class TestMerged:
    def test_round_robin_preserves_order(self):
        a = EdgeStream([insertion("a1", "x"), insertion("a2", "x")])
        b = EdgeStream([insertion("b1", "y")])
        out = merged([a, b])
        labels = [e.u for e in out]
        assert labels == [(0, "a1"), (1, "b1"), (0, "a2")]

    def test_namespacing_prevents_collisions(self):
        a = EdgeStream([insertion("u", "v")])
        b = EdgeStream([insertion("u", "v")])
        out = merged([a, b])
        validate_stream(out)  # without namespacing this would raise

    def test_merge_without_namespace_keeps_vertices(self):
        a = EdgeStream([insertion("u", "v")])
        out = merged([a], namespace=False)
        assert out[0].edge == ("u", "v")

    def test_random_merge_is_contract_valid(self):
        rng = random.Random(6)
        parts = [
            make_fully_dynamic(
                [(i, 50 + (i * 3 + p) % 11) for i in range(25)],
                alpha=0.2,
                rng=random.Random(100 + p),
            )
            for p in range(3)
        ]
        out = merged(parts, rng=rng)
        assert len(out) == sum(len(p) for p in parts)
        validate_stream(out)

    def test_random_merge_preserves_per_stream_order(self):
        a = EdgeStream([insertion(f"a{i}", "x") for i in range(10)])
        b = EdgeStream([insertion(f"b{i}", "y") for i in range(10)])
        out = merged([a, b], rng=random.Random(7))
        a_order = [e.u[1] for e in out if e.u[0] == 0]
        assert a_order == [f"a{i}" for i in range(10)]


class TestInverse:
    def test_stream_plus_inverse_is_empty(self):
        stream = make_fully_dynamic(
            [(i, 10 + i % 3) for i in range(20)],
            alpha=0.25,
            rng=random.Random(8),
        )
        combined = EdgeStream(list(stream) + list(inverse(stream)))
        max_edges, final_edges = validate_stream(combined)
        assert final_edges == 0
        assert max_edges >= 1

    def test_inverse_flips_and_reverses(self):
        stream = EdgeStream([insertion("a", "x"), deletion("a", "x")])
        inv = inverse(stream)
        assert inv[0] == insertion("a", "x")
        assert inv[1] == deletion("a", "x")


class TestDeletionTail:
    def test_tail_drains_graph(self):
        stream = make_fully_dynamic(
            [(i, 7) for i in range(10)], alpha=0.0
        )
        drained = deletion_tail(stream)
        _, final_edges = validate_stream(drained)
        assert final_edges == 0
        assert len(drained) == 20

    def test_already_empty_stream_untouched(self):
        stream = EdgeStream([insertion("a", "x"), deletion("a", "x")])
        drained = deletion_tail(stream)
        assert len(drained) == 2

    def test_invalid_input_raises(self):
        with pytest.raises(StreamError):
            deletion_tail(
                EdgeStream([deletion("ghost", "edge")])
            )
