"""Unit tests for the EdgeStream container."""

import pytest

from repro.errors import StreamError
from repro.streams.stream import EdgeStream
from repro.types import Op, deletion, insertion


def _toy_stream():
    return EdgeStream(
        [
            insertion(1, 10),
            insertion(2, 10),
            deletion(1, 10),
            insertion(1, 11),
        ]
    )


class TestBasics:
    def test_len_and_counts(self):
        s = _toy_stream()
        assert len(s) == 4
        assert s.num_insertions == 3
        assert s.num_deletions == 1

    def test_deletion_ratio(self):
        assert _toy_stream().deletion_ratio == pytest.approx(0.25)
        assert EdgeStream([]).deletion_ratio == 0.0

    def test_final_num_edges(self):
        assert _toy_stream().final_num_edges == 2

    def test_indexing(self):
        s = _toy_stream()
        assert s[0] == insertion(1, 10)
        assert s[-1] == insertion(1, 11)

    def test_slicing_returns_stream(self):
        s = _toy_stream()[:2]
        assert isinstance(s, EdgeStream)
        assert len(s) == 2
        assert s.num_deletions == 0

    def test_iteration_order(self):
        s = _toy_stream()
        assert [e.op for e in s] == [
            Op.INSERT,
            Op.INSERT,
            Op.DELETE,
            Op.INSERT,
        ]


class TestDerivedStreams:
    def test_prefix(self):
        s = _toy_stream()
        assert len(s.prefix(3)) == 3
        assert s.prefix(0).num_insertions == 0

    def test_prefix_negative_raises(self):
        with pytest.raises(StreamError):
            _toy_stream().prefix(-1)

    def test_insertions_only(self):
        s = _toy_stream().insertions_only()
        assert s.num_deletions == 0
        assert len(s) == 3


class TestCheckpoints:
    def test_ten_parts(self):
        s = EdgeStream([insertion(i, 1000 + i) for i in range(100)])
        marks = s.checkpoints(10)
        assert len(marks) == 10
        assert marks[-1] == 100
        assert marks == sorted(marks)

    def test_parts_larger_than_stream(self):
        s = EdgeStream([insertion(1, 10)])
        marks = s.checkpoints(4)
        assert all(m >= 1 for m in marks)
        assert marks[-1] == 1

    def test_invalid_parts(self):
        with pytest.raises(StreamError):
            _toy_stream().checkpoints(0)
