"""Unit tests for stream/graph file I/O."""

import pytest

from repro.errors import StreamError
from repro.streams.io import load_konect, read_stream, write_stream
from repro.types import deletion, insertion


class TestStreamRoundTrip:
    def test_write_then_read(self, tmp_path):
        stream = [
            insertion(1, 100),
            deletion(1, 100),
            insertion(2, 101),
        ]
        path = tmp_path / "stream.txt"
        write_stream(stream, path)
        loaded = read_stream(path)
        assert list(loaded) == stream

    def test_string_vertices_round_trip(self, tmp_path):
        stream = [insertion("alice", "movie-1")]
        path = tmp_path / "s.txt"
        write_stream(stream, path)
        assert list(read_stream(path)) == stream

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("# comment\n\n% другое\n+ 1 2\n")
        loaded = read_stream(path)
        assert len(loaded) == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("+ 1\n")
        with pytest.raises(StreamError, match="expected"):
            read_stream(path)

    def test_bad_op_symbol_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("? 1 2\n")
        with pytest.raises(StreamError):
            read_stream(path)


class TestKonectLoader:
    def test_basic_load_with_offset(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("% konect header\n1 1\n1 2\n2 1\n")
        edges = load_konect(path)
        # right ids offset past max left id (2) -> 1+3=4 etc.
        assert edges == [(1, 4), (1, 5), (2, 4)]
        lefts = {u for u, _ in edges}
        rights = {v for _, v in edges}
        assert lefts.isdisjoint(rights)

    def test_explicit_offset(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("1 1\n")
        assert load_konect(path, right_offset=1000) == [(1, 1001)]

    def test_deduplication(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("1 1\n1 1\n2 1\n")
        assert len(load_konect(path)) == 2
        assert len(load_konect(path, deduplicate=False)) == 3

    def test_limit(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("1 1\n2 1\n3 1\n")
        assert len(load_konect(path, limit=2)) == 2

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("1 1 1.0 1234567890\n")
        assert len(load_konect(path)) == 1

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("a b\n")
        with pytest.raises(StreamError):
            load_konect(path)

    def test_short_line_raises(self, tmp_path):
        path = tmp_path / "out.graph"
        path.write_text("42\n")
        with pytest.raises(StreamError):
            load_konect(path)
