"""Unit tests for mini-batching utilities."""

import pytest

from repro.errors import StreamError
from repro.streams.minibatch import iter_minibatches, partition_round_robin
from repro.types import insertion


def _elements(n):
    return [insertion(i, 1000 + i) for i in range(n)]


class TestIterMinibatches:
    def test_even_split(self):
        batches = list(iter_minibatches(_elements(10), 5))
        assert [len(b) for b in batches] == [5, 5]

    def test_trailing_partial_batch(self):
        batches = list(iter_minibatches(_elements(7), 3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_batch_larger_than_stream(self):
        batches = list(iter_minibatches(_elements(2), 100))
        assert [len(b) for b in batches] == [2]

    def test_empty_stream(self):
        assert list(iter_minibatches([], 10)) == []

    def test_preserves_order(self):
        elements = _elements(9)
        flattened = [
            e for batch in iter_minibatches(elements, 4) for e in batch
        ]
        assert flattened == elements

    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            list(iter_minibatches(_elements(3), 0))


class TestPartitionRoundRobin:
    def test_near_equal_sizes(self):
        chunks = partition_round_robin(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]

    def test_preserves_all_items_in_order(self):
        items = list(range(17))
        chunks = partition_round_robin(items, 5)
        assert [x for c in chunks for x in c] == items

    def test_more_parts_than_items(self):
        chunks = partition_round_robin([1, 2], 4)
        assert len(chunks) == 4
        assert sum(len(c) for c in chunks) == 2

    def test_single_part(self):
        assert partition_round_robin([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_parts(self):
        with pytest.raises(StreamError):
            partition_round_robin([1], 0)
