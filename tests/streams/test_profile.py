"""Unit tests for the one-pass stream profiler."""

import random

import pytest

from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic
from repro.streams.profile import StreamProfiler
from repro.types import deletion, insertion


class TestCounts:
    def test_empty_profile(self):
        profile = StreamProfiler(rng=random.Random(0)).profile()
        assert profile.elements == 0
        assert profile.deletion_ratio == 0.0
        assert profile.average_left_degree == 0.0

    def test_basic_tallies(self):
        profiler = StreamProfiler(rng=random.Random(1))
        profiler.observe(insertion("a", "x"))
        profiler.observe(insertion("b", "x"))
        profiler.observe(deletion("a", "x"))
        profile = profiler.profile()
        assert profile.elements == 3
        assert profile.insertions == 2
        assert profile.deletions == 1
        assert profile.live_edges == 1
        assert profile.peak_live_edges == 2
        assert profile.deletion_ratio == pytest.approx(1 / 3)

    def test_live_edges_match_stream_accounting(self):
        edges = bipartite_chung_lu(200, 100, 2000, rng=random.Random(2))
        stream = make_fully_dynamic(edges, 0.3, random.Random(3))
        profile = StreamProfiler(rng=random.Random(4)).observe_stream(
            stream
        )
        assert profile.live_edges == stream.final_num_edges
        assert profile.elements == len(stream)


class TestCardinalities:
    def test_distinct_estimates_close(self):
        profiler = StreamProfiler(rng=random.Random(5))
        for u in range(300):
            for v in range(10):
                profiler.observe(insertion(u, 10_000 + (u * 7 + v) % 500))
        profile = profiler.profile()
        assert profile.distinct_left == pytest.approx(300, rel=0.1)
        assert profile.distinct_right == pytest.approx(500, rel=0.1)

    def test_average_degrees(self):
        profiler = StreamProfiler(rng=random.Random(6))
        for u in range(50):
            for v in range(4):
                profiler.observe(insertion(u, 1000 + u * 4 + v))
        profile = profiler.profile()
        assert profile.average_left_degree == pytest.approx(4.0, rel=0.1)
        assert profile.average_right_degree == pytest.approx(
            1.0, rel=0.1
        )


class TestHubs:
    def test_planted_hub_found(self):
        profiler = StreamProfiler(
            hub_fraction=0.2, rng=random.Random(7)
        )
        for v in range(100):
            profiler.observe(insertion("hub", 1000 + v))
        for i in range(50):
            profiler.observe(insertion(f"leaf{i}", 2000 + i))
        profile = profiler.profile()
        top = dict(profile.top_left)
        assert "hub" in top
        assert top["hub"] >= 100

    def test_top_k_truncates(self):
        profiler = StreamProfiler(
            hub_fraction=0.001, top_k=2, rng=random.Random(8)
        )
        for u in range(10):
            for v in range(5):
                profiler.observe(insertion(u, 100 + v))
        assert len(profiler.profile().top_left) <= 2


class TestRender:
    def test_render_contains_key_lines(self):
        profiler = StreamProfiler(rng=random.Random(9))
        profiler.observe(insertion("a", "x"))
        text = profiler.profile().render()
        assert "elements" in text
        assert "live edges at end" in text
        assert "distinct left" in text
