"""End-to-end integration tests spanning multiple subsystems.

Each test drives a realistic multi-module pipeline rather than a single
unit: file I/O -> estimator -> checkpoint -> resume; generator ->
windowed stream -> application; KONECT ingest -> dynamic synthesis ->
accuracy vs oracle.
"""

import random

import pytest

from repro import Abacus, ExactStreamingCounter, Parabacus
from repro.apps.anomaly import ButterflyBurstDetector
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.graph.generators import bipartite_chung_lu
from repro.streams.dynamic import make_fully_dynamic, validate_stream
from repro.streams.io import load_konect, read_stream, write_stream
from repro.streams.stream import EdgeStream
from repro.streams.window import sliding_window_stream
from repro.types import deletion, insertion


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(88)
    edges = bipartite_chung_lu(500, 120, 5000, rng=rng)
    stream = make_fully_dynamic(edges, 0.2, random.Random(89))
    return edges, stream


class TestFileRoundTripPipeline:
    def test_stream_file_to_estimate(self, tmp_path, workload):
        """Persist a stream, reload it, estimate, compare to oracle."""
        _, stream = workload
        path = tmp_path / "workload.stream"
        write_stream(stream, path)
        reloaded = read_stream(path)
        assert list(reloaded) == list(stream)

        truth = ExactStreamingCounter().process_stream(reloaded)
        estimate = Abacus(1200, seed=4).process_stream(reloaded)
        assert truth > 0
        assert abs(truth - estimate) / truth < 0.4

    def test_konect_to_dynamic_to_estimate(self, tmp_path):
        """KONECT file -> deletion synthesis -> ABACUS vs oracle."""
        rng = random.Random(90)
        lines = ["% bip unweighted"]
        seen = set()
        while len(seen) < 800:
            pair = (rng.randrange(120), rng.randrange(100))
            if pair not in seen:
                seen.add(pair)
                lines.append(f"{pair[0]} {pair[1]}")
        path = tmp_path / "out.synthetic"
        path.write_text("\n".join(lines))

        edges = load_konect(path)
        assert len(edges) == 800
        stream = make_fully_dynamic(edges, 0.25, random.Random(91))
        truth = ExactStreamingCounter().process_stream(stream)
        estimate = Abacus(10**6, seed=0).process_stream(stream)
        assert estimate == pytest.approx(truth)


class TestCheckpointedPipeline:
    def test_checkpoint_mid_stream_then_detector(self, tmp_path, workload):
        """Run half, checkpoint to disk, resume, and keep the estimate
        identical to the uninterrupted run."""
        _, stream = workload
        half = len(stream) // 2
        reference = Abacus(800, seed=12)
        reference.process_stream(stream)

        part1 = Abacus(800, seed=12)
        part1.process_stream(stream.prefix(half))
        path = tmp_path / "mid.ckpt"
        save_checkpoint(part1, path)
        resumed = load_checkpoint(path)
        resumed.process_stream(stream[half:])
        assert resumed.estimate == reference.estimate


class TestWindowedDetectorPipeline:
    def test_window_plus_burst_detection(self):
        """Sliding window + two-sided detector over estimated counts.

        The background is butterfly-poor (uniform random) so the planted
        8x8 biclique is a clean spike even through the sample noise.
        """
        import repro.graph.generators as generators

        rng = random.Random(93)
        background = generators.bipartite_erdos_renyi(
            5000, 5000, 6000, rng
        )
        clique = [
            (9_000_000 + i, 9_500_000 + j)
            for i in range(8)
            for j in range(8)
        ]
        edges = background[:4000] + clique + background[4000:]
        detector = ButterflyBurstDetector(
            Abacus(2500, seed=14),
            window=500,
            z_threshold=4.0,
            two_sided=True,
        )
        for element in sliding_window_stream(edges, window=3000):
            detector.process(element)
        assert detector.alerts, "planted clique missed through the window"


class TestParabacusPipeline:
    def test_minibatch_estimates_match_across_persistence(self, workload):
        """PARABACUS over the same stream in two different batch sizes
        still agrees with ABACUS exactly (Theorem 5, integration-level)."""
        _, stream = workload
        reference = Abacus(700, seed=21).process_stream(stream)
        for batch_size in (64, 777):
            para = Parabacus(
                700, batch_size=batch_size, num_threads=5, seed=21
            )
            para.process_stream(stream)
            para.flush()
            assert para.estimate == pytest.approx(reference, rel=1e-12)


class TestHygienePipeline:
    """Dirty feed -> sanitise -> profile -> estimate -> adapt."""

    def test_sanitise_profile_estimate_shrink(self):
        rng = random.Random(77)
        edges = bipartite_chung_lu(300, 120, 3000, rng=rng)
        base = make_fully_dynamic(edges, 0.2, random.Random(78))
        # Dirty the stream with duplicates and ghost deletions.
        elements = list(base)
        for i in range(40):
            u, v = edges[rng.randrange(len(edges))]
            elements.insert(rng.randrange(len(elements)), insertion(u, v))
            elements.insert(
                rng.randrange(len(elements)),
                deletion(f"ghost{i}", "nowhere"),
            )
        from repro.streams.profile import StreamProfiler
        from repro.streams.transform import sanitized

        clean, report = sanitized(EdgeStream(elements))
        assert report.dropped >= 40
        validate_stream(clean)

        profile = StreamProfiler(rng=random.Random(79)).observe_stream(
            clean
        )
        assert profile.live_edges == clean.final_num_edges

        estimator = Abacus(budget=800, seed=80)
        oracle = ExactStreamingCounter()
        shrunk = False
        for index, element in enumerate(clean):
            estimator.process(element)
            oracle.process(element)
            if (
                not shrunk
                and index > len(clean) // 2
                and estimator.can_resize
            ):
                estimator.shrink_budget(400)
                shrunk = True
        assert shrunk
        assert estimator.memory_edges <= 400
        if oracle.estimate:
            error = abs(oracle.estimate - estimator.estimate) / (
                oracle.estimate
            )
            assert error < 1.5  # sanity: same order of magnitude


class TestSupportEnsemblePipeline:
    """Per-edge support and an ensemble share one stream, and their
    global views agree with the oracle in the exact regime."""

    def test_support_and_ensemble_agree_exactly(self, workload):
        from repro.core.ensemble import EnsembleEstimator
        from repro.core.support import AbacusSupport

        _, stream = workload
        support = AbacusSupport(budget=10_000, seed=81)
        ensemble = EnsembleEstimator(
            replicas=3, budget=10_000, seed=82
        )
        oracle = ExactStreamingCounter()
        for element in stream:
            support.process(element)
            ensemble.process(element)
            oracle.process(element)
        assert support.estimate == pytest.approx(oracle.estimate)
        assert ensemble.estimate == pytest.approx(oracle.estimate)
        assert ensemble.spread() == pytest.approx(0.0)
        # Support identity: every butterfly has exactly four edges.
        total_support = sum(support.support_estimates().values())
        assert total_support == pytest.approx(4.0 * oracle.estimate)
