"""Unit tests for the CLI."""

import pytest

from repro.cli import _split_datasets, build_parser, run_experiment
from repro.experiments.datasets import DATASETS, tiny_dataset
from repro.experiments.runner import ExperimentContext


@pytest.fixture
def tiny_registry():
    spec = tiny_dataset(n_edges=1000, seed=23)
    object.__setattr__(spec, "name", "tiny_cli")
    DATASETS["tiny_cli"] = spec
    try:
        yield ["tiny_cli"]
    finally:
        del DATASETS["tiny_cli"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.trials == 5
        assert args.datasets is None

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_split_datasets(self):
        assert _split_datasets(None) is None
        assert _split_datasets("a, b,c") == ["a", "b", "c"]
        assert _split_datasets("") is None


class TestRunExperiment:
    def test_table2(self, tiny_registry):
        report = run_experiment("table2", 1, tiny_registry, 4)
        assert "Butterfly Density" in report

    def test_fig3(self, tiny_registry):
        report = run_experiment(
            "fig3", 1, tiny_registry, 4, ExperimentContext()
        )
        assert "Figure 3" in report
        assert "ABACUS" in report

    def test_fig10(self, tiny_registry):
        report = run_experiment(
            "fig10", 1, tiny_registry, 4, ExperimentContext()
        )
        assert "Figure 10" in report

    def test_unknown_name_raises(self, tiny_registry):
        with pytest.raises(SystemExit):
            run_experiment("nope", 1, tiny_registry, 4)


class TestChartFlag:
    def test_parser_accepts_chart(self):
        args = build_parser().parse_args(["fig3", "--chart"])
        assert args.chart is True

    def test_fig3_chart_appended(self, tiny_registry):
        plain = run_experiment(
            "fig3", 1, tiny_registry, 4, ExperimentContext()
        )
        charted = run_experiment(
            "fig3", 1, tiny_registry, 4, ExperimentContext(), chart=True
        )
        assert charted.startswith(plain)
        assert "error %" in charted
        assert "*=ABACUS" in charted

    def test_extension_experiments_resolve(self):
        report = run_experiment(
            "lineage", 1, None, 4, ExperimentContext()
        )
        assert "ThinkD" in report and "TriestFD" in report
