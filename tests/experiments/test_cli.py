"""Unit tests for the CLI."""

import pytest

from repro.cli import _split_datasets, build_parser, run_experiment
from repro.experiments.datasets import DATASETS, tiny_dataset
from repro.experiments.runner import ExperimentContext


@pytest.fixture
def tiny_registry():
    spec = tiny_dataset(n_edges=1000, seed=23)
    object.__setattr__(spec, "name", "tiny_cli")
    DATASETS["tiny_cli"] = spec
    try:
        yield ["tiny_cli"]
    finally:
        del DATASETS["tiny_cli"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.trials == 5
        assert args.datasets is None

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_split_datasets(self):
        assert _split_datasets(None) is None
        assert _split_datasets("a, b,c") == ["a", "b", "c"]
        assert _split_datasets("") is None


class TestRunExperiment:
    def test_table2(self, tiny_registry):
        report = run_experiment("table2", 1, tiny_registry, 4)
        assert "Butterfly Density" in report

    def test_fig3(self, tiny_registry):
        report = run_experiment(
            "fig3", 1, tiny_registry, 4, ExperimentContext()
        )
        assert "Figure 3" in report
        assert "ABACUS" in report

    def test_fig10(self, tiny_registry):
        report = run_experiment(
            "fig10", 1, tiny_registry, 4, ExperimentContext()
        )
        assert "Figure 10" in report

    def test_unknown_name_raises(self, tiny_registry):
        with pytest.raises(SystemExit):
            run_experiment("nope", 1, tiny_registry, 4)


class TestChartFlag:
    def test_parser_accepts_chart(self):
        args = build_parser().parse_args(["fig3", "--chart"])
        assert args.chart is True

    def test_fig3_chart_appended(self, tiny_registry):
        plain = run_experiment(
            "fig3", 1, tiny_registry, 4, ExperimentContext()
        )
        charted = run_experiment(
            "fig3", 1, tiny_registry, 4, ExperimentContext(), chart=True
        )
        assert charted.startswith(plain)
        assert "error %" in charted
        assert "*=ABACUS" in charted

    def test_extension_experiments_resolve(self):
        report = run_experiment(
            "lineage", 1, None, 4, ExperimentContext()
        )
        assert "ThinkD" in report and "TriestFD" in report


class TestWindowFlags:
    def test_parser_accepts_window_flags(self):
        args = build_parser().parse_args(
            ["stream", "--window", "500", "--window-time", "2.5"]
        )
        assert args.window == 500
        assert args.window_time == 2.5

    def test_parser_window_defaults_off(self):
        args = build_parser().parse_args(["stream"])
        assert args.window == 0
        assert args.window_time == 0.0

    def test_stream_with_count_window(self, tiny_registry):
        report = run_experiment(
            "stream",
            1,
            tiny_registry,
            4,
            ExperimentContext(),
            estimator_spec="abacus:budget=200,seed=7",
            window=300,
        )
        assert "[window=300]" in report
        assert "exact (no window)" in report

    def test_stream_with_time_window(self, tiny_registry):
        report = run_experiment(
            "stream",
            1,
            tiny_registry,
            4,
            ExperimentContext(),
            estimator_spec="exact",
            window_time=250.0,
        )
        assert "[window_time=250]" in report

    def test_windowed_stream_counts_fewer_than_unwindowed(
        self, tiny_registry
    ):
        ctx = ExperimentContext()
        full = run_experiment(
            "stream", 1, tiny_registry, 4, ctx, estimator_spec="exact"
        )
        windowed = run_experiment(
            "stream", 1, tiny_registry, 4, ctx, estimator_spec="exact",
            window=50,
        )

        def estimate_of(report):
            for line in report.splitlines():
                if line.strip().startswith("estimate"):
                    return float(line.split(":")[1].replace(",", ""))
            raise AssertionError(report)

        assert estimate_of(windowed) <= estimate_of(full)
