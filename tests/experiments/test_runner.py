"""Unit tests for the experiment runner."""

import pytest

from repro.baselines.cas import CoAffiliationSampling
from repro.baselines.fleet import Fleet
from repro.core.abacus import Abacus
from repro.core.exact import ExactStreamingCounter
from repro.core.parabacus import Parabacus
from repro.errors import ExperimentError
from repro.experiments.datasets import tiny_dataset
from repro.experiments.runner import (
    ExperimentContext,
    ground_truth_final_count,
    make_estimator,
)
from repro.types import deletion, insertion


class TestMakeEstimator:
    @pytest.mark.parametrize(
        "method,cls",
        [
            ("abacus", Abacus),
            ("parabacus", Parabacus),
            ("fleet", Fleet),
            ("cas", CoAffiliationSampling),
            ("exact", ExactStreamingCounter),
        ],
    )
    def test_all_methods(self, method, cls):
        assert isinstance(make_estimator(method, 100, seed=0), cls)

    def test_unknown_method(self):
        with pytest.raises(ExperimentError):
            make_estimator("magic", 100)

    def test_parabacus_parameters_forwarded(self):
        est = make_estimator(
            "parabacus", 100, seed=0, batch_size=77, num_threads=3
        )
        assert est.batch_size == 77
        assert est.num_threads == 3


class TestGroundTruth:
    def test_single_butterfly(self):
        stream = [
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
        ]
        assert ground_truth_final_count(stream) == 1

    def test_deletion_removes_butterfly(self):
        stream = [
            insertion(1, 10),
            insertion(1, 11),
            insertion(2, 10),
            insertion(2, 11),
            deletion(1, 10),
        ]
        assert ground_truth_final_count(stream) == 0

    def test_agrees_with_streaming_exact(self, dynamic_stream):
        exact = ExactStreamingCounter()
        exact.process_stream(dynamic_stream)
        assert ground_truth_final_count(dynamic_stream) == exact.exact_count


class TestContext:
    def test_stream_and_truth_cached(self):
        ctx = ExperimentContext()
        spec = tiny_dataset(600, seed=9)
        s1 = ctx.stream(spec, 0.2, 0)
        s2 = ctx.stream(spec, 0.2, 0)
        assert s1 is s2
        t1 = ctx.truth(spec, 0.2, 0)
        t2 = ctx.truth(spec, 0.2, 0)
        assert t1 == t2

    def test_accuracy_summary(self):
        ctx = ExperimentContext()
        spec = tiny_dataset(600, seed=9)
        summary = ctx.accuracy(spec, "abacus", 200, 0.2, trials=3)
        assert summary.trials == 3
        assert 0.0 <= summary.mean < 1.0

    def test_exact_method_has_zero_error(self):
        ctx = ExperimentContext()
        spec = tiny_dataset(600, seed=9)
        summary = ctx.accuracy(spec, "exact", 10, 0.2, trials=2)
        assert summary.mean == pytest.approx(0.0)

    def test_throughput_positive(self):
        ctx = ExperimentContext()
        spec = tiny_dataset(600, seed=9)
        eps = ctx.throughput(spec, "abacus", 200, 0.2)
        assert eps > 0

    def test_throughput_insertions_only(self):
        ctx = ExperimentContext()
        spec = tiny_dataset(600, seed=9)
        eps = ctx.throughput(
            spec, "fleet", 200, 0.2, insertions_only=True
        )
        assert eps > 0
