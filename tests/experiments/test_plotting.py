"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.plotting import bar_chart, histogram, line_chart


class TestLineChart:
    def test_basic_rendering(self):
        chart = line_chart(
            {"abacus": ([1, 2, 3], [10.0, 20.0, 30.0])},
            width=20,
            height=6,
            title="Error vs k",
        )
        lines = chart.splitlines()
        assert lines[0] == "Error vs k"
        assert "*" in chart
        assert "*=abacus" in chart

    def test_multiple_series_distinct_glyphs(self):
        chart = line_chart(
            {
                "a": ([0, 1], [0.0, 1.0]),
                "b": ([0, 1], [1.0, 0.0]),
            },
            width=16,
            height=5,
        )
        assert "*" in chart and "o" in chart
        assert "*=a" in chart and "o=b" in chart

    def test_y_axis_labels_show_extremes(self):
        chart = line_chart(
            {"s": ([0, 10], [5.0, 50.0])}, width=16, height=5
        )
        assert "50" in chart
        assert "5" in chart

    def test_forced_floor(self):
        chart = line_chart(
            {"s": ([0, 1], [10.0, 20.0])},
            width=16,
            height=5,
            y_min=0.0,
        )
        assert chart.splitlines()[4].startswith(" 0 |")

    def test_requires_series(self):
        with pytest.raises(ExperimentError):
            line_chart({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ExperimentError):
            line_chart({"s": ([1, 2], [1.0])})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ExperimentError):
            line_chart({"s": ([1], [1.0])}, width=2, height=2)

    def test_rejects_too_many_series(self):
        series = {f"s{i}": ([0], [0.0]) for i in range(7)}
        with pytest.raises(ExperimentError):
            line_chart(series)

    def test_constant_series_lands_on_bottom_row(self):
        chart = line_chart({"s": ([0, 1], [3.0, 3.0])},
                           width=12, height=4)
        bottom_row = chart.splitlines()[3]
        assert "*" in bottom_row


class TestBarChart:
    def test_docstring_example(self):
        chart = bar_chart(["t0", "t1"], [10, 5], width=10)
        assert chart.splitlines()[0] == "t0 | ########## 10"
        assert chart.splitlines()[1] == "t1 | #####      5"

    def test_title_and_unit(self):
        chart = bar_chart(
            ["x"], [3.0], width=6, title="Loads", unit="Mops"
        )
        lines = chart.splitlines()
        assert lines[0] == "Loads"
        assert lines[1].endswith("3 Mops")

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart(["a", "b"], [0, 0], width=8)
        assert "#" not in chart

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ExperimentError):
            bar_chart(["a"], [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            bar_chart([], [])

    def test_rejects_negative_values(self):
        with pytest.raises(ExperimentError):
            bar_chart(["a"], [-1])


class TestHistogram:
    def test_counts_sum_preserved(self):
        values = [0.0, 0.1, 0.2, 0.9, 1.0]
        chart = histogram(values, bins=2, width=10)
        # Two bins: [0, 0.5) holds 3, [0.5, 1.0) holds 2.
        lines = chart.splitlines()
        assert lines[0].rstrip().endswith("3")
        assert lines[1].rstrip().endswith("2")

    def test_constant_values_single_bar(self):
        chart = histogram([5.0, 5.0, 5.0], bins=4)
        assert len(chart.splitlines()) == 1
        assert chart.rstrip().endswith("3")

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            histogram([])

    def test_rejects_bad_bins(self):
        with pytest.raises(ExperimentError):
            histogram([1.0], bins=0)
