"""Smoke tests for the extension experiments (small parameters)."""

from repro.experiments.extensions import (
    run_anomaly_quality,
    run_ensemble,
    run_triangle_lineage,
    run_variance_bound,
)


class TestRunVarianceBound:
    def test_structure_and_theorem(self):
        result = run_variance_bound(
            budgets=(80, 160),
            trials=40,
            n_left=30,
            n_right=20,
            n_edges=250,
        )
        assert result["truth"] > 0
        assert set(result["series"]) == {80, 160}
        for info in result["series"].values():
            assert info["bound"] > 0
            # Generous slack: 40 trials estimate the variance noisily.
            assert info["ratio"] < 3.0
        assert "Theorem-2 bound" in result["text"]


class TestRunEnsemble:
    def test_structure(self):
        result = run_ensemble(replicas=3, budget=60, trials=15)
        assert set(result["results"]) == {
            "single",
            "ensemble-extra",
            "ensemble-shared",
        }
        assert result["results"]["ensemble-extra"]["memory"] == 180
        assert result["results"]["single"]["memory"] == 60
        assert all(
            info["rmse"] >= 0 for info in result["results"].values()
        )


class TestRunAnomalyQuality:
    def test_structure(self):
        result = run_anomaly_quality(
            alphas=(0.2,),
            budget=1200,
            n_edges=4000,
            bomb_windows=(4, 7),
        )
        qualities = result["results"][0.2]
        assert set(qualities) == {"Abacus", "FLEET", "CAS"}
        for quality in qualities.values():
            assert 0.0 <= quality.precision <= 1.0
            assert 0.0 <= quality.recall <= 1.0
        assert "precision" in result["text"]


class TestRunTriangleLineage:
    def test_structure_and_trade(self):
        result = run_triangle_lineage(budget=60, trials=40)
        assert result["truth"] > 0
        r = result["results"]
        assert set(r) == {"ThinkD", "TriestFD"}
        # The core trade: lazy counting does less work.
        assert r["TriestFD"]["mean_work"] < r["ThinkD"]["mean_work"]
