"""Unit tests for report rendering."""

from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["name", "value"], [("alpha", 1), ("beta", 22)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert "alpha" in lines[2]
        assert "22" in lines[3]

    def test_title(self):
        text = render_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["x"], [(0.123456789,)])
        assert "0.1235" in text

    def test_column_widths_fit_content(self):
        text = render_table(["h"], [("a-very-long-cell",)])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestRenderSeries:
    def test_layout(self):
        text = render_series(
            "k",
            [10, 20],
            {"abacus": [0.1, 0.2], "fleet": [1.0, 2.0]},
        )
        lines = text.splitlines()
        assert "abacus" in lines[0] and "fleet" in lines[0]
        assert len(lines) == 4

    def test_missing_values_dash(self):
        text = render_series("k", [1, 2], {"m": [0.5]})
        assert "-" in text.splitlines()[-1]

    def test_custom_format(self):
        text = render_series(
            "k", [1], {"m": [0.123]}, y_format="{:.1f}"
        )
        assert "0.1" in text
