"""Integration tests for the per-figure experiment definitions.

Each figure function is exercised end-to-end on a miniature dataset
injected into the registry, checking structure and the qualitative
"shapes" the paper reports (e.g. ABACUS beats the insert-only baselines
under deletions).
"""

import pytest

from repro.experiments import figures
from repro.experiments.datasets import DATASETS, tiny_dataset
from repro.experiments.runner import ExperimentContext


@pytest.fixture
def tiny_registry():
    """Temporarily register a miniature dataset as 'tiny_test'."""
    spec = tiny_dataset(n_edges=1500, seed=17)
    object.__setattr__(spec, "name", "tiny_test")
    DATASETS["tiny_test"] = spec
    try:
        yield ["tiny_test"]
    finally:
        del DATASETS["tiny_test"]


@pytest.fixture
def ctx():
    return ExperimentContext()


class TestTable2:
    def test_structure(self, tiny_registry):
        result = figures.run_table2(datasets=tiny_registry)
        stats = result["stats"]["tiny_test"]
        assert stats["edges"] == 1500
        assert stats["butterflies"] > 0
        assert 0.0 < stats["density"] <= 1.0
        assert "Butterfly Density" in result["text"]


class TestAccuracyFigures:
    def test_fig3_shape(self, tiny_registry, ctx):
        result = figures.run_accuracy_vs_sample_size(
            alpha=0.2, trials=2, datasets=tiny_registry, context=ctx
        )
        data = result["results"]["tiny_test"]
        abacus_errors = data["errors"]["abacus"]
        fleet_errors = data["errors"]["fleet"]
        assert len(abacus_errors) == 3
        # Under 20% deletions ABACUS must beat the insert-only FLEET at
        # every sample size (the paper's headline result).
        assert all(
            a < f for a, f in zip(abacus_errors, fleet_errors)
        ), (abacus_errors, fleet_errors)

    def test_fig5_insert_only(self, tiny_registry, ctx):
        result = figures.run_accuracy_vs_sample_size(
            alpha=0.0,
            trials=2,
            datasets=tiny_registry,
            methods=("abacus", "fleet"),
            context=ctx,
        )
        data = result["results"]["tiny_test"]
        # On insert-only streams everyone is decent.
        assert all(e < 0.5 for e in data["errors"]["abacus"])
        assert all(e < 0.5 for e in data["errors"]["fleet"])
        assert "Figure 5" in result["title"]


class TestThroughputFigure:
    def test_fig4_columns(self, tiny_registry, ctx):
        result = figures.run_throughput_vs_sample_size(
            datasets=tiny_registry, num_threads=4, context=ctx
        )
        columns = result["results"]["tiny_test"]["throughput_keps"]
        for name, series in columns.items():
            assert len(series) == 3, name
            assert all(v > 0 for v in series), name


class TestDeletionImpact:
    def test_fig6_series(self, tiny_registry, ctx):
        result = figures.run_deletion_ratio_impact(
            alphas=(0.1, 0.3),
            trials=1,
            datasets=tiny_registry,
            context=ctx,
        )
        errors = result["errors_pct"]["Tiny"]
        rates = result["throughput_keps"]["Tiny"]
        assert len(errors) == 2 and len(rates) == 2
        assert all(r > 0 for r in rates)


class TestScalability:
    def test_fig7_monotone_elapsed(self, tiny_registry, ctx):
        result = figures.run_scalability(
            datasets=tiny_registry, parts=5, context=ctx
        )
        series = result["results"]["tiny_test"]["elapsed_s"]
        for label, elapsed in series.items():
            assert len(elapsed) == 5, label
            assert elapsed == sorted(elapsed), label


class TestSpeedupFigures:
    def test_fig8_structure(self, tiny_registry, ctx):
        result = figures.run_minibatch_speedup(
            batch_sizes=(50, 200),
            num_threads=8,
            datasets=tiny_registry,
            context=ctx,
        )
        series = result["results"]["tiny_test"]["speedup"]
        for label, speedups in series.items():
            assert len(speedups) == 2
            if label.endswith("+ovh"):
                # Dispatch-adjusted speedup can dip below 1 at tiny
                # batch sizes (overhead dominates) but must grow with M.
                assert speedups[-1] > speedups[0], label
            else:
                assert all(s >= 1.0 for s in speedups), label

    def test_fig9_more_threads_not_slower(self, tiny_registry, ctx):
        result = figures.run_thread_speedup(
            thread_counts=(2, 8),
            batch_size=200,
            datasets=tiny_registry,
            context=ctx,
        )
        series = result["results"]["tiny_test"]["speedup"]
        for label, speedups in series.items():
            assert speedups[0] <= speedups[1] + 1e-9, label


class TestLoadBalance:
    def test_fig10_balance(self, tiny_registry, ctx):
        result = figures.run_load_balance(
            datasets=tiny_registry,
            batch_size=200,
            num_threads=4,
            context=ctx,
        )
        data = result["results"]["tiny_test"]
        assert len(data["per_thread_work"]) == 4
        assert data["balance"].total > 0
        # Near-equal workloads (generous tolerance at tiny scale).
        assert data["balance"].imbalance < 2.0


class TestExtras:
    def test_unbiasedness_run(self):
        result = figures.run_unbiasedness(
            n_edges=400, budget=80, trials=60, seed=3
        )
        assert result["truth"] > 0
        # Mean of 60 runs within 5 standard errors.
        assert abs(result["z"]) < 5.0

    def test_ablation_structure(self, tiny_registry, ctx):
        result = figures.run_ablation_heuristics(
            datasets=tiny_registry, trials=1, context=ctx
        )
        variants = result["results"]["tiny_test"]
        assert set(variants) == {
            "default",
            "no_cheapest_side",
            "naive_increment",
        }
        # The heuristic never increases counting error (estimates are
        # identical); work may differ.
        assert variants["default"]["error"] == pytest.approx(
            variants["no_cheapest_side"]["error"]
        )
