"""Unit tests for the dataset registry."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.datasets import (
    DATASETS,
    get_dataset,
    list_datasets,
    tiny_dataset,
)
from repro.streams.dynamic import validate_stream


class TestRegistry:
    def test_four_datasets(self):
        assert list_datasets() == [
            "movielens_like",
            "livejournal_like",
            "trackers_like",
            "orkut_like",
        ]

    def test_lookup(self):
        spec = get_dataset("movielens_like")
        assert spec.paper_name == "MovieLens"

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get_dataset("imaginary")

    def test_specs_have_three_sample_sizes(self):
        for spec in DATASETS.values():
            assert len(spec.sample_sizes) == 3
            assert list(spec.sample_sizes) == sorted(spec.sample_sizes)


class TestGeneration:
    def test_edges_deterministic(self):
        spec = tiny_dataset(800, seed=3)
        assert spec.edges() == spec.edges()

    def test_edges_distinct(self):
        spec = tiny_dataset(800, seed=3)
        edges = spec.edges()
        assert len(edges) == 800
        assert len(set(edges)) == 800

    def test_stream_alpha_zero(self):
        spec = tiny_dataset(500, seed=4)
        stream = spec.stream(alpha=0.0)
        assert stream.num_deletions == 0
        assert len(stream) == 500

    def test_stream_with_deletions_valid(self):
        spec = tiny_dataset(500, seed=4)
        stream = spec.stream(alpha=0.25, trial=0)
        assert stream.num_deletions == 125
        validate_stream(stream)

    def test_trials_vary_deletions_but_not_graph(self):
        spec = tiny_dataset(500, seed=4)
        s0 = spec.stream(alpha=0.2, trial=0)
        s1 = spec.stream(alpha=0.2, trial=1)
        assert list(s0) != list(s1)
        assert [e.edge for e in s0 if e.is_insertion] == [
            e.edge for e in s1 if e.is_insertion
        ]

    def test_density_ordering_matches_table2(self):
        """The analogues must preserve the paper's butterfly-density
        ordering: MovieLens >> Trackers > LiveJournal > Orkut."""
        from repro.graph.bipartite import BipartiteGraph
        from repro.graph.butterflies import butterfly_density

        densities = {}
        for name in list_datasets():
            spec = get_dataset(name)
            graph = BipartiteGraph(spec.edges())
            densities[name] = butterfly_density(graph)
        assert densities["movielens_like"] > densities["trackers_like"]
        assert densities["trackers_like"] > densities["livejournal_like"]
        assert densities["livejournal_like"] > densities["orkut_like"]
