"""Unit tests for exact triangle counting."""

import random

from repro.triangles.exact import (
    count_triangles,
    count_triangles_brute_force,
    triangles_containing_edge,
)
from repro.triangles.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.triangles.graph import UndirectedGraph


class TestGlobalCount:
    def test_triangle(self):
        g = UndirectedGraph([(1, 2), (2, 3), (1, 3)])
        assert count_triangles(g) == 1

    def test_path_has_none(self):
        g = UndirectedGraph([(1, 2), (2, 3)])
        assert count_triangles(g) == 0

    def test_k4_has_four(self):
        g = UndirectedGraph(
            (i, j) for i in range(4) for j in range(i + 1, 4)
        )
        assert count_triangles(g) == 4

    def test_matches_brute_force(self):
        for seed in range(5):
            rng = random.Random(seed)
            g = UndirectedGraph(erdos_renyi_graph(14, 40, rng))
            assert count_triangles(g) == count_triangles_brute_force(g)

    def test_ba_graph_is_triangle_rich(self):
        rng = random.Random(3)
        g = UndirectedGraph(barabasi_albert_graph(100, 4, rng))
        assert count_triangles(g) > 0


class TestPerEdge:
    def test_edge_sum_identity(self):
        rng = random.Random(6)
        g = UndirectedGraph(erdos_renyi_graph(15, 45, rng))
        total = sum(
            triangles_containing_edge(g, u, v) for u, v in g.edges()
        )
        assert total == 3 * count_triangles(g)

    def test_absent_edge_counts_potential(self):
        g = UndirectedGraph([(1, 2), (2, 3)])
        assert triangles_containing_edge(g, 1, 3) == 1
