"""Unit and statistical tests for the ThinkD triangle estimator."""

import math
import random

import pytest

from repro.errors import GraphError
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.triangles.exact import count_triangles
from repro.triangles.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.triangles.graph import UndirectedGraph
from repro.triangles.thinkd import ExactTriangleCounter, ThinkD
from repro.types import Op, deletion, insertion


def _truth(stream) -> int:
    graph = UndirectedGraph()
    for element in stream:
        if element.op is Op.INSERT:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    return count_triangles(graph)


class TestExactOracle:
    def test_lifecycle(self):
        oracle = ExactTriangleCounter()
        for el in (insertion(1, 2), insertion(2, 3), insertion(1, 3)):
            oracle.process(el)
        assert oracle.exact_count == 1
        assert oracle.process(deletion(1, 3)) == -1.0
        assert oracle.exact_count == 0

    def test_matches_static_count(self):
        rng = random.Random(1)
        edges = erdos_renyi_graph(30, 150, rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(2))
        oracle = ExactTriangleCounter()
        oracle.process_stream(stream)
        assert oracle.exact_count == _truth(stream)


class TestThinkD:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            ThinkD(10, seed=0).process(insertion(1, 1))

    def test_exact_with_unbounded_budget(self):
        rng = random.Random(3)
        edges = erdos_renyi_graph(25, 120, rng)
        stream = make_fully_dynamic(edges, 0.25, random.Random(4))
        estimator = ThinkD(10**6, seed=0)
        estimate = estimator.process_stream(stream)
        assert estimate == pytest.approx(_truth(stream))

    def test_memory_bounded(self):
        rng = random.Random(5)
        edges = erdos_renyi_graph(40, 300, rng)
        estimator = ThinkD(30, seed=1)
        estimator.process_stream(stream_from_edges(edges))
        assert estimator.memory_edges <= 30

    def test_orientation_insensitive(self):
        """Edges arriving as (v, u) must hit the same sampled edge."""
        estimator = ThinkD(10**6, seed=0)
        estimator.process(insertion(2, 1))
        estimator.process(insertion(3, 2))
        estimator.process(insertion(1, 3))
        assert estimator.estimate == pytest.approx(1.0)
        estimator.process(deletion(3, 1))  # reversed orientation
        assert estimator.estimate == pytest.approx(0.0)

    def test_unbiased_on_dynamic_stream(self):
        rng = random.Random(7)
        edges = barabasi_albert_graph(60, 4, rng)
        stream = make_fully_dynamic(edges, 0.3, random.Random(8))
        truth = _truth(stream)
        assert truth > 0
        trials = 300
        estimates = []
        for t in range(trials):
            estimator = ThinkD(60, seed=4000 + t)
            estimates.append(estimator.process_stream(stream))
        mean = sum(estimates) / trials
        variance = sum((e - mean) ** 2 for e in estimates) / (trials - 1)
        se = math.sqrt(variance / trials)
        assert abs(mean - truth) < 4 * se, (mean, truth, se)

    def test_error_shrinks_with_budget(self):
        rng = random.Random(9)
        edges = barabasi_albert_graph(150, 5, rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(10))
        truth = _truth(stream)

        def mean_error(budget, trials=8):
            errors = []
            for t in range(trials):
                estimator = ThinkD(budget, seed=100 + t)
                estimate = estimator.process_stream(stream)
                errors.append(abs(truth - estimate) / truth)
            return sum(errors) / len(errors)

        assert mean_error(500) < mean_error(60)
