"""Unit, statistical, and cross-validation tests for TRIEST-FD."""

import math
import random

import pytest

from repro.errors import GraphError, SamplingError
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.triangles.exact import count_triangles
from repro.triangles.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
)
from repro.triangles.graph import UndirectedGraph
from repro.triangles.thinkd import ExactTriangleCounter, ThinkD
from repro.triangles.triest import TriestFD
from repro.types import deletion, insertion


def _triangle_elements():
    return [insertion(0, 1), insertion(1, 2), insertion(0, 2)]


def _ground_truth(stream):
    graph = UndirectedGraph()
    for element in stream:
        if element.is_insertion:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)
    return count_triangles(graph)


class TestConstruction:
    def test_rejects_tiny_budget(self):
        with pytest.raises(SamplingError):
            TriestFD(budget=1)

    def test_rejects_self_loop(self):
        est = TriestFD(budget=10, seed=0)
        with pytest.raises(GraphError):
            est.process(insertion(3, 3))


class TestExactRegime:
    """With a budget that holds the whole stream, every insertion is
    accepted (q=1) and every deletion is sampled, so TRIEST-FD is exact."""

    def test_single_triangle(self):
        est = TriestFD(budget=100, seed=1)
        for element in _triangle_elements():
            est.process(element)
        assert est.estimate == pytest.approx(1.0)

    def test_triangle_then_deletion(self):
        est = TriestFD(budget=100, seed=2)
        for element in _triangle_elements():
            est.process(element)
        est.process(deletion(0, 2))
        assert est.estimate == pytest.approx(0.0)

    def test_endpoint_order_irrelevant(self):
        est = TriestFD(budget=100, seed=3)
        est.process(insertion(1, 0))
        est.process(insertion(2, 1))
        est.process(insertion(0, 2))
        est.process(deletion(2, 0))  # swapped order
        assert est.estimate == pytest.approx(0.0)

    def test_matches_exact_oracle_on_random_graph(self):
        rng = random.Random(4)
        edges = erdos_renyi_graph(30, 160, rng)
        stream = make_fully_dynamic(edges, 0.25, random.Random(5))
        est = TriestFD(budget=10_000, seed=6)
        oracle = ExactTriangleCounter()
        for element in stream:
            est.process(element)
            oracle.process(element)
        assert est.estimate == pytest.approx(oracle.estimate)


class TestLaziness:
    def test_counts_fraction_of_elements(self):
        rng = random.Random(7)
        edges = erdos_renyi_graph(60, 700, rng)
        stream = stream_from_edges(edges)
        budget = 80
        est = TriestFD(budget=budget, seed=8)
        est.process_stream(stream)
        # Laziness: far fewer counted elements than the stream length.
        assert est.counted_elements < len(stream) * 0.5
        assert est.counting_fraction < 0.5

    def test_lazier_than_thinkd(self):
        rng = random.Random(9)
        edges = erdos_renyi_graph(60, 700, rng)
        stream = stream_from_edges(edges)
        lazy = TriestFD(budget=80, seed=10)
        eager = ThinkD(budget=80, seed=10)
        lazy.process_stream(stream)
        eager.process_stream(stream)
        assert lazy.total_work < eager.total_work


class TestUnbiasedness:
    def test_insert_only(self):
        rng = random.Random(11)
        edges = barabasi_albert_graph(60, 4, rng)
        stream = stream_from_edges(edges)
        truth = _ground_truth(stream)
        assert truth > 0
        estimates = []
        for trial in range(300):
            est = TriestFD(budget=90, seed=500 + trial)
            estimates.append(est.process_stream(stream))
        n = len(estimates)
        mean = sum(estimates) / n
        variance = sum((v - mean) ** 2 for v in estimates) / (n - 1)
        se = math.sqrt(variance / n)
        assert abs(mean - truth) < 4 * se, (mean, truth, se)

    def test_cross_validation_with_thinkd_insert_only(self):
        """On insert-only streams both estimators are unbiased for the
        same truth, so their trial means must agree within joint error
        bars."""
        rng = random.Random(12)
        edges = barabasi_albert_graph(50, 4, rng)
        stream = stream_from_edges(edges)
        truth = _ground_truth(stream)
        assert truth > 0

        def trial_mean(make, trials=200):
            values = [
                make(seed).process_stream(stream)
                for seed in range(trials)
            ]
            mean = sum(values) / trials
            variance = sum((v - mean) ** 2 for v in values) / (trials - 1)
            return mean, math.sqrt(variance / trials)

        mean_triest, se_triest = trial_mean(
            lambda s: TriestFD(budget=80, seed=7000 + s)
        )
        mean_thinkd, se_thinkd = trial_mean(
            lambda s: ThinkD(budget=80, seed=9000 + s)
        )
        joint_se = math.sqrt(se_triest**2 + se_thinkd**2)
        assert abs(mean_triest - mean_thinkd) < 4 * joint_se
        assert abs(mean_triest - truth) < 4 * se_triest

    def test_modest_bias_under_deletions(self):
        """Under deletions the lazy design has a documented blind spot
        (no acceptances while cb = 0 < cg); the resulting bias must stay
        modest at alpha = 20% — and ThinkD must not share it."""
        rng = random.Random(12)
        edges = barabasi_albert_graph(50, 4, rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(13))
        truth = _ground_truth(stream)
        assert truth > 0
        trials = 150
        mean_triest = (
            sum(
                TriestFD(budget=80, seed=40_000 + s).process_stream(stream)
                for s in range(trials)
            )
            / trials
        )
        assert abs(mean_triest - truth) / truth < 0.15

    def test_thinkd_lower_variance_than_triest(self):
        """The paper's motivation for count-every-edge: eager updates
        cut variance versus counting only on sample transitions."""
        rng = random.Random(14)
        edges = barabasi_albert_graph(50, 4, rng)
        stream = stream_from_edges(edges)

        def trial_variance(make, trials=150):
            values = [
                make(seed).process_stream(stream)
                for seed in range(trials)
            ]
            mean = sum(values) / trials
            return sum((v - mean) ** 2 for v in values) / (trials - 1)

        var_triest = trial_variance(
            lambda s: TriestFD(budget=60, seed=20_000 + s)
        )
        var_thinkd = trial_variance(
            lambda s: ThinkD(budget=60, seed=30_000 + s)
        )
        assert var_thinkd < var_triest
