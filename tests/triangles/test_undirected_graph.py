"""Unit tests for the undirected graph substrate."""

import pytest

from repro.errors import DuplicateEdgeError, GraphError, MissingEdgeError
from repro.triangles.graph import UndirectedGraph, canonical_edge


class TestCanonicalEdge:
    def test_symmetric(self):
        assert canonical_edge(2, 1) == canonical_edge(1, 2)
        assert canonical_edge("b", "a") == ("a", "b")


class TestMutation:
    def test_add_and_query(self):
        g = UndirectedGraph()
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert g.neighbors(1) == {2}
        assert g.num_edges == 1
        assert g.num_vertices == 2

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph().add_edge(1, 1)

    def test_duplicate_rejected_in_both_orientations(self):
        g = UndirectedGraph([(1, 2)])
        with pytest.raises(DuplicateEdgeError):
            g.add_edge(1, 2)
        with pytest.raises(DuplicateEdgeError):
            g.add_edge(2, 1)

    def test_remove_either_orientation(self):
        g = UndirectedGraph([(1, 2)])
        g.remove_edge(2, 1)
        assert g.num_edges == 0
        assert g.num_vertices == 0  # zero-degree vertices dropped

    def test_remove_missing_raises(self):
        with pytest.raises(MissingEdgeError):
            UndirectedGraph().remove_edge(1, 2)

    def test_edges_yielded_once(self):
        g = UndirectedGraph([(1, 2), (2, 3), (1, 3)])
        assert sorted(g.edges()) == [(1, 2), (1, 3), (2, 3)]

    def test_degree(self):
        g = UndirectedGraph([(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.degree(99) == 0
