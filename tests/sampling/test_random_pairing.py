"""Unit tests for Random Pairing — including the uniformity property
that distinguishes it from naive reservoir sampling under deletions."""

import random
from collections import Counter

import pytest

from repro.errors import SamplingError, StreamError
from repro.sampling.random_pairing import RandomPairing
from repro.types import deletion, insertion


class TestBasics:
    def test_budget_validation(self):
        with pytest.raises(SamplingError):
            RandomPairing(1)

    def test_keeps_everything_below_budget(self):
        rp = RandomPairing(10, random.Random(0))
        for i in range(5):
            rp.insert(i, 100 + i)
        assert rp.sample.num_edges == 5
        assert rp.num_live_edges == 5
        assert rp.cb == 0 and rp.cg == 0

    def test_sample_never_exceeds_budget(self):
        rp = RandomPairing(8, random.Random(1))
        for i in range(200):
            rp.insert(i, 1000 + i)
        assert rp.sample.num_edges == 8
        assert rp.num_live_edges == 200

    def test_delete_sampled_edge_bumps_cb(self):
        rp = RandomPairing(10, random.Random(0))
        rp.insert(1, 100)
        rp.delete(1, 100)
        assert rp.cb == 1 and rp.cg == 0
        assert rp.sample.num_edges == 0
        assert rp.num_live_edges == 0

    def test_delete_unsampled_edge_bumps_cg(self):
        rp = RandomPairing(2, random.Random(3))
        for i in range(50):
            rp.insert(i, 1000 + i)
        unsampled = next(
            (i, 1000 + i)
            for i in range(50)
            if not rp.sample.contains(i, 1000 + i)
        )
        rp.delete(*unsampled)
        assert rp.cg == 1 and rp.cb == 0

    def test_delete_with_no_live_edges_raises(self):
        rp = RandomPairing(4, random.Random(0))
        with pytest.raises(StreamError):
            rp.delete(1, 2)

    def test_compensation_decrements_on_insert(self):
        rp = RandomPairing(10, random.Random(4))
        rp.insert(1, 100)
        rp.delete(1, 100)  # cb = 1
        rp.insert(2, 101)  # must pair with the bad deletion
        assert rp.cb + rp.cg == 0
        assert rp.sample.contains(2, 101)  # cb/(cb+cg) = 1 -> always in

    def test_process_dispatches(self):
        rp = RandomPairing(10, random.Random(0))
        rp.process(insertion(1, 100))
        assert rp.num_live_edges == 1
        rp.process(deletion(1, 100))
        assert rp.num_live_edges == 0


class TestDerivedQuantities:
    def test_stream_size_with_pending(self):
        rp = RandomPairing(10, random.Random(0))
        for i in range(5):
            rp.insert(i, 100 + i)
        rp.delete(0, 100)
        assert rp.stream_size_with_pending == 5  # 4 live + 1 pending

    def test_effective_sample_bound(self):
        rp = RandomPairing(3, random.Random(0))
        rp.insert(1, 100)
        assert rp.effective_sample_bound == 1
        for i in range(2, 10):
            rp.insert(i, 100 + i)
        assert rp.effective_sample_bound == 3

    def test_inclusion_probability_empty(self):
        rp = RandomPairing(4, random.Random(0))
        assert rp.inclusion_probability() == 0.0

    def test_inclusion_probability_full(self):
        rp = RandomPairing(4, random.Random(0))
        for i in range(16):
            rp.insert(i, 100 + i)
        assert rp.inclusion_probability() == pytest.approx(0.25)


class TestInvariantsUnderChurn:
    def test_sample_subset_of_live_edges(self):
        rng = random.Random(11)
        rp = RandomPairing(6, rng)
        live = set()
        next_id = 0
        for _ in range(3000):
            if live and rng.random() < 0.45:
                edge = rng.choice(sorted(live))
                rp.delete(*edge)
                live.remove(edge)
            else:
                edge = (next_id, 100000 + next_id)
                next_id += 1
                rp.insert(*edge)
                live.add(edge)
            assert rp.sample.num_edges <= rp.budget
            assert rp.num_live_edges == len(live)
            for e in rp.sample.edges():
                assert e in live

    def test_counters_never_negative(self):
        rng = random.Random(13)
        rp = RandomPairing(4, rng)
        live = []
        for i in range(2000):
            if live and rng.random() < 0.5:
                edge = live.pop(rng.randrange(len(live)))
                rp.delete(*edge)
            else:
                edge = (i, 7000 + i)
                rp.insert(*edge)
                live.append(edge)
            assert rp.cb >= 0
            assert rp.cg >= 0


class TestUniformity:
    def test_uniform_under_deletions(self):
        """The defining RP property: after a fully dynamic prefix, every
        live edge is sampled with (approximately) equal probability."""
        trials = 3000
        k = 4
        counts: Counter = Counter()
        rng = random.Random(99)
        # Workload: insert 12 edges, delete 4 of them, insert 4 more.
        inserts_a = [(i, 100 + i) for i in range(12)]
        deletes = inserts_a[2:6]
        inserts_b = [(20 + i, 200 + i) for i in range(4)]
        live_edges = [e for e in inserts_a if e not in deletes] + inserts_b
        for _ in range(trials):
            rp = RandomPairing(k, rng)
            for e in inserts_a:
                rp.insert(*e)
            for e in deletes:
                rp.delete(*e)
            for e in inserts_b:
                rp.insert(*e)
            counts.update(rp.sample.edges())
        expected = trials * k / len(live_edges)
        for edge in live_edges:
            assert abs(counts[edge] - expected) < expected * 0.2, edge
