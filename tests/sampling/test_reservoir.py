"""Unit tests for classic reservoir sampling."""

import random
from collections import Counter

import pytest

from repro.errors import SamplingError
from repro.sampling.reservoir import ReservoirSampler


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(0)

    def test_fills_up_to_capacity(self):
        r = ReservoirSampler(3, random.Random(0))
        for i in range(3):
            assert r.offer(i) is None
        assert sorted(r.items) == [0, 1, 2]
        assert r.size == 3

    def test_size_never_exceeds_capacity(self):
        r = ReservoirSampler(5, random.Random(1))
        for i in range(100):
            r.offer(i)
        assert len(r) == 5
        assert r.num_seen == 100

    def test_inclusion_probability(self):
        r = ReservoirSampler(5, random.Random(1))
        assert r.inclusion_probability == 0.0
        for i in range(20):
            r.offer(i)
        assert r.inclusion_probability == pytest.approx(0.25)

    def test_offer_reports_evicted_item(self):
        r = ReservoirSampler(1, random.Random(2))
        r.offer("a")
        outcomes = set()
        for i in range(50):
            evicted = r.offer(i)
            outcomes.add(evicted is not None)
        assert outcomes == {True, False}


class TestUniformity:
    def test_each_item_equally_likely(self):
        # Offer 20 items to a size-5 reservoir many times; each item
        # should be retained ~25% of the time.
        trials = 4000
        counts = Counter()
        rng = random.Random(42)
        for _ in range(trials):
            r = ReservoirSampler(5, rng)
            for i in range(20):
                r.offer(i)
            counts.update(r.items)
        expected = trials * 5 / 20
        for i in range(20):
            assert abs(counts[i] - expected) < expected * 0.15

    def test_iteration(self):
        r = ReservoirSampler(3, random.Random(0))
        for i in range(3):
            r.offer(i)
        assert sorted(r) == [0, 1, 2]
