"""Unit tests for the delta-coded versioned sample."""

import random

import pytest

from repro.errors import SamplingError
from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.random_pairing import RandomPairing
from repro.sampling.versioned import VersionedGraphSample
from repro.types import deletion, insertion


def _replay_with_snapshots(budget, elements, seed):
    """Reference: replay through RP, snapshotting full adjacency sets."""
    rp = RandomPairing(budget, random.Random(seed))
    snapshots = []
    for element in elements:
        snapshot = {
            v: set(rp.sample.neighbors(v))
            for e in rp.sample.edges()
            for v in e
        }
        snapshots.append(
            (snapshot, (rp.num_live_edges, rp.cb, rp.cg))
        )
        rp.process(element)
    return snapshots


class TestLifecycle:
    def test_double_begin_raises(self):
        v = VersionedGraphSample(GraphSample())
        v.begin_batch()
        with pytest.raises(SamplingError):
            v.begin_batch()

    def test_end_without_begin_raises(self):
        v = VersionedGraphSample(GraphSample())
        with pytest.raises(SamplingError):
            v.end_batch()

    def test_note_outside_batch_raises(self):
        v = VersionedGraphSample(GraphSample())
        with pytest.raises(SamplingError):
            v.note_element_state(0, 0, 0)

    def test_end_batch_reports_version_count(self):
        sample = GraphSample()
        v = VersionedGraphSample(sample)
        rp = RandomPairing(10, random.Random(0), sample=sample)
        v.begin_batch()
        for i in range(5):
            v.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.insert(i, 100 + i)
        assert v.end_batch() == 5
        assert v.num_versions == 5


class TestVersionQueries:
    def test_version_zero_is_prebatch_state(self):
        sample = GraphSample()
        sample.add_edge(1, 10)  # pre-batch edge
        v = VersionedGraphSample(sample)
        rp = RandomPairing(10, random.Random(0), sample=sample)
        rp.num_live_edges = 1
        v.begin_batch()
        v.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
        rp.insert(2, 10)
        v.end_batch()
        # Version 0 must not see the in-batch edge.
        assert v.neighbors_at(10, 0) == {1}
        assert v.degree_at(10, 0) == 1

    def test_later_versions_see_updates(self):
        sample = GraphSample()
        v = VersionedGraphSample(sample)
        rp = RandomPairing(10, random.Random(0), sample=sample)
        v.begin_batch()
        for i, el in enumerate(
            [insertion(1, 10), insertion(2, 10), deletion(1, 10)]
        ):
            v.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.process(el)
        v.end_batch()
        assert v.neighbors_at(10, 0) == set()
        assert v.neighbors_at(10, 1) == {1}
        assert v.neighbors_at(10, 2) == {1, 2}
        # Live (post-batch) state reflects the deletion.
        assert set(sample.neighbors(10)) == {2}

    def test_matches_full_snapshots_under_churn(self):
        rng = random.Random(21)
        elements = []
        live = []
        for i in range(300):
            if live and rng.random() < 0.35:
                edge = live.pop(rng.randrange(len(live)))
                elements.append(deletion(*edge))
            else:
                edge = (i, 5000 + i % 37)
                if any(e.edge == edge for e in elements):
                    edge = (i, 6000 + i)
                elements.append(insertion(*edge))
                live.append(edge)
        # Deduplicate possible collisions defensively.
        from repro.streams.dynamic import validate_stream

        validate_stream(elements)

        seed = 5
        snapshots = _replay_with_snapshots(12, elements, seed)

        sample = GraphSample()
        v = VersionedGraphSample(sample)
        rp = RandomPairing(12, random.Random(seed), sample=sample)
        v.begin_batch()
        for element in elements:
            v.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.process(element)
        v.end_batch()

        for version, (snapshot, triplet) in enumerate(snapshots):
            assert v.triplet(version) == triplet
            for vertex, neighbours in snapshot.items():
                assert v.neighbors_at(vertex, version) == neighbours

    def test_degree_sum_at(self):
        sample = GraphSample()
        v = VersionedGraphSample(sample)
        rp = RandomPairing(10, random.Random(0), sample=sample)
        v.begin_batch()
        for el in [insertion(1, 10), insertion(2, 10), insertion(1, 11)]:
            v.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.process(el)
        v.end_batch()
        # At version 2: edges (1,10), (2,10) exist.
        assert v.degree_sum_at([1, 2], 2) == 2
        assert v.degree_sum_at([10], 2) == 2

    def test_delta_count_bounded_by_batch_mutations(self):
        sample = GraphSample()
        v = VersionedGraphSample(sample)
        rp = RandomPairing(4, random.Random(1), sample=sample)
        v.begin_batch()
        m = 50
        for i in range(m):
            v.note_element_state(rp.num_live_edges, rp.cb, rp.cg)
            rp.insert(i, 900 + i)
        v.end_batch()
        # Each element triggers at most one eviction + one insertion,
        # each touching two vertices -> <= 4M delta entries (Theorem 7).
        assert v.delta_count() <= 4 * m
