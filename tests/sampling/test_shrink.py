"""Tests for mid-stream budget shrinking (memory-adaptive sampling)."""

import math
import random
from collections import Counter

import pytest

from repro.core.abacus import Abacus
from repro.errors import SamplingError
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_erdos_renyi
from repro.sampling.random_pairing import RandomPairing
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges
from repro.types import insertion


class TestShrinkMechanics:
    def test_evicts_down_to_new_budget(self):
        rp = RandomPairing(20, random.Random(0))
        for i in range(30):
            rp.insert(i, 100 + i)
        assert rp.sample.num_edges == 20
        evicted = rp.shrink_budget(8)
        assert evicted == 12
        assert rp.sample.num_edges == 8
        assert rp.budget == 8

    def test_shrink_below_fill_is_noop_eviction(self):
        rp = RandomPairing(20, random.Random(1))
        for i in range(5):
            rp.insert(i, 100 + i)
        evicted = rp.shrink_budget(10)
        assert evicted == 0
        assert rp.sample.num_edges == 5
        assert rp.budget == 10

    def test_refused_with_pending_deletions(self):
        """Shrinking amid uncompensated deletions is unsound (the
        counters' pairing semantics are tied to the old budget) and
        must be refused."""
        rp = RandomPairing(10, random.Random(2))
        for i in range(15):
            rp.insert(i, 100 + i)
        for i in range(4):
            rp.delete(i, 100 + i)
        assert not rp.can_resize
        with pytest.raises(SamplingError):
            rp.shrink_budget(5)
        # Compensating insertions restore the clean state.
        for i in range(20, 30):
            rp.insert(i, 200 + i)
            if rp.can_resize:
                break
        assert rp.can_resize
        rp.shrink_budget(5)
        assert rp.budget == 5

    def test_rejects_growth(self):
        rp = RandomPairing(10, random.Random(3))
        with pytest.raises(SamplingError):
            rp.shrink_budget(11)

    def test_rejects_tiny_budget(self):
        rp = RandomPairing(10, random.Random(4))
        with pytest.raises(SamplingError):
            rp.shrink_budget(1)

    def test_sample_stays_subset_of_live(self):
        rng = random.Random(5)
        rp = RandomPairing(30, random.Random(6))
        live = set()
        for i in range(60):
            rp.insert(i, 100 + i % 13)
            live.add((i, 100 + i % 13))
        rp.shrink_budget(10)
        assert set(rp.sample.edges()) <= live


class TestShrinkUniformity:
    def test_post_shrink_sample_is_uniform(self):
        """Each live edge should survive shrinking with roughly equal
        frequency across many independent runs."""
        n = 40
        target = 10
        hits = Counter()
        trials = 3000
        for t in range(trials):
            rp = RandomPairing(n, random.Random(t))
            for i in range(n):
                rp.insert(i, 100 + i)
            rp.shrink_budget(target)
            for edge in rp.sample.edges():
                hits[edge] += 1
        expected = trials * target / n
        for i in range(n):
            observed = hits[(i, 100 + i)]
            # 5-sigma binomial tolerance.
            sigma = math.sqrt(
                trials * (target / n) * (1 - target / n)
            )
            assert abs(observed - expected) < 5 * sigma, (i, observed)


class TestAbacusShrink:
    def test_estimate_survives_shrink(self):
        est = Abacus(budget=100, seed=7)
        for element in [
            insertion("u", "v"),
            insertion("u", "w"),
            insertion("x", "v"),
            insertion("x", "w"),
        ]:
            est.process(element)
        before = est.estimate
        est.shrink_budget(50)
        assert est.estimate == before
        assert est.budget == 50

    def test_unbiased_across_a_shrink(self):
        """Shrinking mid-stream must not bias the final estimate."""
        rng = random.Random(8)
        edges = bipartite_erdos_renyi(40, 40, 500, rng)
        stream = make_fully_dynamic(edges, 0.2, random.Random(9))
        truth = ground_truth_final_count(stream)
        assert truth > 0
        half = len(stream) // 2
        estimates = []
        for trial in range(250):
            est = Abacus(budget=150, seed=5000 + trial)
            shrunk = False
            for index, element in enumerate(stream):
                est.process(element)
                # Shrink at the first clean point past the midpoint.
                if not shrunk and index >= half and est.can_resize:
                    est.shrink_budget(75)
                    shrunk = True
            assert shrunk
            estimates.append(est.estimate)
        n = len(estimates)
        mean = sum(estimates) / n
        variance = sum((v - mean) ** 2 for v in estimates) / (n - 1)
        se = math.sqrt(variance / n)
        assert abs(mean - truth) < 4 * max(se, 1e-12), (mean, truth, se)

    def test_shrunk_estimator_keeps_working(self):
        rng = random.Random(10)
        edges = bipartite_erdos_renyi(30, 30, 300, rng)
        stream = stream_from_edges(edges)
        est = Abacus(budget=120, seed=11)
        for element in stream[:150]:
            est.process(element)
        est.shrink_budget(40)
        for element in stream[150:]:
            est.process(element)
        assert est.memory_edges <= 40
        assert est.estimate > 0
