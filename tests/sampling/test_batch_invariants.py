"""Sampler invariants and batch-wrapper equivalence under random workloads.

Property-style checks over 1k-operation random dynamic workloads:

* the reservoir never exceeds its capacity, and ``offer_batch`` with
  the default ``random.Random`` source is bit-identical to per-element
  ``offer`` (with a NumPy ``Generator`` it is deterministic per seed
  and bound-respecting, but draws in bulk);
* Random Pairing's compensation counters never go negative and the
  sample never exceeds the budget — checked after *every* element,
  through both the per-element and the batched path;
* ``RandomPairing.process_batch`` leaves sampler, sample, and RNG in
  exactly the state the per-element path reaches, and its mutation log
  replays to the same sample;
* estimators' ``memory_edges`` agrees with the actual stored-edge
  count throughout the workload;
* the NumPy adjacency mirror stays consistent with the sample it
  tracks, both incrementally and after a stale rebuild.
"""

from __future__ import annotations

import random

import pytest

from repro.api import build_estimator
from repro.graph.generators import bipartite_erdos_renyi
from repro.sampling.adjacency_sample import GraphSample
from repro.sampling.ndadjacency import NUMPY_AVAILABLE, NdAdjacency
from repro.sampling.random_pairing import RandomPairing
from repro.sampling.reservoir import ReservoirSampler
from repro.streams.dynamic import make_fully_dynamic

WORKLOAD_SEEDS = (11, 29, 47)


def _workload(seed, alpha=0.3, n_edges=800):
    """~1k-operation random fully dynamic stream."""
    edges = bipartite_erdos_renyi(50, 50, n_edges, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=alpha, rng=random.Random(seed + 1))
    )


# ----------------------------------------------------------------------
# Reservoir
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
@pytest.mark.parametrize("capacity", [1, 7, 64])
def test_reservoir_size_never_exceeds_capacity(seed, capacity):
    rng = random.Random(seed)
    sampler = ReservoirSampler(capacity, random.Random(seed))
    offered = 0
    while offered < 1000:
        batch = [offered + i for i in range(rng.randint(1, 37))]
        offered += len(batch)
        sampler.offer_batch(batch)
        assert sampler.size <= capacity
        assert sampler.size == min(capacity, sampler.num_seen)
        assert sampler.num_seen == offered


@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
def test_reservoir_offer_batch_bit_identical_with_random_random(seed):
    one = ReservoirSampler(16, random.Random(seed))
    two = ReservoirSampler(16, random.Random(seed))
    items = list(range(1000))
    evicted_one = []
    for item in items:
        replaced = one.offer(item)
        if replaced is not None:
            evicted_one.append(replaced)
    rng = random.Random(seed + 5)
    evicted_two = []
    position = 0
    while position < len(items):
        size = rng.randint(1, 41)
        evicted_two.extend(two.offer_batch(items[position : position + size]))
        position += size
    assert one.items == two.items
    assert evicted_one == evicted_two
    assert one.num_seen == two.num_seen
    # The RNG consumed exactly the same draws.
    assert one._rng.getstate() == two._rng.getstate()


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
def test_reservoir_numpy_generator_batch_path(seed):
    import numpy as np

    runs = []
    for _ in range(2):
        sampler = ReservoirSampler(32, np.random.default_rng(seed))
        evicted = []
        rng = random.Random(seed)
        position = 0
        items = list(range(1000))
        while position < len(items):
            size = rng.randint(1, 50)
            chunk = items[position : position + size]
            evicted.extend(sampler.offer_batch(chunk))
            position += size
            assert sampler.size <= sampler.capacity
        runs.append((list(sampler.items), evicted, sampler.num_seen))
    # Deterministic per seed, and sampled items are genuinely offered.
    assert runs[0] == runs[1]
    assert set(runs[0][0]) <= set(range(1000))
    # Per-element offers also work on a Generator-backed sampler.
    scalar = ReservoirSampler(8, np.random.default_rng(seed))
    for item in range(100):
        scalar.offer(item)
    assert scalar.size == 8 and scalar.num_seen == 100


# ----------------------------------------------------------------------
# Random Pairing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
@pytest.mark.parametrize("budget", [2, 16, 200])
def test_rp_counters_never_negative_per_element(seed, budget):
    sampler = RandomPairing(budget, random.Random(seed))
    for element in _workload(seed):
        sampler.process(element)
        assert sampler.cb >= 0
        assert sampler.cg >= 0
        assert sampler.sample.num_edges <= budget
        assert sampler.num_live_edges >= 0


@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
@pytest.mark.parametrize("budget", [2, 16, 200])
def test_rp_counters_never_negative_batched(seed, budget):
    sampler = RandomPairing(budget, random.Random(seed))
    stream = _workload(seed)
    rng = random.Random(seed + 9)
    position = 0
    while position < len(stream):
        size = min(rng.choice([1, 5, 33, 128]), len(stream) - position)
        result = sampler.process_batch(stream[position : position + size])
        position += size
        assert sampler.cb >= 0 and sampler.cg >= 0
        assert sampler.sample.num_edges <= budget
        # Pre-state triplets are per element and never negative either.
        assert len(result.pre_live) == size
        assert all(value >= 0 for value in result.pre_cb)
        assert all(value >= 0 for value in result.pre_cg)


@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
@pytest.mark.parametrize("budget", [3, 50, 400])
def test_rp_process_batch_bit_identical_to_per_element(seed, budget):
    stream = _workload(seed)
    one = RandomPairing(budget, random.Random(seed))
    pre_states = []
    for element in stream:
        pre_states.append((one.num_live_edges, one.cb, one.cg))
        one.process(element)
    two = RandomPairing(budget, random.Random(seed))
    result = two.process_batch(stream)
    assert two.state_to_dict() == one.state_to_dict()
    assert one.get_rng_state() == two.get_rng_state()
    assert (
        list(zip(result.pre_live, result.pre_cb, result.pre_cg)) == pre_states
    )


@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
def test_rp_mutation_log_replays_the_sample(seed):
    sampler = RandomPairing(64, random.Random(seed))
    result = sampler.process_batch(_workload(seed))
    replay = GraphSample()
    for _index, op, u, v in result.mutations:
        if op == "+":
            replay.add_edge(u, v)
        else:
            assert replay.remove_edge(u, v)
    assert sorted(replay.edges()) == sorted(sampler.sample.edges())


# ----------------------------------------------------------------------
# memory_edges agreement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
@pytest.mark.parametrize(
    "spec",
    [
        "abacus:budget=64,seed=2",
        "parabacus:budget=64,seed=2,batch_size=100",
        "exact",
    ],
)
def test_memory_edges_agrees_with_stored_edges(seed, spec):
    estimator = build_estimator(spec)
    stream = _workload(seed)
    for start in range(0, len(stream), 97):
        estimator.process_batch(stream[start : start + 97])
        if hasattr(estimator, "sampler"):
            stored = estimator.sampler.sample.num_edges
            assert len(estimator.sampler.sample.edges()) == stored
        else:  # the exact oracle stores the whole graph
            stored = estimator.graph.num_edges
        assert estimator.memory_edges == stored


# ----------------------------------------------------------------------
# NumPy mirror consistency
# ----------------------------------------------------------------------
@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
def test_mirror_tracks_sample_incrementally(seed):
    sampler = RandomPairing(80, random.Random(seed))
    mirror = NdAdjacency()
    mirror.sync(sampler.sample)
    for element in _workload(seed):
        mirror.apply(sampler.process(element))
    _assert_mirror_matches(mirror, sampler.sample)
    assert mirror.version == sampler.sample.version


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
def test_mirror_rebuilds_after_going_stale(seed=13):
    sampler = RandomPairing(80, random.Random(seed))
    mirror = NdAdjacency()
    stream = _workload(seed)
    for element in stream[:400]:
        sampler.process(element)  # mirror not watching: goes stale
    mirror.sync(sampler.sample)
    _assert_mirror_matches(mirror, sampler.sample)
    for element in stream[400:]:
        mirror.apply(sampler.process(element))
    _assert_mirror_matches(mirror, sampler.sample)


def _assert_mirror_matches(mirror, sample):
    seen = set()
    for u, v in sample.edges():
        seen.add(u)
        seen.add(v)
        uid, vid = mirror.id_of(u), mirror.id_of(v)
        assert uid is not None and vid is not None
        assert vid in mirror.row(uid).tolist()
        assert uid in mirror.row(vid).tolist()
    for vertex in seen:
        vid = mirror.id_of(vertex)
        row = mirror.row(vid)
        assert row.shape[0] == sample.degree(vertex)
        assert int(mirror.degrees[vid]) == sample.degree(vertex)
        expected = sorted(
            mirror.id_of(neighbor) for neighbor in sample.neighbors(vertex)
        )
        assert row.tolist() == expected
