"""Unit tests for the adjacency-list GraphSample."""

import random

import pytest

from repro.errors import SamplingError
from repro.sampling.adjacency_sample import GraphSample


class TestBasics:
    def test_empty(self):
        s = GraphSample()
        assert s.num_edges == 0
        assert len(s) == 0
        assert not s.contains(1, 2)

    def test_add_and_query(self):
        s = GraphSample()
        s.add_edge(1, 10)
        assert s.contains(1, 10)
        assert (1, 10) in s
        assert s.neighbors(1) == {10}
        assert s.neighbors(10) == {1}
        assert s.degree(1) == 1

    def test_duplicate_add_raises(self):
        s = GraphSample()
        s.add_edge(1, 10)
        with pytest.raises(SamplingError):
            s.add_edge(1, 10)

    def test_remove_present(self):
        s = GraphSample()
        s.add_edge(1, 10)
        assert s.remove_edge(1, 10) is True
        assert s.num_edges == 0
        assert s.neighbors(1) == frozenset()

    def test_remove_absent_returns_false(self):
        s = GraphSample()
        assert s.remove_edge(1, 10) is False

    def test_degree_sum(self):
        s = GraphSample()
        s.add_edge(1, 10)
        s.add_edge(1, 11)
        s.add_edge(2, 10)
        assert s.degree_sum([1, 2]) == 3
        assert s.degree_sum([10, 11]) == 3
        assert s.degree_sum([]) == 0

    def test_edges_snapshot(self):
        s = GraphSample()
        s.add_edge(1, 10)
        s.add_edge(2, 11)
        assert set(s.edges()) == {(1, 10), (2, 11)}

    def test_clear(self):
        s = GraphSample()
        s.add_edge(1, 10)
        s.clear()
        assert s.num_edges == 0


class TestEviction:
    def test_evict_from_empty_raises(self):
        with pytest.raises(SamplingError):
            GraphSample().evict_random_edge(random.Random(0))

    def test_evict_removes_one(self):
        s = GraphSample()
        for i in range(10):
            s.add_edge(i, 100 + i)
        evicted = s.evict_random_edge(random.Random(1))
        assert s.num_edges == 9
        assert evicted not in s

    def test_eviction_is_uniform(self):
        # Chi-squared-style sanity: each of 5 edges evicted ~1/5 of runs.
        counts = {i: 0 for i in range(5)}
        trials = 5000
        rng = random.Random(7)
        for _ in range(trials):
            s = GraphSample()
            for i in range(5):
                s.add_edge(i, 100 + i)
            evicted = s.evict_random_edge(rng)
            counts[evicted[0]] += 1
        for c in counts.values():
            assert abs(c - trials / 5) < trials * 0.05

    def test_index_consistent_after_mixed_mutations(self):
        rng = random.Random(3)
        s = GraphSample()
        live = set()
        for step in range(2000):
            if live and rng.random() < 0.4:
                edge = rng.choice(sorted(live))
                s.remove_edge(*edge)
                live.remove(edge)
            elif live and rng.random() < 0.1:
                evicted = s.evict_random_edge(rng)
                live.remove(evicted)
            else:
                edge = (rng.randrange(50), 100 + rng.randrange(50))
                if edge not in live:
                    s.add_edge(*edge)
                    live.add(edge)
        assert set(s.edges()) == live
        assert s.num_edges == len(live)


class TestRecorder:
    def test_recorder_sees_all_mutations(self):
        events = []
        s = GraphSample(recorder=lambda op, u, v: events.append((op, u, v)))
        s.add_edge(1, 10)
        s.remove_edge(1, 10)
        assert events == [("+", 1, 10), ("-", 1, 10)]

    def test_recorder_sees_eviction(self):
        events = []
        s = GraphSample(recorder=lambda op, u, v: events.append((op, u, v)))
        s.add_edge(1, 10)
        s.evict_random_edge(random.Random(0))
        assert events[-1] == ("-", 1, 10)

    def test_recorder_detachable(self):
        events = []
        s = GraphSample(recorder=lambda op, u, v: events.append(op))
        s.add_edge(1, 10)
        s.recorder = None
        s.add_edge(2, 11)
        assert events == ["+"]
