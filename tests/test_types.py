"""Unit tests for the core value types."""

import pytest

from repro.errors import (
    DuplicateEdgeError,
    EstimatorError,
    GraphError,
    MissingEdgeError,
    PartitionError,
    ReproError,
    SamplingError,
    StreamError,
)
from repro.types import (
    Op,
    Side,
    StreamElement,
    TimedEdge,
    deletion,
    insertion,
    timed_deletion,
    timed_insertion,
)


class TestOp:
    def test_signs(self):
        assert Op.INSERT.sign == 1
        assert Op.DELETE.sign == -1

    def test_from_symbol(self):
        assert Op.from_symbol("+") is Op.INSERT
        assert Op.from_symbol("-") is Op.DELETE

    def test_from_symbol_invalid(self):
        with pytest.raises(ValueError):
            Op.from_symbol("x")

    def test_values_match_stream_format(self):
        assert Op.INSERT.value == "+"
        assert Op.DELETE.value == "-"


class TestSide:
    def test_other(self):
        assert Side.LEFT.other() is Side.RIGHT
        assert Side.RIGHT.other() is Side.LEFT


class TestStreamElement:
    def test_defaults_to_insertion(self):
        assert StreamElement(1, 2).op is Op.INSERT

    def test_edge_property(self):
        assert StreamElement(1, 2).edge == (1, 2)

    def test_predicates(self):
        assert insertion(1, 2).is_insertion
        assert not insertion(1, 2).is_deletion
        assert deletion(1, 2).is_deletion

    def test_inverted(self):
        assert insertion(1, 2).inverted() == deletion(1, 2)
        assert deletion(1, 2).inverted() == insertion(1, 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            insertion(1, 2).u = 5

    def test_hashable_and_equal(self):
        assert insertion(1, 2) == insertion(1, 2)
        assert insertion(1, 2) != deletion(1, 2)
        assert len({insertion(1, 2), insertion(1, 2)}) == 1


class TestTimedEdge:
    def test_is_a_stream_element(self):
        element = timed_insertion("u", "v", 3.5)
        assert isinstance(element, StreamElement)
        assert element.edge == ("u", "v")
        assert element.is_insertion
        assert element.time == 3.5

    def test_constructors(self):
        assert timed_insertion(1, 2, 0.5).op is Op.INSERT
        assert timed_deletion(1, 2, 0.5).op is Op.DELETE

    def test_frozen_and_hashable(self):
        element = TimedEdge("u", "v", Op.INSERT, 1.0)
        with pytest.raises(AttributeError):
            element.time = 2.0
        assert element == TimedEdge("u", "v", Op.INSERT, 1.0)
        assert element != TimedEdge("u", "v", Op.INSERT, 2.0)

    def test_equality_distinguishes_from_untimed(self):
        # A timestamp is part of identity; a plain element has none.
        assert timed_insertion("u", "v", 0.0) != insertion("u", "v")

    def test_inverted_preserves_type_and_timestamp(self):
        element = timed_insertion("u", "v", 4.5)
        undone = element.inverted()
        assert isinstance(undone, TimedEdge)
        assert undone == timed_deletion("u", "v", 4.5)
        assert undone.inverted() == element


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            GraphError,
            PartitionError,
            DuplicateEdgeError,
            MissingEdgeError,
            StreamError,
            SamplingError,
            EstimatorError,
        ):
            assert issubclass(cls, ReproError)

    def test_graph_errors_grouped(self):
        for cls in (PartitionError, DuplicateEdgeError, MissingEdgeError):
            assert issubclass(cls, GraphError)
