"""Unit tests for the core value types."""

import pytest

from repro.errors import (
    DuplicateEdgeError,
    EstimatorError,
    GraphError,
    MissingEdgeError,
    PartitionError,
    ReproError,
    SamplingError,
    StreamError,
)
from repro.types import Op, Side, StreamElement, deletion, insertion


class TestOp:
    def test_signs(self):
        assert Op.INSERT.sign == 1
        assert Op.DELETE.sign == -1

    def test_from_symbol(self):
        assert Op.from_symbol("+") is Op.INSERT
        assert Op.from_symbol("-") is Op.DELETE

    def test_from_symbol_invalid(self):
        with pytest.raises(ValueError):
            Op.from_symbol("x")

    def test_values_match_stream_format(self):
        assert Op.INSERT.value == "+"
        assert Op.DELETE.value == "-"


class TestSide:
    def test_other(self):
        assert Side.LEFT.other() is Side.RIGHT
        assert Side.RIGHT.other() is Side.LEFT


class TestStreamElement:
    def test_defaults_to_insertion(self):
        assert StreamElement(1, 2).op is Op.INSERT

    def test_edge_property(self):
        assert StreamElement(1, 2).edge == (1, 2)

    def test_predicates(self):
        assert insertion(1, 2).is_insertion
        assert not insertion(1, 2).is_deletion
        assert deletion(1, 2).is_deletion

    def test_inverted(self):
        assert insertion(1, 2).inverted() == deletion(1, 2)
        assert deletion(1, 2).inverted() == insertion(1, 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            insertion(1, 2).u = 5

    def test_hashable_and_equal(self):
        assert insertion(1, 2) == insertion(1, 2)
        assert insertion(1, 2) != deletion(1, 2)
        assert len({insertion(1, 2), insertion(1, 2)}) == 1


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            GraphError,
            PartitionError,
            DuplicateEdgeError,
            MissingEdgeError,
            StreamError,
            SamplingError,
            EstimatorError,
        ):
            assert issubclass(cls, ReproError)

    def test_graph_errors_grouped(self):
        for cls in (PartitionError, DuplicateEdgeError, MissingEdgeError):
            assert issubclass(cls, GraphError)
