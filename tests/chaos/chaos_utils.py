"""Shared machinery for the fault-injection chaos suite.

The suite proves one sentence: **killing the process at any declared
fault point during a topology change leaves a durable directory that
recovers bit-identically to an uninterrupted run** — landing on
exactly one side of the reshard cut, never between.

A "crash" here is :class:`repro.faults.SimulatedCrash` unwinding out
of an armed :func:`repro.faults.fault_point` and the live session
being *abandoned* (never closed): the same observable sequence a
``kill -9`` leaves behind, namely only the on-disk state.  The torn-
*file* side of the story is PR-5's kill-at-every-byte matrix in
``tests/store/test_recovery.py``, whose fingerprinting this reuses.

``CHAOS_FULL=1`` (the nightly CI job) runs the full spec × fault-point
matrix; the default run keeps a quick deterministic sample so the
harness rides along in tier-1.
"""

import importlib.util
import os
import pathlib
import time

import pytest

from repro.api import open_session
from repro.faults import SimulatedCrash, crash_at

#: Full matrix under CHAOS_FULL=1 (nightly); quick sample otherwise.
CHAOS_FULL = os.environ.get("CHAOS_FULL") == "1"

#: The reshardable durable specs: (id, spec, shards).  ABACUS is the
#: always-on sample; the rest join under CHAOS_FULL.
RESHARD_SPECS = [
    ("abacus", "abacus:budget=48,seed=11", 2),
    ("parabacus", "parabacus:budget=64,seed=11,batch_size=7", 2),
    ("abacus-3shard", "abacus:budget=32,seed=5", 3),
]

#: Fault points during ``Session.reshard`` on a durable session, with
#: the side of the cut recovery must land on: "pre" (the reshard never
#: happened) or "post" (the new topology is committed).  The flip
#: happens exactly when the post-reshard snapshot hits the disk.
RESHARD_CUT = [
    ("reshard.prepared", "pre"),
    ("reshard.built", "pre"),
    ("reshard.swapped", "pre"),
    ("reshard.pre_checkpoint", "pre"),
    ("checkpoint.synced", "pre"),
    ("checkpoint.snapshotted", "post"),
    ("checkpoint.rotated", "post"),
]

#: Fault points that never fire inside ``Session.reshard`` — they
#: belong to tenant-catalog admin paths and are crashed-and-recovered
#: by ``tests/tenancy/test_tenant_recovery.py`` instead.  Listing a
#: point here is still a stance: the coverage test demands every
#: declared fault point appear in exactly one of the two tables.
RESHARD_IRRELEVANT = frozenset(
    {
        "tenant.create_committed",
        "tenant.drop_committed",
    }
)


def sampled(matrix, keep=1):
    """The full ``matrix`` under CHAOS_FULL, else its first ``keep``."""
    return matrix if CHAOS_FULL else matrix[:keep]


def wait_until(predicate, timeout=10.0, interval=0.01):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(
        f"condition not reached within {timeout}s: {predicate}"
    )


def load_recovery_harness():
    """tests/store/test_recovery.py, loaded by path (see
    tests/cluster/cluster_utils.py for why)."""
    path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "store"
        / "test_recovery.py"
    )
    spec = importlib.util.spec_from_file_location(
        "repro_chaos_recovery_harness", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_recovery = load_recovery_harness()
fingerprint = _recovery._fingerprint


def build_durable(directory, spec, stream, *, shards, checkpoint_at=None):
    """Ingest ``stream`` into a fresh sharded durable session.

    The session is synced and **abandoned** (not closed) — chaos runs
    continue from the on-disk state alone.
    """
    session = open_session(spec, shards=shards, durable_dir=directory)
    if checkpoint_at:
        session.ingest(stream[:checkpoint_at])
        session.checkpoint()
        session.ingest(stream[checkpoint_at:])
    else:
        session.ingest(stream)
    session.sync()
    return session


def crash_reshard(directory, point, new_shards, **reshard_kwargs):
    """Recover ``directory``, reshard with a crash armed at ``point``.

    Returns after the simulated crash; the session is abandoned, so
    the only surviving state is on disk — exactly like a real kill.
    """
    session = open_session(durable_dir=directory)
    with pytest.raises(SimulatedCrash) as failure:
        with crash_at(point):
            session.reshard(new_shards, **reshard_kwargs)
    assert failure.value.point == point
    return session  # abandoned by the caller; never closed


def recover_fingerprint(directory):
    """Open the durable dir; return (topology, elements, fingerprint)."""
    session = open_session(durable_dir=directory)
    try:
        return session.topology, session.elements, fingerprint(session)
    finally:
        session.close()
