"""Chaos for the process backend: dead workers and crashed reshards.

A shard worker process dying mid-stream must surface as a loud
:class:`~repro.errors.EstimatorError` on the next command — never a
hang, never a silently wrong estimate — and the coordinator must stay
closable.  For a **durable** session the recovery story then takes
over: reopening the directory rebuilds the workers from the last
durable state bit-identically.  A reshard that crashes while its new
process-backend workers are already running must reap them all.
"""

import json
import multiprocessing
import random

import pytest
from chaos_utils import build_durable, fingerprint, sampled, wait_until

from repro.api import open_session
from repro.errors import EstimatorError
from repro.faults import SimulatedCrash, crash_at
from repro.graph.generators import bipartite_erdos_renyi
from repro.shard.engine import ShardedEstimator
from repro.streams import make_fully_dynamic
from repro.types import insertion

SPEC = "abacus:budget=48,seed=11"


def _stream(seed=3):
    edges = bipartite_erdos_renyi(12, 12, 50, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.25, rng=random.Random(seed + 1))
    )


def _alive_workers():
    return sum(
        1 for process in multiprocessing.active_children()
        if process.is_alive()
    )


def _backend_blind_fingerprint(session):
    """The recovery fingerprint minus the backend name — the backend
    is an execution detail, every other byte must match."""
    state = session.snapshot()["state"]
    state.pop("backend")
    return json.dumps(
        {"estimate": session.estimate, "state": state}, sort_keys=True
    )


@pytest.mark.chaos
@pytest.mark.parametrize("victim", sampled([0, 1], keep=1))
def test_killed_worker_fails_loud_and_closes_clean(victim):
    engine = ShardedEstimator(SPEC, shards=2, backend="process")
    try:
        engine.process_batch(_stream())
        workers = engine._backend.processes
        assert len(workers) == 2
        workers[victim].kill()
        workers[victim].join(timeout=5.0)
        with pytest.raises(EstimatorError, match="worker"):
            # A batch spanning every shard must raise — never hang,
            # never return a fabricated estimate.  (Two calls cover
            # the race where the first send lands in the dying pipe's
            # OS buffer.)
            for attempt in range(2):
                engine.process_batch(
                    [insertion(f"post-kill-{attempt}-{i}", f"pv{i}")
                     for i in range(8)]
                )
    finally:
        engine.close()  # must not hang on the corpse


@pytest.mark.chaos
def test_durable_restart_after_worker_kill_is_bit_identical(tmp_path):
    """kill -9 a shard worker, abandon the coordinator, reopen the
    directory: the rebuilt cluster is bit-identical to a run that
    never crashed."""
    baseline = _alive_workers()
    stream = _stream(seed=5)
    reference_dir = tmp_path / "reference"
    session = build_durable(
        reference_dir, SPEC, stream, shards=2, checkpoint_at=25
    )
    reference = _backend_blind_fingerprint(session)
    session.close()

    chaos_dir = tmp_path / "chaos"
    session = open_session(
        SPEC, shards=2, backend="process", durable_dir=chaos_dir
    )
    session.ingest(stream[:25])
    session.checkpoint()
    session.ingest(stream[25:])
    session.sync()
    engine = session.estimator
    engine._backend.processes[0].kill()
    with pytest.raises(EstimatorError):
        for attempt in range(2):
            session.ingest(
                [insertion(f"lost-{attempt}-{i}", f"lv{i}")
                 for i in range(8)]
            )
    # Abandon the wounded session (simulated coordinator death) and
    # recover from disk: the post-kill ingest attempts never became
    # durable, so the state is the pre-kill stream, exactly.
    recovered = open_session(durable_dir=chaos_dir)
    assert recovered.elements == len(stream)
    assert _backend_blind_fingerprint(recovered) == reference
    # The recovered session reshards fine (serial replay semantics).
    recovered.reshard(4)
    assert recovered.topology["shards"] == 4
    recovered.close()
    # The wounded session stays abandoned (a clean close would flush
    # through the dead pipe); reap its surviving worker directly.
    engine._backend.close()
    wait_until(lambda: _alive_workers() <= baseline)


@pytest.mark.chaos
def test_crashed_reshard_reaps_its_new_workers():
    """A reshard that dies after building process-backend workers
    leaves no orphans and keeps the old topology fully live."""
    baseline = _alive_workers()
    engine = ShardedEstimator(SPEC, shards=2, backend="process")
    try:
        engine.process_batch(_stream(seed=7))
        assert _alive_workers() == baseline + 2
        before = json.dumps(engine.state_to_dict(), sort_keys=True)
        with pytest.raises(SimulatedCrash):
            with crash_at("reshard.built"):
                engine.reshard(4, backend="process")
        # The 4 freshly spawned workers were reaped by the unwind...
        wait_until(lambda: _alive_workers() == baseline + 2)
        # ...and the old 2-shard topology never noticed.
        assert engine.num_shards == 2
        assert json.dumps(
            engine.state_to_dict(), sort_keys=True
        ) == before
        engine.process_batch([insertion("survivor-u", "survivor-v")])
    finally:
        engine.close()
    wait_until(lambda: _alive_workers() <= baseline)


@pytest.mark.chaos
def test_reshard_across_backends_matches_serial(tmp_path):
    """serial -> process reshard lands on the same durable state as
    serial -> serial (the backend is an execution detail)."""
    baseline = _alive_workers()
    stream = _stream(seed=15)
    fingerprints = {}
    for backend in ("serial", "process"):
        directory = tmp_path / backend
        session = build_durable(directory, SPEC, stream, shards=2)
        session.reshard(3, backend=backend)
        session.close()
        recovered = open_session(durable_dir=directory)
        state = recovered.snapshot()["state"]
        state.pop("backend")
        fingerprints[backend] = json.dumps(
            {"estimate": recovered.estimate, "state": state},
            sort_keys=True,
        )
        recovered.close()
    assert fingerprints["serial"] == fingerprints["process"]
    wait_until(lambda: _alive_workers() <= baseline)
