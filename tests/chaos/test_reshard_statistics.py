"""Statistical accuracy survives mid-stream topology changes.

The chaos matrix proves reshards are *crash-safe*; this file proves
they are *statistically harmless*.  Replaying the residue into fresh
shard estimators redraws their samples, so a resharded engine is a
different random variable than an undisturbed one — but it must stay
an unbiased one (Theorem 1 through the K-correction), and at a single
shard the replay is literally a fresh ABACUS run over the arrival
order, so Theorem 2's variance bound applies verbatim.

Trial counts follow the suite convention: a quick sample by default,
the full population under ``CHAOS_FULL=1``.
"""

import math
import random

import pytest
from chaos_utils import CHAOS_FULL

from repro.core.probabilities import variance_upper_bound
from repro.experiments.runner import ground_truth_final_count
from repro.graph.generators import bipartite_erdos_renyi
from repro.shard.engine import ShardedEstimator
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges

TRIALS = 300 if CHAOS_FULL else 120
BUDGET = 100


def _dynamic_stream(seed):
    edges = bipartite_erdos_renyi(40, 30, 400, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.25, rng=random.Random(seed + 1))
    )


def _mean_and_se(values):
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance / n), variance


def _resharded_trials(stream, *, shards, new_shards, trials, seed_base=0):
    """Final estimates of engines resharded halfway through ``stream``."""
    cut = len(stream) // 2
    estimates = []
    for trial in range(trials):
        engine = ShardedEstimator(
            f"abacus:budget={BUDGET}",
            shards=shards,
            seed=seed_base + trial,
            salt=trial,
        )
        engine.process_batch(stream[:cut])
        engine.reshard(new_shards)
        engine.process_batch(stream[cut:])
        estimates.append(engine.estimate)
        engine.close()
    return estimates


@pytest.mark.chaos
@pytest.mark.parametrize(
    "shards,new_shards",
    [(2, 4)] + ([(4, 2), (3, 3)] if CHAOS_FULL else []),
    ids=lambda value: str(value),
)
def test_mid_stream_reshard_is_unbiased(shards, new_shards):
    """Split, merge, and same-K remix all keep E[estimate] = truth."""
    stream = _dynamic_stream(seed=21)
    truth = ground_truth_final_count(stream)
    assert truth > 0
    estimates = _resharded_trials(
        stream, shards=shards, new_shards=new_shards, trials=TRIALS
    )
    mean, se, _ = _mean_and_se(estimates)
    # Within 4 standard errors (false-failure probability ~1e-4),
    # matching tests/core/test_unbiasedness.py.
    assert se > 0
    assert abs(mean - truth) < 4 * se, (mean, truth, se)


@pytest.mark.chaos
def test_reshard_does_not_inflate_variance():
    """The resharded population's variance stays comparable to the
    undisturbed topology's — replay redraws samples, it does not
    degrade them."""
    stream = _dynamic_stream(seed=23)
    resharded = _resharded_trials(
        stream, shards=2, new_shards=4, trials=TRIALS, seed_base=1000
    )
    static = []
    for trial in range(TRIALS):
        engine = ShardedEstimator(
            f"abacus:budget={BUDGET}",
            shards=4,
            seed=1000 + trial,
            salt=trial,
        )
        engine.process_batch(stream)
        static.append(engine.estimate)
        engine.close()
    _, _, resharded_variance = _mean_and_se(resharded)
    _, _, static_variance = _mean_and_se(static)
    assert static_variance > 0
    # Generous slack for the variance-ratio sampling noise at ~100
    # trials; a replay bug that double-counts or drops samples blows
    # far past this.
    assert resharded_variance < 3.0 * static_variance, (
        resharded_variance,
        static_variance,
    )


@pytest.mark.chaos
def test_single_shard_remix_respects_theorem2():
    """At K = 1 an insertion-only remix replays the exact arrival
    order, so the resharded engine *is* a fresh ABACUS run and the
    paper's Theorem 2 variance bound applies verbatim."""
    edges = bipartite_erdos_renyi(40, 30, 400, random.Random(25))
    stream = list(stream_from_edges(edges))
    truth = ground_truth_final_count(stream)
    assert truth > 0
    estimates = _resharded_trials(
        stream, shards=1, new_shards=1, trials=TRIALS, seed_base=2000
    )
    mean, se, sample_variance = _mean_and_se(estimates)
    assert abs(mean - truth) < 4 * se, (mean, truth, se)
    bound = variance_upper_bound(float(truth), len(edges), BUDGET)
    # Same 2x sampling slack as tests/core/test_unbiasedness.py.
    assert sample_variance < 2.0 * bound, (sample_variance, bound)
