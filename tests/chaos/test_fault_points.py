"""The fault-point registry is complete, exact, and cheap when idle.

Every ``fault_point("...")`` call site in production code must name a
key declared in :data:`repro.faults.FAULT_POINTS` — and every declared
key must have at least one call site.  A point that exists only in
code silently escapes the chaos matrix; a point that exists only in
the registry is dead weight that pretends to be covered.
"""

import pathlib
import re

import pytest

from repro import faults
from repro.faults import (
    FAULT_POINTS,
    SimulatedCrash,
    armed,
    crash_at,
    fault_point,
)

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

_CALL = re.compile(r"""fault_point\(\s*['"]([^'"]+)['"]\s*\)""")


def _call_sites():
    sites = {}
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "faults.py":
            continue  # the registry module itself (docs/examples)
        for name in _CALL.findall(path.read_text()):
            sites.setdefault(name, []).append(
                str(path.relative_to(SRC.parent.parent))
            )
    return sites


def test_every_call_site_is_declared():
    undeclared = {
        name: paths
        for name, paths in _call_sites().items()
        if name not in FAULT_POINTS
    }
    assert not undeclared, (
        f"fault_point call sites missing from FAULT_POINTS: {undeclared}"
    )


def test_every_declared_point_has_a_call_site():
    sites = _call_sites()
    orphans = sorted(set(FAULT_POINTS) - set(sites))
    assert not orphans, (
        f"FAULT_POINTS entries with no production call site: {orphans}"
    )


def test_arming_an_undeclared_name_is_refused():
    with pytest.raises(KeyError, match="unknown fault point"):
        faults.arm("reshard.typo", lambda name: None)


def test_disarmed_points_are_inert_and_reset_cleans_up():
    fired = []
    faults.arm("reshard.prepared", fired.append)
    try:
        fault_point("reshard.prepared")
        fault_point("reshard.built")  # armed dict non-empty, no handler
        assert fired == ["reshard.prepared"]
    finally:
        faults.reset()
    fault_point("reshard.prepared")  # fully inert again
    assert fired == ["reshard.prepared"]


def test_crash_at_raises_a_baseexception():
    """SimulatedCrash must not be swallowable by ``except Exception``."""
    assert not issubclass(SimulatedCrash, Exception)
    assert issubclass(SimulatedCrash, BaseException)
    with pytest.raises(SimulatedCrash) as failure:
        with crash_at("checkpoint.synced"):
            try:
                fault_point("checkpoint.synced")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("a production handler could eat the crash")
    assert failure.value.point == "checkpoint.synced"


def test_armed_is_scoped():
    seen = []
    with armed("checkpoint.rotated", seen.append):
        fault_point("checkpoint.rotated")
    fault_point("checkpoint.rotated")
    assert seen == ["checkpoint.rotated"]
