"""Chaos matrix: crash at every fault point during a durable reshard.

For each reshardable spec and each declared fault point, the harness
crashes ``Session.reshard`` mid-transition and proves recovery lands
**bit-identically** on exactly one side of the epoch cut:

* crashes before the post-reshard snapshot is durable recover the
  **pre-reshard** state — same topology, same estimate, same complete
  estimator state as a run that never attempted the reshard;
* crashes after it recover the **post-reshard** state — bit-identical
  to a run whose reshard completed uninterrupted.

There is no third outcome: no torn topology, no half-replayed
residue, no lost elements.  Continuing to ingest after recovery stays
bit-identical to the matching uninterrupted run.
"""

import random

import pytest
from chaos_utils import (
    RESHARD_CUT,
    RESHARD_IRRELEVANT,
    RESHARD_SPECS,
    build_durable,
    crash_reshard,
    fingerprint,
    recover_fingerprint,
    sampled,
)

from repro.api import open_session
from repro.faults import FAULT_POINTS
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams import make_fully_dynamic

NEW_SHARDS = 4


def _stream(seed=3):
    edges = bipartite_erdos_renyi(12, 12, 50, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.25, rng=random.Random(seed + 1))
    )


def test_the_cut_table_covers_every_declared_fault_point():
    """A new fault point must take a stance on the cut semantics."""
    cut_points = {point for point, _ in RESHARD_CUT}
    assert not cut_points & RESHARD_IRRELEVANT
    assert cut_points | RESHARD_IRRELEVANT == set(FAULT_POINTS)


@pytest.fixture(scope="module")
def references(tmp_path_factory):
    """Uninterrupted pre/post-reshard fingerprints per spec."""
    stream = _stream()
    landed = {}
    for name, spec, shards in RESHARD_SPECS:
        base = tmp_path_factory.mktemp(f"reference-{name}")
        pre_dir = base / "pre"
        session = build_durable(
            pre_dir, spec, stream, shards=shards,
            checkpoint_at=len(stream) // 2,
        )
        session.close()
        post_dir = base / "post"
        session = build_durable(
            post_dir, spec, stream, shards=shards,
            checkpoint_at=len(stream) // 2,
        )
        session.reshard(NEW_SHARDS)
        session.close()
        landed[name] = {
            "pre": recover_fingerprint(pre_dir),
            "post": recover_fingerprint(post_dir),
        }
    return stream, landed


@pytest.mark.chaos
@pytest.mark.parametrize(
    "name,spec,shards",
    sampled(RESHARD_SPECS),
    ids=[name for name, _, _ in sampled(RESHARD_SPECS)],
)
@pytest.mark.parametrize(
    "point,side", RESHARD_CUT, ids=[point for point, _ in RESHARD_CUT]
)
def test_crash_lands_on_exactly_one_side_of_the_cut(
    tmp_path, references, name, spec, shards, point, side
):
    stream, landed = references
    directory = tmp_path / "durable"
    build_durable(
        directory, spec, stream, shards=shards,
        checkpoint_at=len(stream) // 2,
    )
    crash_reshard(directory, point, NEW_SHARDS)

    topology, elements, recovered = recover_fingerprint(directory)
    ref_topology, ref_elements, reference = landed[name][side]
    assert elements == ref_elements == len(stream)
    assert topology["shards"] == ref_topology["shards"]
    assert topology["epoch"] == ref_topology["epoch"]
    assert topology["shards"] == (
        NEW_SHARDS if side == "post" else shards
    )
    assert recovered == reference, (
        f"crash at {point} did not recover bit-identically to the "
        f"{side}-reshard reference"
    )


@pytest.mark.chaos
@pytest.mark.parametrize(
    "point,side",
    sampled(RESHARD_CUT, keep=2) + [("checkpoint.snapshotted", "post")],
    ids=lambda value: str(value),
)
def test_recovered_session_keeps_working(tmp_path, point, side):
    """After any crash the recovered session ingests, reshards, and
    checkpoints normally — and stays bit-identical to the matching
    uninterrupted run doing the same."""
    from repro.types import insertion

    _, spec, shards = RESHARD_SPECS[0]
    stream = _stream(seed=9)
    extra = [insertion(f"cont-u{i % 4}", f"cont-v{i}") for i in range(10)]

    chaos_dir = tmp_path / "chaos"
    build_durable(chaos_dir, spec, stream, shards=shards)
    crash_reshard(chaos_dir, point, NEW_SHARDS)
    recovered = open_session(durable_dir=chaos_dir)
    recovered.ingest(extra)
    if side == "pre":  # the reshard never happened: redo it
        recovered.reshard(NEW_SHARDS)
    recovered.checkpoint()
    result = fingerprint(recovered)
    recovered.close()

    reference_dir = tmp_path / "reference"
    session = build_durable(reference_dir, spec, stream, shards=shards)
    if side == "post":
        session.reshard(NEW_SHARDS)
        session.ingest(extra)
    else:
        session.ingest(extra)
        session.reshard(NEW_SHARDS)
    session.checkpoint()
    expected = fingerprint(session)
    session.close()
    assert result == expected


@pytest.mark.chaos
def test_double_crash_same_point(tmp_path):
    """Crashing the retry too still converges: recovery is idempotent."""
    _, spec, shards = RESHARD_SPECS[0]
    stream = _stream(seed=13)
    directory = tmp_path / "durable"
    build_durable(directory, spec, stream, shards=shards)
    for _ in range(2):
        crash_reshard(directory, "reshard.pre_checkpoint", NEW_SHARDS)
        topology, elements, _ = recover_fingerprint(directory)
        assert topology["shards"] == shards  # still pre-reshard
        assert elements == len(stream)
    # Third time's the charm, without chaos.
    session = open_session(durable_dir=directory)
    session.reshard(NEW_SHARDS)
    session.close()
    topology, elements, _ = recover_fingerprint(directory)
    assert topology["shards"] == NEW_SHARDS
    assert topology["epoch"] == 1
    assert elements == len(stream)
