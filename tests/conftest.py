"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import bipartite_chung_lu, bipartite_erdos_renyi
from repro.streams.dynamic import make_fully_dynamic, stream_from_edges


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection chaos tests (tests/chaos/). A quick "
        "sample runs by default; CHAOS_FULL=1 runs the full matrix "
        "(the nightly CI job).",
    )


@pytest.fixture
def butterfly_graph() -> BipartiteGraph:
    """The minimal butterfly: u, x on the left; v, w on the right."""
    g = BipartiteGraph()
    g.add_edge("u", "v")
    g.add_edge("u", "w")
    g.add_edge("x", "v")
    g.add_edge("x", "w")
    return g


@pytest.fixture
def biclique_3x3() -> BipartiteGraph:
    """K_{3,3}: contains C(3,2)^2 = 9 butterflies."""
    g = BipartiteGraph()
    for u in ("a", "b", "c"):
        for v in ("x", "y", "z"):
            g.add_edge(u, v)
    return g


@pytest.fixture
def small_random_edges():
    """A small random bipartite edge list (deterministic)."""
    rng = random.Random(1234)
    return bipartite_erdos_renyi(30, 20, 150, rng)


@pytest.fixture
def small_random_graph(small_random_edges) -> BipartiteGraph:
    return BipartiteGraph(small_random_edges)


@pytest.fixture
def powerlaw_edges():
    """A medium power-law edge list rich in butterflies."""
    rng = random.Random(42)
    return bipartite_chung_lu(300, 80, 2500, rng=rng)


@pytest.fixture
def dynamic_stream(powerlaw_edges):
    """A fully dynamic stream with 20% deletions."""
    return make_fully_dynamic(powerlaw_edges, 0.2, random.Random(99))


@pytest.fixture
def insert_only_stream(powerlaw_edges):
    return stream_from_edges(powerlaw_edges)
