"""WAL shipping: catch-up, live streaming, snapshots, lag stats."""

import json
import socket

import pytest
from cluster_utils import unique_edges, wait_until

from repro.api import open_session
from repro.cluster import (
    FollowerServer,
    ReplicatingServer,
    bootstrap_follower,
    follow_in_background,
    handshake_request,
    replicate_in_background,
)
from repro.errors import ClusterError
from repro.serve import ServeClient
from repro.serve.protocol import encode_message


def _applied(address):
    with ServeClient(*address) as client:
        return client.stats()["replication"]["applied_offset"]


def _view(address):
    """(elements, estimate) — comparable across nodes (seq is not)."""
    with ServeClient(*address) as client:
        result = client.estimate()
    return (result["elements"], result["estimate"])


class TestCatchUpAndLive:
    def test_follower_catches_up_from_disk(self, tmp_path, primary):
        """Elements ingested before the follower existed reach it."""
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(40))
        follower = follow_in_background(
            primary.server.replication_address, tmp_path / "f"
        )
        try:
            wait_until(lambda: _applied(follower.address) == 40)
            assert _view(follower.address) == _view(primary.address)
        finally:
            follower.stop()

    def test_live_batches_stream_as_they_happen(self, primary, follower):
        with ServeClient(*primary.address) as client:
            for start in range(0, 30, 10):
                client.ingest(unique_edges(10, start=start))
        wait_until(lambda: _applied(follower.address) == 30)
        assert _view(follower.address) == _view(primary.address)

    def test_follower_restart_resumes_at_its_own_offset(
        self, tmp_path, primary
    ):
        """A restarted follower renegotiates from its durable WAL."""
        replication = primary.server.replication_address
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(20))
        first = follow_in_background(replication, tmp_path / "f")
        wait_until(lambda: _applied(first.address) == 20)
        first.stop()
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(20, start=20))
        second = follow_in_background(replication, tmp_path / "f")
        try:
            wait_until(lambda: _applied(second.address) == 40)
            assert _view(second.address) == _view(primary.address)
        finally:
            second.stop()


class TestSnapshotBootstrap:
    def test_fresh_follower_after_prune_installs_snapshot(
        self, tmp_path, primary
    ):
        """A checkpoint prunes wal-0; a new follower needs the snapshot."""
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(30))
            assert client.checkpoint() == 30
            client.ingest(unique_edges(10, start=30))
        store = primary.server.session.store
        assert store.oldest_offset() == 30  # wal-0 is gone
        follower = follow_in_background(
            primary.server.replication_address, tmp_path / "f"
        )
        try:
            wait_until(lambda: _applied(follower.address) == 40)
            assert _view(follower.address) == _view(primary.address)
        finally:
            follower.stop()
        # The replica directory recovers on its own: snapshot + tail.
        session = open_session(durable_dir=tmp_path / "f")
        assert session.elements == 40
        session.close()

    def test_bootstrap_refuses_a_foreign_spec(self, tmp_path, primary):
        directory = tmp_path / "f"
        open_session("exact", durable_dir=directory).close()
        with pytest.raises(ClusterError, match="different estimator"):
            bootstrap_follower(
                primary.server.replication_address, directory
            )


class TestHandshakeRefusals:
    def _handshake(self, address, request):
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(encode_message(request))
            with sock.makefile("rb") as reader:
                return json.loads(reader.readline())

    def test_follower_ahead_of_primary_is_refused(self, primary):
        response = self._handshake(
            primary.server.replication_address,
            handshake_request("liar", 10_000),
        )
        assert not response["ok"]
        assert response["error"]["type"] == "ClusterError"
        assert "10000" in response["error"]["message"]

    def test_non_replicate_op_is_refused(self, primary):
        response = self._handshake(
            primary.server.replication_address,
            {"id": 1, "op": "estimate"},
        )
        assert not response["ok"]
        assert "handshake" in response["error"]["message"]

    def test_probe_answers_and_closes(self, primary):
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(5))
        address = primary.server.replication_address
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(encode_message(
                handshake_request("probe", 0, probe=True)
            ))
            with sock.makefile("rb") as reader:
                response = json.loads(reader.readline())
                assert response["ok"]
                assert response["result"]["mode"] == "stream"
                assert response["result"]["offset"] == 5
                assert reader.readline() == b""  # primary hung up


class TestDurabilityRequirements:
    def test_primary_requires_a_durable_session(self):
        with open_session("exact") as session:
            with pytest.raises(ClusterError, match="durable"):
                ReplicatingServer(session)

    def test_follower_requires_a_durable_session(self):
        with open_session("exact") as session:
            with pytest.raises(ClusterError, match="durable"):
                FollowerServer(session, primary=("127.0.0.1", 1))


class TestLagStats:
    def test_primary_reports_per_follower_lag(self, primary, follower):
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(25))
        wait_until(lambda: _applied(follower.address) == 25)
        follower_id = follower.server.follower_id

        def _acked():
            with ServeClient(*primary.address) as client:
                stats = client.stats()
            info = stats["replication"]["followers"][follower_id]
            return stats, info

        wait_until(lambda: _acked()[1]["acked_offset"] == 25)
        stats, info = _acked()
        assert stats["role"] == "primary"
        assert info == {
            "acked_offset": 25,
            "lag": 0,
            "connected": True,
        }
        assert stats["replication"]["max_lag"] == 0
        assert stats["replication"]["min_acked_offset"] == 25

    def test_disconnected_follower_stays_in_stats(
        self, tmp_path, primary
    ):
        follower = follow_in_background(
            primary.server.replication_address, tmp_path / "f"
        )
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(10))
        wait_until(lambda: _applied(follower.address) == 10)
        follower_id = follower.server.follower_id
        follower.stop()

        def _info():
            with ServeClient(*primary.address) as client:
                followers = client.stats()["replication"]["followers"]
            return followers.get(follower_id)

        wait_until(lambda: (_info() or {}).get("connected") is False)
        assert _info()["acked_offset"] == 10

    def test_follower_reports_its_replication_state(
        self, primary, follower
    ):
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(15))
        wait_until(lambda: _applied(follower.address) == 15)
        with ServeClient(*follower.address) as client:
            stats = client.stats()
        assert stats["role"] == "follower"
        replication = stats["replication"]
        assert replication["applied_offset"] == 15
        assert replication["connected"] is True
        assert replication["primary"] == list(
            primary.server.replication_address
        )
        assert replication["lag"] == 0


class TestWriteRefusal:
    def test_follower_refuses_mutations_and_stays_alive(
        self, primary, follower
    ):
        from repro.errors import ServeError
        from repro.types import insertion

        with ServeClient(*follower.address) as client:
            for op in ("flush", "checkpoint"):
                with pytest.raises(ServeError) as excinfo:
                    client.call(op)
                assert excinfo.value.remote_type == "NotPrimaryError"
            with pytest.raises(ServeError) as excinfo:
                client.ingest(insertion("a", "b"))
            assert excinfo.value.remote_type == "NotPrimaryError"
            host, port = primary.server.replication_address
            assert f"{host}:{port}" in str(excinfo.value)
            assert client.ping()["pong"]  # the connection survived
