"""Read rotation across a reshard when a follower dies mid-flight.

The regression this pins: a live reshard on the primary must not
strand the cluster client on a dead follower or on a **stale
topology**.  Followers keep replaying the element log through their
own fixed topology (they do not reshard with the primary), so
:meth:`ClusterClient.topology` is deliberately primary-only — a read
rotated to a follower mid-transition must still serve, but the
topology answer must come from the node that actually switched.
"""

import pytest
from cluster_utils import unique_edges, wait_until

from repro.api import open_session
from repro.cluster import (
    ClusterClient,
    follow_in_background,
    replicate_in_background,
)
from repro.errors import ClusterError
from repro.serve import ServeClient

#: A sharded durable primary — the only topology that can reshard.
SHARDED_SPEC = "abacus:budget=48,seed=11"


def _cluster(tmp_path, followers=2):
    primary = replicate_in_background(
        open_session(
            SHARDED_SPEC, shards=2, durable_dir=tmp_path / "primary"
        )
    )
    nodes = [
        follow_in_background(
            primary.server.replication_address,
            tmp_path / f"follower-{index}",
            reconnect_backoff=0.05,
        )
        for index in range(followers)
    ]
    return primary, nodes


def test_follower_death_mid_reshard_does_not_strand_reads(tmp_path):
    primary, (dead, alive) = _cluster(tmp_path)
    cluster = ClusterClient(
        primary.address, [dead.address, alive.address]
    )
    try:
        cluster.ingest(unique_edges(30))
        wait_until(lambda: dead.server.view.elements == 30)
        wait_until(lambda: alive.server.view.elements == 30)
        assert cluster.topology()["shards"] == 2

        # The follower dies; the topology change lands anyway.
        dead.stop()
        report = cluster.reshard(4)
        assert report["shards"] == 4
        assert report["epoch"] == 1
        assert report["topology"]["shards"] == 4

        # Reads rotate past the corpse — every call answers, and the
        # rotation genuinely cycles (it does not pin to one node).
        for _ in range(4):
            view = cluster.estimate()
            assert view["elements"] == 30

        # The authoritative topology is the new one, immediately.
        topology = cluster.topology()
        assert topology["shards"] == 4
        assert topology["epoch"] == 1

        # The surviving follower *is* on the old topology — which is
        # exactly why topology() never asks a follower.
        with ServeClient(*alive.address) as direct:
            follower_topology = direct.stats()["topology"]
        assert follower_topology["shards"] == 2
        assert follower_topology["epoch"] == 0

        # Post-reshard writes replicate and read-your-writes holds.
        cluster.ingest(unique_edges(10, start=30))
        view = cluster.estimate(read_mode="read_your_writes")
        assert view["elements"] == 40
        cluster.close()
    finally:
        alive.stop()
        primary.stop()


def test_reshard_without_any_follower_left(tmp_path):
    """Every follower gone: writes, reshard, and reads all fall back
    to the primary."""
    primary, (f1, f2) = _cluster(tmp_path)
    cluster = ClusterClient(primary.address, [f1.address, f2.address])
    try:
        cluster.ingest(unique_edges(12))
        wait_until(lambda: f1.server.view.elements == 12)
        f1.stop()
        f2.stop()
        assert cluster.reshard(3)["shards"] == 3
        assert cluster.estimate()["elements"] == 12
        assert cluster.topology()["epoch"] == 1
        cluster.close()
    finally:
        primary.stop()


def test_reshard_of_an_unsharded_primary_is_a_clean_error(tmp_path):
    primary = replicate_in_background(
        open_session(SHARDED_SPEC, durable_dir=tmp_path / "primary")
    )
    cluster = ClusterClient(primary.address)
    try:
        cluster.ingest(unique_edges(5))
        with pytest.raises(ClusterError, match="reshard"):
            cluster.reshard(2)
        assert cluster.topology() is None
        # The failed reshard left the node fully serviceable.
        assert cluster.estimate()["elements"] == 5
        cluster.close()
    finally:
        primary.stop()
