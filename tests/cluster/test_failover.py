"""Failover bit-identity: promoting a follower == single-node recovery.

ISSUE 6 acceptance, generalizing the kill-at-every-offset harness of
``tests/store/test_recovery.py`` to the replicated cluster:

1. A primary ingests a fully-dynamic stream while a follower
   replicates it (WAL shipping re-logged to the follower's own disk).
2. The primary is killed mid-stream and, for the whole-node-failure
   case, the *follower's* WAL is additionally torn at an arbitrary
   byte — the matrix cuts the ABACUS log at **every** byte and the
   heavier specs (PARABACUS, sharded, windowed) at every record
   boundary plus torn-header/torn-payload offsets.
3. Promoting the follower is exactly
   ``open_session(durable_dir=follower_dir)``: the torn tail is
   truncated and the result must be bit-identical — estimate *and*
   complete ``state_to_dict()`` — to an uninterrupted single-node run
   over the surviving prefix.
4. Continuing to write to the promoted node ends bit-identical to the
   uninterrupted full run.
"""

import json
import random

import pytest
from cluster_utils import wait_until

from repro.api import open_session
from repro.cluster import ClusterClient, follow_in_background
from repro.graph.generators import bipartite_erdos_renyi
from repro.serve import ServeClient
from repro.serve.protocol import elements_to_records, records_to_elements
from repro.streams import make_fully_dynamic

# The same acceptance matrix as tests/store/test_recovery.py — the
# failover proof must hold for every estimator family the recovery
# proof holds for.
from cluster_utils import load_recovery_harness

_recovery = load_recovery_harness()
SPECS = _recovery.SPECS
_fingerprint = _recovery._fingerprint
_kill_points = _recovery._kill_points
_last_segment = _recovery._last_segment
_reference_fingerprints = _recovery._reference_fingerprints


def _stream(seed=3):
    edges = bipartite_erdos_renyi(12, 12, 50, random.Random(seed))
    return list(
        make_fully_dynamic(edges, alpha=0.25, rng=random.Random(seed + 1))
    )


def _wire_round_trip(elements):
    """Elements exactly as replication delivers them (wire-decoded)."""
    return records_to_elements(elements_to_records(elements))


def _replicate_stream(
    tmp_path, spec, stream, *, checkpoint_at=None, chunk=7
):
    """Run a primary + follower cluster over ``stream``; return the
    follower's durable directory (its session closed and synced)."""
    from repro.cluster import replicate_in_background

    primary_dir = tmp_path / "primary"
    follower_dir = tmp_path / "follower"
    primary = replicate_in_background(
        open_session(spec, durable_dir=primary_dir)
    )
    follower = follow_in_background(
        primary.server.replication_address,
        follower_dir,
        reconnect_backoff=0.05,
    )
    try:
        with ServeClient(*primary.address) as client:
            for start in range(0, len(stream), chunk):
                client.ingest(stream[start : start + chunk])
                if checkpoint_at is not None and (
                    start + chunk >= checkpoint_at > start
                ):
                    # Checkpoint the *primary* mid-stream; replication
                    # itself must stay checkpoint-oblivious.
                    client.checkpoint()
        wait_until(
            lambda: follower.server.view.elements == len(stream)
        )
    finally:
        follower.stop()
        primary.stop()
    return follower_dir


@pytest.mark.parametrize(
    "spec,granularity",
    [(spec, granularity) for _, spec, granularity in SPECS],
    ids=[name for name, _, _ in SPECS],
)
def test_promotion_is_bit_identical_at_every_kill_point(
    tmp_path, spec, granularity
):
    """Tear the replica's WAL anywhere; promotion recovers exactly."""
    stream = _wire_round_trip(_stream())
    references = _reference_fingerprints(spec, stream)
    follower_dir = _replicate_stream(tmp_path, spec, stream)
    segment = _last_segment(follower_dir)
    data = segment.read_bytes()
    recovered_counts = set()
    for cut in _kill_points(data, granularity):
        segment.write_bytes(data[:cut])
        promoted = open_session(durable_dir=follower_dir)
        count = promoted.elements
        assert _fingerprint(promoted) == references[count], (
            f"promotion after a kill at byte {cut} of the replica's "
            f"WAL (= {count} elements) is not bit-identical to the "
            "uninterrupted single-node run"
        )
        promoted.close()
        recovered_counts.add(count)
    assert min(recovered_counts) == 0
    assert max(recovered_counts) == len(stream)
    assert len(recovered_counts) > 2


@pytest.mark.parametrize(
    "spec",
    [spec for _, spec, _ in SPECS],
    ids=[name for name, _, _ in SPECS],
)
def test_promotion_after_snapshot_bootstrap_is_bit_identical(
    tmp_path, spec
):
    """The kill matrix holds when the primary checkpointed mid-stream.

    The checkpoint prunes the primary's wal-0, so a follower joining
    afterwards bootstraps from the snapshot — its local log then
    starts at the snapshot offset, and tearing it must still recover
    bit-identically (snapshot restore + local WAL-tail replay).
    """
    stream = _wire_round_trip(_stream(seed=5))
    checkpoint_at = len(stream) // 2
    references = _reference_fingerprints(spec, stream)
    follower_dir = _replicate_stream(
        tmp_path, spec, stream, checkpoint_at=checkpoint_at
    )
    segment = _last_segment(follower_dir)
    data = segment.read_bytes()
    recovered_counts = set()
    for cut in _kill_points(data, "record"):
        segment.write_bytes(data[:cut])
        promoted = open_session(durable_dir=follower_dir)
        count = promoted.elements
        assert _fingerprint(promoted) == references[count], (
            f"kill at byte {cut}: replica recovery diverged"
        )
        promoted.close()
        recovered_counts.add(count)
    assert max(recovered_counts) == len(stream)
    assert len(recovered_counts) > 2


@pytest.mark.parametrize(
    "spec",
    [spec for _, spec, _ in SPECS],
    ids=[name for name, _, _ in SPECS],
)
def test_live_promotion_and_continuation_matches_uninterrupted(
    tmp_path, spec
):
    """Kill the primary mid-stream, promote, finish the stream.

    The promoted follower accepts the remaining writes and its final
    state — estimate and full estimator state, read over the wire —
    is bit-identical to a single node that ingested everything
    uninterrupted.
    """
    from repro.cluster import replicate_in_background

    stream = _wire_round_trip(_stream(seed=9))
    half = len(stream) // 2
    references = _reference_fingerprints(spec, stream)
    primary = replicate_in_background(
        open_session(spec, durable_dir=tmp_path / "primary")
    )
    follower = follow_in_background(
        primary.server.replication_address,
        tmp_path / "follower",
        reconnect_backoff=0.05,
    )
    try:
        cluster = ClusterClient(
            primary.address, [follower.address]
        )
        cluster.ingest(stream[:half])
        wait_until(lambda: follower.server.view.elements == half)
        primary.stop()  # the failover
        result = cluster.promote(follower.address)
        assert result["promoted"] is True
        assert result["elements"] == half
        cluster.ingest(stream[half:])
        estimate = cluster.estimate(read_mode="read_your_writes")
        snapshot = cluster.snapshot()
        cluster.close()
    finally:
        follower.stop()
        primary.stop()
    assert estimate["elements"] == len(stream)
    wire_fingerprint = json.dumps(
        {
            "estimate": estimate["estimate"],
            "state": snapshot["state"],
        },
        sort_keys=True,
    )
    assert wire_fingerprint == references[len(stream)]


def test_promoted_node_serves_writes_and_checkpoints(
    tmp_path,
):
    """After promotion the node is a full durable primary."""
    from cluster_utils import SPEC, unique_edges
    from repro.cluster import replicate_in_background

    primary = replicate_in_background(
        open_session(SPEC, durable_dir=tmp_path / "primary")
    )
    follower = follow_in_background(
        primary.server.replication_address, tmp_path / "follower"
    )
    try:
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(10))
        wait_until(lambda: follower.server.view.elements == 10)
        primary.stop()
        with ServeClient(*follower.address) as client:
            assert client.call("promote")["promoted"] is True
            assert client.stats()["role"] == "primary"
            client.ingest(unique_edges(5, start=10))
            assert client.checkpoint() == 15
            # Promote is idempotent.
            assert client.call("promote")["promoted"] is False
    finally:
        follower.stop()
        primary.stop()
    # The promoted node's directory recovers like any durable dir.
    session = open_session(durable_dir=tmp_path / "follower")
    assert session.elements == 15
    session.close()


def test_operator_promotes_the_most_caught_up_follower(tmp_path):
    """The lag stats identify which follower is safe to promote."""
    from cluster_utils import SPEC, unique_edges
    from repro.cluster import replicate_in_background

    primary = replicate_in_background(
        open_session(SPEC, durable_dir=tmp_path / "primary")
    )
    replication = primary.server.replication_address
    ahead = follow_in_background(replication, tmp_path / "ahead")
    behind = follow_in_background(replication, tmp_path / "behind")
    try:
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(12))
        wait_until(lambda: ahead.server.view.elements == 12)
        wait_until(lambda: behind.server.view.elements == 12)
        behind.stop()  # this replica stops applying...
        with ServeClient(*primary.address) as client:
            client.ingest(unique_edges(8, start=12))  # ...misses these
        wait_until(lambda: ahead.server.view.elements == 20)
        primary.stop()
        cluster = ClusterClient(
            primary.address, [ahead.address, behind.address]
        )
        # The operator playbook: ask every reachable node where it
        # stands, promote the highest applied offset.
        reachable = {
            node: stats
            for node, stats in cluster.stats_all().items()
            if "error" not in stats and stats.get("role") == "follower"
        }
        best = max(
            reachable,
            key=lambda node: reachable[node]["replication"][
                "applied_offset"
            ],
        )
        ahead_host, ahead_port = ahead.address
        assert best == f"{ahead_host}:{ahead_port}"
        assert (
            reachable[best]["replication"]["applied_offset"] == 20
        )
        result = cluster.promote((ahead_host, ahead_port))
        assert result["elements"] == 20
        assert cluster.estimate()["elements"] == 20
        cluster.close()
    finally:
        ahead.stop()
        behind.stop()
        primary.stop()
