"""``ClusterClient``: routing, rotation, and failure-aware retry."""

import pytest
from cluster_utils import unique_edges, wait_until

from repro.cluster import ClusterClient, follow_in_background
from repro.errors import ClusterError, NotPrimaryError
from repro.serve import ServeClient


def _operations(address):
    with ServeClient(*address) as client:
        return client.stats()["operations"]


@pytest.fixture
def second_follower(tmp_path, primary):
    background = follow_in_background(
        primary.server.replication_address,
        tmp_path / "follower2",
        stale_timeout=10.0,
        reconnect_backoff=0.05,
    )
    yield background
    background.stop()


class TestRouting:
    def test_mutations_go_to_the_primary(self, primary, follower):
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            cluster.ingest(unique_edges(4))
            cluster.flush()
            assert cluster.checkpoint() == 4
            assert cluster.snapshot()["session"]["elements"] == 4
        operations = _operations(primary.address)
        assert operations["ingest"] == 1
        assert operations["flush"] == 1
        assert operations["checkpoint"] == 1
        follower_ops = _operations(follower.address)
        for op in ("ingest", "flush", "checkpoint", "snapshot"):
            assert op not in follower_ops

    def test_reads_rotate_across_followers(
        self, primary, follower, second_follower
    ):
        with ClusterClient(
            primary.address,
            [follower.address, second_follower.address],
        ) as cluster:
            for _ in range(4):
                cluster.estimate()
        # stats() hits one more node; count only the estimates.
        first = _operations(follower.address).get("estimate", 0)
        second = _operations(second_follower.address).get("estimate", 0)
        assert first == 2
        assert second == 2

    def test_reads_fall_back_to_the_primary_without_followers(
        self, primary
    ):
        with ClusterClient(primary.address) as cluster:
            cluster.ingest(unique_edges(3))
            assert cluster.estimate()["elements"] == 3

    def test_watermark_tracks_acknowledged_writes(
        self, primary, follower
    ):
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            assert cluster.last_offset == 0
            cluster.ingest(unique_edges(5))
            assert cluster.last_offset == 5
            cluster.ingest(unique_edges(2, start=5))
            assert cluster.last_offset == 7


class TestFailureHandling:
    def test_reads_survive_a_dead_follower(
        self, primary, follower, second_follower
    ):
        with ClusterClient(
            primary.address,
            [follower.address, second_follower.address],
        ) as cluster:
            cluster.ingest(unique_edges(6))
            follower.stop()
            for _ in range(4):  # rotation must skip the dead node
                assert cluster.estimate()["elements"] <= 6

    def test_all_nodes_down_raises_cluster_error(self, primary):
        address = primary.address
        with ClusterClient(address, [address]) as cluster:
            cluster.ingest(unique_edges(2))
            primary.stop()
            with pytest.raises(ClusterError, match="every node"):
                cluster.estimate()
            with pytest.raises(ClusterError, match="failed"):
                cluster.ingest(unique_edges(1, start=2))

    def test_writing_to_a_follower_raises_not_primary(
        self, primary, follower
    ):
        with ClusterClient(follower.address) as cluster:
            with pytest.raises(NotPrimaryError, match="follower"):
                cluster.ingest(unique_edges(1))

    def test_reconnects_after_a_follower_restart(
        self, tmp_path, primary
    ):
        """A restarted follower costs the client one dropped socket."""
        replication = primary.server.replication_address
        follower = follow_in_background(replication, tmp_path / "f")
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            cluster.ingest(unique_edges(3))
            wait_until(lambda: follower.server.view.elements == 3)
            assert cluster.estimate()["elements"] == 3
            host, port = follower.address
            follower.stop()
            # Primary fallback keeps reads alive while the follower
            # is down (its cached socket fails and is dropped).
            assert cluster.estimate()["elements"] == 3
            restarted = follow_in_background(
                replication, tmp_path / "f", host=host, port=port
            )
            try:
                wait_until(
                    lambda: restarted.server.view.elements == 3
                )
                assert cluster.estimate()["elements"] == 3
                # The rotation reached the restarted follower again.
                assert _operations(restarted.address).get(
                    "estimate", 0
                ) >= 1
            finally:
                restarted.stop()


class TestTopology:
    def test_set_primary_drops_it_from_rotation(
        self, primary, follower
    ):
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            cluster.set_primary(follower.address)
            assert cluster.primary == follower.address
            assert follower.address not in cluster.followers

    def test_stats_all_reports_every_node(
        self, primary, follower
    ):
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            cluster.ingest(unique_edges(2))
            everything = cluster.stats_all()
        assert len(everything) == 2
        roles = sorted(
            stats.get("role") for stats in everything.values()
        )
        assert roles == ["follower", "primary"]

    def test_stats_all_marks_dead_nodes(self, primary, follower):
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            follower.stop()
            everything = cluster.stats_all()
            host, port = follower.address
            assert "error" in everything[f"{host}:{port}"]

    def test_invalid_read_mode_is_refused_up_front(self, primary):
        with pytest.raises(ClusterError, match="read_mode"):
            ClusterClient(primary.address, read_mode="strong")
