"""Shared helpers for the replicated-cluster suite."""

import importlib.util
import pathlib
import time

from repro.types import insertion


def load_recovery_harness():
    """The kill-at-every-offset harness of tests/store/test_recovery.py.

    The failover proof reuses the recovery proof's acceptance matrix
    (SPECS), fingerprinting, and kill-point enumeration — loaded by
    path because pytest only puts sibling test directories on
    ``sys.path`` while collecting them.
    """
    path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "store"
        / "test_recovery.py"
    )
    spec = importlib.util.spec_from_file_location(
        "repro_store_recovery_harness", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

#: Spec used by most cluster tests: small, seeded, durable-friendly.
SPEC = "abacus:budget=48,seed=11"


def unique_edges(count, start=0, left=7):
    """``count`` distinct insertions (ABACUS refuses duplicates)."""
    return [
        insertion(f"u{(start + i) % left}", f"v{start + i}")
        for i in range(count)
    ]


def wait_until(predicate, timeout=10.0, interval=0.01):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(
        f"condition not reached within {timeout}s: {predicate}"
    )
