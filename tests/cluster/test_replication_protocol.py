"""The replication wire grammar of ``repro.cluster.protocol``."""

import pytest

from repro.cluster import (
    ack_message,
    batch_message,
    decode_ack,
    decode_stream_message,
    handshake_request,
    heartbeat_message,
)
from repro.errors import ClusterError
from repro.types import deletion, insertion


class TestHandshake:
    def test_minimal_request(self):
        request = handshake_request("f1", 96)
        assert request == {
            "id": 1,
            "op": "replicate",
            "follower": "f1",
            "have_offset": 96,
        }

    def test_probe_flag_only_when_set(self):
        assert "probe" not in handshake_request("f1", 0)
        assert handshake_request("f1", 0, probe=True)["probe"] is True


class TestStreamMessages:
    def test_batch_round_trip(self):
        elements = [insertion("u1", "v1"), deletion("u2", "v2")]
        kind, base, decoded = decode_stream_message(
            batch_message(7, elements)
        )
        assert kind == "batch"
        assert base == 7
        assert decoded == elements

    def test_heartbeat_round_trip(self):
        assert decode_stream_message(heartbeat_message(42)) == (
            "heartbeat",
            42,
            [],
        )

    @pytest.mark.parametrize(
        "message",
        [
            {"stream": "batch", "base": -1, "records": []},
            {"stream": "batch", "base": "x", "records": []},
            {"stream": "batch", "base": 0, "records": [["bogus"]]},
            {"stream": "heartbeat", "offset": -5},
            {"stream": "heartbeat"},
            {"stream": "mystery"},
            {},
        ],
        ids=[
            "negative-base",
            "string-base",
            "bad-records",
            "negative-heartbeat",
            "missing-offset",
            "unknown-kind",
            "empty",
        ],
    )
    def test_malformed_messages_raise(self, message):
        with pytest.raises(ClusterError):
            decode_stream_message(message)


class TestAcks:
    def test_round_trip(self):
        assert decode_ack(ack_message(128)) == 128

    def test_non_ack_chatter_is_none(self):
        assert decode_ack({"hello": True}) is None

    @pytest.mark.parametrize("offset", [-1, "x", 1.5])
    def test_malformed_ack_raises(self, offset):
        with pytest.raises(ClusterError):
            decode_ack({"ack": offset})
