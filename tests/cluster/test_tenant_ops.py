"""Tenant-catalog operations are primary-only in a cluster.

A follower replicates one session's WAL, not a catalog
(``docs/multitenancy.md``): every tenant admin op and every
tenant-/stream-scoped request is refused with ``NotPrimaryError``,
pointing the client back at the primary.
"""

import pytest

from repro.cluster import ClusterClient
from repro.errors import NotPrimaryError, ServeError
from repro.serve import ServeClient
from repro.serve.server import TENANT_ADMIN_OPS


class TestFollowerRefusal:
    def test_follower_refuses_every_tenant_admin_op(
        self, primary, follower
    ):
        with ServeClient(*follower.address) as client:
            for op in sorted(TENANT_ADMIN_OPS):
                with pytest.raises(ServeError) as excinfo:
                    client.call(op, name="alice", spec="exact")
                assert (
                    excinfo.value.remote_type == "NotPrimaryError"
                ), op
            assert client.ping()["pong"]

    def test_follower_refuses_scoped_requests(self, primary, follower):
        with ServeClient(*follower.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.estimate(tenant="alice")
            assert excinfo.value.remote_type == "NotPrimaryError"
            with pytest.raises(ServeError) as excinfo:
                client.stats(stream="shared")
            assert excinfo.value.remote_type == "NotPrimaryError"


class TestClusterClientRouting:
    def test_tenant_ops_raise_not_primary_via_cluster_client(
        self, primary, follower
    ):
        """Pointing the cluster client's *write* path at a follower
        surfaces the follower's refusal as NotPrimaryError, the
        signal to re-point and retry."""
        client = ClusterClient(follower.address)
        try:
            with pytest.raises(NotPrimaryError):
                client.create_tenant("alice", "exact")
            with pytest.raises(NotPrimaryError):
                client.drop_tenant("alice")
            with pytest.raises(NotPrimaryError):
                client.list_tenants()
        finally:
            client.close()

    def test_tenant_ops_reach_a_catalog_free_primary_cleanly(
        self, primary
    ):
        """Against a primary without a hosted catalog the op arrives
        (not NotPrimaryError) and is refused naming the missing
        catalog."""
        from repro.errors import ClusterError

        client = ClusterClient(primary.address)
        try:
            with pytest.raises(ClusterError, match="catalog") as excinfo:
                client.list_tenants()
            assert not isinstance(excinfo.value, NotPrimaryError)
        finally:
            client.close()
