"""Read consistency on the wire: eventual vs read-your-writes.

The guarantee under test (ISSUE 6 acceptance): a client that wrote
offset ``k`` and reads with ``read_mode="read_your_writes"`` never
observes a view covering fewer than ``k`` elements — from any node.
On a follower the read *waits* for replication to apply ``k``; on a
node that can never reach ``k`` it fails with ``StaleReadError``
rather than serving the stale view.
"""

import pytest
from cluster_utils import unique_edges, wait_until

from repro.api import open_session
from repro.cluster import ClusterClient, follow_in_background
from repro.errors import ServeError
from repro.serve import ServeClient, serve_in_background


class TestSingleNodeWire:
    """The read-mode wire grammar on a plain (non-cluster) server."""

    @pytest.fixture
    def server(self):
        with serve_in_background(open_session("exact")) as background:
            yield background

    def test_eventual_is_the_default_and_explicit(self, server):
        with ServeClient(*server.address) as client:
            assert client.estimate() == client.estimate(
                read_mode="eventual"
            )

    def test_ryw_at_or_below_view_is_served(self, server):
        with ServeClient(*server.address) as client:
            client.ingest(unique_edges(4))
            result = client.estimate(
                read_mode="read_your_writes", min_offset=4
            )
            assert result["elements"] == 4

    def test_ryw_beyond_view_refuses_stale(self, server):
        """A single node cannot wait for elements nobody will write."""
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.estimate(
                    read_mode="read_your_writes", min_offset=99
                )
            assert excinfo.value.remote_type == "StaleReadError"
            assert client.ping()["pong"]  # connection survived

    def test_unknown_read_mode_is_rejected(self, server):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError, match="read_mode"):
                client.estimate(read_mode="linearizable")

    @pytest.mark.parametrize("bad", [-1, "x", 1.5])
    def test_malformed_min_offset_is_rejected(self, server, bad):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError, match="min_offset"):
                client.call(
                    "estimate",
                    read_mode="read_your_writes",
                    min_offset=bad,
                )

    def test_ping_ignores_freshness(self, server):
        with ServeClient(*server.address) as client:
            result = client.call(
                "ping", read_mode="read_your_writes", min_offset=99
            )
            assert result["pong"]


class TestReadYourWritesGuarantee:
    def test_writer_never_reads_an_older_view(self, primary, follower):
        """Write-then-read through the cluster client, every round.

        Reads rotate onto the follower, which at the moment of the
        read has usually not applied the write yet — the server-side
        wait is what makes this loop pass deterministically.
        """
        with ClusterClient(
            primary.address,
            [follower.address],
            read_mode="read_your_writes",
        ) as cluster:
            for round_number in range(30):
                cluster.ingest(unique_edges(1, start=round_number))
                view = cluster.estimate()
                assert view["elements"] >= cluster.last_offset, (
                    f"round {round_number}: read saw "
                    f"{view['elements']} elements, behind the "
                    f"client's own write at {cluster.last_offset}"
                )

    def test_eventual_reads_never_block(self, primary, follower):
        """Eventual mode answers from whatever the follower has."""
        with ClusterClient(
            primary.address, [follower.address]
        ) as cluster:
            cluster.ingest(unique_edges(10))
            view = cluster.estimate()  # any published view is fine
            assert 0 <= view["elements"] <= 10


class TestFollowerStaleness:
    def test_ryw_times_out_when_replication_cannot_catch_up(
        self, tmp_path, primary
    ):
        follower = follow_in_background(
            primary.server.replication_address,
            tmp_path / "f",
            stale_timeout=0.3,
            reconnect_backoff=0.05,
        )
        try:
            with ServeClient(*primary.address) as client:
                client.ingest(unique_edges(5))
            wait_until(
                lambda: follower.server.view.elements == 5
            )
            primary.stop()  # no one can ever write offset 6
            with ServeClient(*follower.address) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.estimate(
                        read_mode="read_your_writes", min_offset=6
                    )
                assert excinfo.value.remote_type == "StaleReadError"
                # The follower still serves what it does have.
                assert client.estimate(
                    read_mode="read_your_writes", min_offset=5
                )["elements"] == 5
                assert client.estimate()["elements"] == 5
        finally:
            follower.stop()

    def test_waiting_read_completes_when_the_write_lands(
        self, primary, follower
    ):
        """A read that arrives before its write's replication waits."""
        import threading

        with ServeClient(*primary.address) as writer_client:
            writer_client.ingest(unique_edges(3))
        wait_until(lambda: follower.server.view.elements == 3)
        results = {}

        def _read():
            with ServeClient(*follower.address) as client:
                results["view"] = client.estimate(
                    read_mode="read_your_writes", min_offset=4
                )

        reader = threading.Thread(target=_read)
        reader.start()
        with ServeClient(*primary.address) as writer_client:
            writer_client.ingest(unique_edges(1, start=3))
        reader.join(timeout=10)
        assert not reader.is_alive()
        assert results["view"]["elements"] >= 4
