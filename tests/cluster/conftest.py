"""Fixtures for the replicated-cluster suite."""

import pytest
from cluster_utils import SPEC

from repro.api import open_session
from repro.cluster import follow_in_background, replicate_in_background


@pytest.fixture
def primary(tmp_path):
    """A replicating primary over a fresh durable session."""
    background = replicate_in_background(
        open_session(SPEC, durable_dir=tmp_path / "primary")
    )
    yield background
    background.stop()


@pytest.fixture
def follower(tmp_path, primary):
    """One follower bootstrapped from ``primary``."""
    background = follow_in_background(
        primary.server.replication_address,
        tmp_path / "follower",
        stale_timeout=10.0,
        reconnect_backoff=0.05,
    )
    yield background
    background.stop()
