"""``repro serve --replicate-to`` / ``repro follow`` end to end.

The CLI entry points block until shutdown, so each runs on its own
thread with pre-picked ports; the wire ``shutdown`` op winds them
down.  Option validation (the error paths) runs in-process.
"""

import socket
import threading

import pytest
from cluster_utils import unique_edges, wait_until

from repro.cli import _parse_address, build_parser, run_follow, run_serve
from repro.errors import ClusterError
from repro.serve import ServeClient

SPEC = "abacus:budget=32,seed=3"


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start(target, *args, **kwargs):
    thread = threading.Thread(
        target=target, args=args, kwargs=kwargs, daemon=True
    )
    thread.start()
    return thread


def _shutdown(port, thread):
    try:
        with ServeClient("127.0.0.1", port, timeout=5.0) as client:
            client.shutdown()
    except Exception:
        pass
    thread.join(timeout=10)


class TestValidation:
    def test_replicate_to_requires_durable_dir(self):
        with pytest.raises(ClusterError, match="durable-dir"):
            run_serve(SPEC, "127.0.0.1", 0, replicate_to=0)

    def test_follow_requires_primary(self, tmp_path):
        with pytest.raises(ClusterError, match="--primary"):
            run_follow(None, "127.0.0.1", 0, str(tmp_path))

    def test_follow_requires_durable_dir(self):
        with pytest.raises(ClusterError, match="durable-dir"):
            run_follow("127.0.0.1:1", "127.0.0.1", 0, None)

    @pytest.mark.parametrize("bad", ["nope", "host:", ":123", "a:b"])
    def test_malformed_primary_address(self, bad):
        with pytest.raises(ClusterError, match="HOST:PORT"):
            _parse_address(bad)

    def test_parser_knows_the_cluster_options(self):
        args = build_parser().parse_args(
            ["serve", "--replicate-to", "0", "--durable-dir", "d"]
        )
        assert args.replicate_to == 0
        args = build_parser().parse_args(
            ["follow", "--primary", "h:1", "--durable-dir", "d"]
        )
        assert args.experiment == "follow"
        assert args.primary == "h:1"


def test_serve_and_follow_end_to_end(tmp_path, capsys):
    """A CLI primary replicates to a CLI follower over real sockets."""
    serve_port = _free_port()
    replication_port = _free_port()
    follow_port = _free_port()
    primary_thread = _start(
        run_serve,
        SPEC,
        "127.0.0.1",
        serve_port,
        durable_dir=str(tmp_path / "primary"),
        replicate_to=replication_port,
    )
    follower_thread = None
    try:
        with ServeClient("127.0.0.1", serve_port) as client:
            client.ingest(unique_edges(20))
        follower_thread = _start(
            run_follow,
            f"127.0.0.1:{replication_port}",
            "127.0.0.1",
            follow_port,
            str(tmp_path / "follower"),
        )

        def _caught_up():
            try:
                with ServeClient(
                    "127.0.0.1", follow_port, connect_retries=0
                ) as client:
                    return client.estimate(
                        read_mode="read_your_writes", min_offset=20
                    )["elements"] == 20
            except Exception:
                return False

        wait_until(_caught_up, timeout=15.0)
        with ServeClient("127.0.0.1", follow_port) as client:
            stats = client.stats()
        assert stats["role"] == "follower"
        assert stats["replication"]["applied_offset"] == 20
    finally:
        if follower_thread is not None:
            _shutdown(follow_port, follower_thread)
        _shutdown(serve_port, primary_thread)
    output = capsys.readouterr().out
    assert f"[replicating on :{replication_port}]" in output
    assert f"following 127.0.0.1:{replication_port}" in output
