"""Session-facade integration for windowed sessions.

Windowing must inherit every session facility unchanged: spec
composition, auto-chunked ingest, checkpoint observers at *input*
element offsets, estimate-change observers, snapshot/restore, and
composition with sharding.
"""

import random

import pytest

from repro.api import open_session, restore_session
from repro.errors import SpecError
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import stream_from_edges
from repro.types import insertion, timed_insertion
from repro.window import WindowedEstimator

BUTTERFLY = [
    insertion("u1", "v1"),
    insertion("u1", "v2"),
    insertion("u2", "v1"),
    insertion("u2", "v2"),
]


def _stream(n_edges=400, seed=3):
    edges = bipartite_erdos_renyi(30, 30, n_edges, random.Random(seed))
    return list(stream_from_edges(edges))


class TestOpenSession:
    def test_window_wraps_spec(self):
        with open_session("abacus:budget=100,seed=1", window=50) as session:
            assert session.spec.name == "windowed"
            assert session.spec.params["window"] == 50
            assert session.spec.params["inner"] == "abacus:budget=100,seed=1"
            assert isinstance(session.estimator, WindowedEstimator)

    def test_window_time_and_strict(self):
        with open_session(
            "exact", window_time=4.0, window_strict=True
        ) as session:
            estimator = session.estimator
            assert estimator.window_time == 4.0
            assert estimator.strict
            session.ingest(timed_insertion("u", "v", 1.0))
            session.ingest(timed_insertion("u2", "v", 9.0))
            assert estimator.live_edges == 1

    def test_window_strict_alone_raises(self):
        with pytest.raises(SpecError):
            open_session("exact", window_strict=True)

    def test_windowing_an_instance_raises(self):
        from repro.core.exact import ExactStreamingCounter

        with pytest.raises(SpecError):
            open_session(ExactStreamingCounter(), window=5)

    def test_window_over_shards_composes(self):
        with open_session(
            "abacus:budget=100,seed=5", shards=2, window=100
        ) as session:
            assert session.spec.name == "windowed"
            inner = session.spec.params["inner"]
            assert inner.startswith("sharded:")
            session.ingest(_stream(150))
            assert session.estimator.live_edges == 100

    def test_windowed_estimate_counts_only_the_window(self):
        with open_session("exact", window=3) as session:
            session.ingest(BUTTERFLY)
            assert session.estimate == 0.0
        with open_session("exact", window=4) as session:
            session.ingest(BUTTERFLY)
            assert session.estimate == 1.0


class TestObservers:
    def test_checkpoints_fire_at_input_offsets(self):
        """Offsets count ingested elements, not expanded ones."""
        stream = _stream(300)
        seen = []
        with open_session("abacus:budget=50,seed=2", window=40) as session:
            session.on_checkpoint(
                lambda elements, _: seen.append(elements), every=64
            )
            session.ingest(stream)
        assert seen == [64, 128, 192, 256]
        # Sanity: expiries actually happened underneath.
        assert stream and len(stream) > 64

    def test_checkpoint_marks_and_batched_ingest_agree_with_element_path(
        self,
    ):
        stream = _stream(200)
        marks = [7, 99, 150]

        def run(batch_size):
            seen = []
            with open_session(
                "abacus:budget=50,seed=2", window=40
            ) as session:
                session.on_checkpoint(
                    lambda elements, _: seen.append(elements), at=marks
                )
                session.ingest(stream, batch_size=batch_size)
                estimate = session.estimate
            return seen, estimate

        batched = run(64)
        elementwise = run(1)
        assert batched == elementwise
        assert batched[0] == marks

    def test_estimate_change_observers_see_expiry_deltas(self):
        deltas = []
        with open_session("exact", window=4) as session:
            session.on_estimate_change(lambda delta, _: deltas.append(delta))
            session.ingest(BUTTERFLY)
            session.ingest(insertion("u9", "v9"))  # evicts the butterfly
        assert deltas == [1.0, -1.0]


class TestSnapshotRestore:
    def test_mid_window_session_round_trip(self):
        stream = _stream(500)
        with open_session("abacus:budget=80,seed=6", window=120) as session:
            session.ingest(stream[:300])
            snapshot = session.snapshot()
            session.ingest(stream[300:])
            final_estimate = session.estimate
            final_state = session.estimator.state_to_dict()

        assert snapshot["estimator"] == "windowed"
        restored = restore_session(snapshot)
        assert restored.elements == 300
        restored.ingest(stream[300:])
        assert restored.estimate == final_estimate
        assert restored.estimator.state_to_dict() == final_state

    def test_snapshot_captures_pending_expiry_buffer(self):
        with open_session("abacus:budget=50,seed=1", window=10) as session:
            session.ingest(_stream(60)[:25])
            snapshot = session.snapshot()
        ring = snapshot["state"]["ring"]["entries"]
        assert len(ring) == 10  # exactly the live window
        assert snapshot["state"]["expired"] == 15
