"""The window-equivalence contract, property-tested.

The load-bearing guarantee of :mod:`repro.window` (ISSUE 4 acceptance):
for any input stream and any window configuration, the windowed
estimator is **bit-identical** — estimate *and* complete
``state_to_dict()`` — to running the wrapped estimator over the
explicit insert+delete stream produced by the reference expansion
:func:`repro.window.reference.expand_window_stream`.  That must hold

* for the element path and every ragged batch split (the batched
  expiry path piggybacks on ``process_batch``),
* across stream shapes: insert-only, fully dynamic with explicit
  deletions, timestamped, and combined count+time windows,
* through a snapshot/restore cut anywhere mid-window.

Everything here drives ABACUS inners (seeded, snapshot-capable, with
the vectorized batch kernel behind ``process_batch``), so the property
also covers the interaction between expiry synthesis and the PR-2 fast
path.
"""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import build_estimator
from repro.streams.dynamic import make_fully_dynamic
from repro.types import TimedEdge, deletion, insertion
from repro.window import WindowedEstimator, expand_window_stream

BUDGET = 60


def _inner(seed):
    return build_estimator(f"abacus:budget={BUDGET},seed={seed}")


def _windowed(seed, window, window_time):
    return WindowedEstimator(
        f"abacus:budget={BUDGET},seed={seed}",
        window=window,
        window_time=window_time,
    )


def _replay_reference(seed, stream, window, window_time):
    """The specification: the inner estimator over the expanded stream."""
    reference = _inner(seed)
    for element in expand_window_stream(
        stream, window=window, window_time=window_time, strict=False
    ):
        reference.process(element)
    return reference


def _ragged_splits(n, rng):
    splits = []
    position = 0
    while position < n:
        size = min(rng.choice([1, 2, 3, 7, 16, 64]), n - position)
        splits.append(size)
        position += size
    return splits


# ----------------------------------------------------------------------
# Stream strategies
# ----------------------------------------------------------------------
edge_lists = st.lists(
    st.tuples(st.integers(0, 10), st.integers(100, 110)),
    unique=True,
    min_size=4,
    max_size=60,
)

#: (edges, alpha, stream seed) — expanded into a fully dynamic stream
#: whose deletions may target edges the window already expired (the
#: lenient-drop path), exactly the hard case for equivalence.
dynamic_params = st.tuples(
    edge_lists, st.floats(0.0, 0.8), st.integers(0, 2**31)
)

count_windows = st.integers(1, 30)
time_windows = st.floats(0.25, 12.0)


def _dynamic_stream(params):
    edges, alpha, stream_seed = params
    return list(make_fully_dynamic(edges, alpha, random.Random(stream_seed)))


def _timed_stream(params, max_dt=2.0):
    """Stamp a dynamic stream with non-decreasing pseudo-timestamps."""
    stream = _dynamic_stream(params)
    rng = random.Random(params[2] ^ 0x5EED)
    clock = 0.0
    timed = []
    for element in stream:
        clock += rng.random() * max_dt
        timed.append(TimedEdge(element.u, element.v, element.op, clock))
    return timed


# ----------------------------------------------------------------------
# Element path
# ----------------------------------------------------------------------
@given(dynamic_params, count_windows, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_count_window_elementwise_is_bit_identical(params, window, seed):
    stream = _dynamic_stream(params)
    engine = _windowed(seed, window, 0.0)
    for element in stream:
        engine.process(element)
    reference = _replay_reference(seed, stream, window, 0.0)
    assert engine.estimate == reference.estimate
    assert engine.inner.state_to_dict() == reference.state_to_dict()


@given(dynamic_params, time_windows, st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_time_window_elementwise_is_bit_identical(params, horizon, seed):
    stream = _timed_stream(params)
    engine = _windowed(seed, 0, horizon)
    for element in stream:
        engine.process(element)
    reference = _replay_reference(seed, stream, 0, horizon)
    assert engine.estimate == reference.estimate
    assert engine.inner.state_to_dict() == reference.state_to_dict()


@given(dynamic_params, count_windows, time_windows, st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_combined_windows_elementwise_is_bit_identical(
    params, window, horizon, seed
):
    stream = _timed_stream(params)
    engine = _windowed(seed, window, horizon)
    for element in stream:
        engine.process(element)
    reference = _replay_reference(seed, stream, window, horizon)
    assert engine.estimate == reference.estimate
    assert engine.inner.state_to_dict() == reference.state_to_dict()


# ----------------------------------------------------------------------
# Batched path — ragged splits
# ----------------------------------------------------------------------
@given(
    dynamic_params,
    count_windows,
    st.integers(0, 2**31),
    st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_ragged_batches_match_reference_and_element_path(
    params, window, seed, split_seed
):
    stream = _dynamic_stream(params)
    batched = _windowed(seed, window, 0.0)
    position = 0
    for size in _ragged_splits(len(stream), random.Random(split_seed)):
        batched.process_batch(stream[position : position + size])
        position += size
    elementwise = _windowed(seed, window, 0.0)
    for element in stream:
        elementwise.process(element)
    reference = _replay_reference(seed, stream, window, 0.0)
    assert batched.estimate == reference.estimate
    assert batched.state_to_dict() == elementwise.state_to_dict()
    assert batched.inner.state_to_dict() == reference.state_to_dict()


@given(
    dynamic_params,
    time_windows,
    st.integers(0, 2**31),
    st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_timed_ragged_batches_match_reference(
    params, horizon, seed, split_seed
):
    stream = _timed_stream(params)
    batched = _windowed(seed, 0, horizon)
    position = 0
    for size in _ragged_splits(len(stream), random.Random(split_seed)):
        batched.process_batch(stream[position : position + size])
        position += size
    reference = _replay_reference(seed, stream, 0, horizon)
    assert batched.estimate == reference.estimate
    assert batched.inner.state_to_dict() == reference.state_to_dict()


# ----------------------------------------------------------------------
# Mid-window snapshot / restore
# ----------------------------------------------------------------------
@given(
    dynamic_params,
    count_windows,
    st.integers(0, 2**31),
    st.floats(0.1, 0.9),
)
@settings(max_examples=40, deadline=None)
def test_mid_window_snapshot_restore_is_bit_identical(
    params, window, seed, cut_fraction
):
    stream = _dynamic_stream(params)
    cut = max(1, int(len(stream) * cut_fraction))
    uninterrupted = _windowed(seed, window, 0.0)
    for element in stream:
        uninterrupted.process(element)

    engine = _windowed(seed, window, 0.0)
    for element in stream[:cut]:
        engine.process(element)
    snapshot = json.loads(json.dumps(engine.state_to_dict()))
    restored = WindowedEstimator.from_state_dict(snapshot)
    position = cut
    for size in _ragged_splits(len(stream) - cut, random.Random(seed)):
        restored.process_batch(stream[position : position + size])
        position += size
    assert restored.estimate == uninterrupted.estimate
    assert restored.state_to_dict() == uninterrupted.state_to_dict()


@given(dynamic_params, time_windows, st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_mid_window_snapshot_restore_timed(params, horizon, seed):
    stream = _timed_stream(params)
    cut = len(stream) // 2 or 1
    uninterrupted = _windowed(seed, 0, horizon)
    for element in stream:
        uninterrupted.process(element)
    engine = _windowed(seed, 0, horizon)
    for element in stream[:cut]:
        engine.process(element)
    restored = WindowedEstimator.from_state_dict(
        json.loads(json.dumps(engine.state_to_dict()))
    )
    for element in stream[cut:]:
        restored.process(element)
    assert restored.estimate == uninterrupted.estimate
    assert restored.state_to_dict() == uninterrupted.state_to_dict()


# ----------------------------------------------------------------------
# Reference sanity — the spec agrees with the legacy stream adapter
# ----------------------------------------------------------------------
@given(edge_lists, count_windows)
@settings(max_examples=40, deadline=None)
def test_reference_matches_legacy_sliding_window_adapter(edges, window):
    """For insert-only input the expansion reproduces
    :func:`repro.streams.window.sliding_window_stream` exactly."""
    from repro.streams.window import sliding_window_stream

    stream = [insertion(u, v) for u, v in edges]
    assert list(expand_window_stream(stream, window=window)) == list(
        sliding_window_stream(edges, window)
    )


def test_strict_mode_agreement():
    """Engine and reference raise on the same strict violation."""
    import pytest

    from repro.errors import StreamError

    stream = [insertion("a", "x"), insertion("b", "y"), deletion("a", "x")]
    engine = WindowedEstimator("exact", window=1, strict=True)
    with pytest.raises(StreamError):
        for element in stream:
            engine.process(element)
    with pytest.raises(StreamError):
        list(expand_window_stream(stream, window=1, strict=True))
