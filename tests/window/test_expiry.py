"""Unit tests for the pending-expiry ring."""

import json
import random

import pytest

from repro.window.expiry import ExpiryRing


@pytest.fixture
def ring():
    r = ExpiryRing()
    for index in range(5):
        r.push((index, 100 + index), float(index))
    return r


class TestBasics:
    def test_len_and_contains(self, ring):
        assert len(ring) == 5
        assert (0, 100) in ring
        assert (9, 109) not in ring

    def test_push_preserves_arrival_order(self, ring):
        assert ring.live_edges() == [(i, 100 + i) for i in range(5)]

    def test_oldest_time(self, ring):
        assert ring.oldest_time() == 0.0
        assert ExpiryRing().oldest_time() is None


class TestTimeExpiry:
    def test_expires_inclusive_cutoff_in_arrival_order(self, ring):
        assert list(ring.expire_older_than(2.0)) == [
            (0, 100),
            (1, 101),
            (2, 102),
        ]
        assert len(ring) == 2

    def test_expire_nothing_below_oldest(self, ring):
        assert list(ring.expire_older_than(-1.0)) == []
        assert len(ring) == 5

    def test_expire_everything(self, ring):
        assert len(list(ring.expire_older_than(100.0))) == 5
        assert len(ring) == 0
        assert ring.oldest_time() is None


class TestCountEviction:
    def test_evicts_oldest_down_to_capacity(self, ring):
        assert list(ring.evict_over_capacity(2)) == [
            (0, 100),
            (1, 101),
            (2, 102),
        ]
        assert len(ring) == 2
        assert ring.live_edges() == [(3, 103), (4, 104)]

    def test_capacity_already_satisfied(self, ring):
        assert list(ring.evict_over_capacity(5)) == []
        assert list(ring.evict_over_capacity(9)) == []


class TestTombstones:
    def test_remove_marks_dead_without_scanning(self, ring):
        assert ring.remove((2, 102))
        assert len(ring) == 4
        assert (2, 102) not in ring
        assert ring.live_edges() == [(0, 100), (1, 101), (3, 103), (4, 104)]

    def test_remove_missing_is_false(self, ring):
        assert not ring.remove(("nope", "nothing"))
        assert len(ring) == 5

    def test_expiry_skips_tombstones(self, ring):
        ring.remove((0, 100))
        ring.remove((2, 102))
        assert list(ring.expire_older_than(3.0)) == [(1, 101), (3, 103)]
        assert ring.live_edges() == [(4, 104)]

    def test_eviction_skips_tombstones(self, ring):
        ring.remove((1, 101))
        assert list(ring.evict_over_capacity(2)) == [(0, 100), (2, 102)]
        assert ring.live_edges() == [(3, 103), (4, 104)]

    def test_oldest_time_skips_tombstones(self, ring):
        ring.remove((0, 100))
        assert ring.oldest_time() == 1.0


class TestSnapshot:
    def test_round_trip_compacts_tombstones(self, ring):
        ring.remove((1, 101))
        state = json.loads(json.dumps(ring.state_to_dict()))
        restored = ExpiryRing.from_state_dict(state)
        assert restored.live_edges() == ring.live_edges()
        assert len(restored) == len(ring)
        # Restored entries are proper tuples again after JSON listifies.
        assert (0, 100) in restored

    def test_empty_round_trip(self):
        restored = ExpiryRing.from_state_dict(ExpiryRing().state_to_dict())
        assert len(restored) == 0


class TestTombstoneBounds:
    def test_deletion_heavy_traffic_keeps_buffer_compact(self):
        """Tombstones never accumulate past the live count.

        Insert/delete pairs with no expiry in sight (the count-only
        window, deletion-heavy regime) must leave the deque O(live),
        not O(total insertions).
        """
        ring = ExpiryRing()
        for index in range(5000):
            edge = (index, 10_000 + index)
            ring.push(edge, float(index))
            assert ring.remove(edge)
            assert len(ring._entries) <= 2 * len(ring) + 1
        assert len(ring) == 0
        assert len(ring._entries) == 0

    def test_interleaved_removals_stay_bounded_and_ordered(self):
        rng = random.Random(3)
        ring = ExpiryRing()
        model = []
        for index in range(4000):
            edge = (index, 10_000 + index)
            ring.push(edge, float(index))
            model.append(edge)
            if model and rng.random() < 0.7:
                victim = model.pop(rng.randrange(len(model)))
                assert ring.remove(victim)
            assert len(ring._entries) <= 2 * len(ring) + 1
        assert ring.live_edges() == model


class TestRandomisedConsistency:
    def test_mixed_workload_against_model(self):
        """Ring behaviour matches a brute-force list model over 2k ops."""
        rng = random.Random(7)
        ring = ExpiryRing()
        model = []  # (edge, time) live, arrival order
        clock = 0.0
        next_id = 0
        for _ in range(2000):
            op = rng.random()
            if op < 0.5 or not model:
                clock += rng.random()
                edge = (next_id, 10_000 + next_id)
                next_id += 1
                ring.push(edge, clock)
                model.append((edge, clock))
            elif op < 0.7:
                edge = rng.choice(model)[0]
                assert ring.remove(edge)
                model = [(e, t) for e, t in model if e != edge]
            elif op < 0.85:
                cutoff = clock - rng.random() * 3
                expired = list(ring.expire_older_than(cutoff))
                expected = [e for e, t in model if t <= cutoff]
                model = [(e, t) for e, t in model if t > cutoff]
                assert expired == expected
            else:
                capacity = rng.randrange(0, len(model) + 2)
                evicted = list(ring.evict_over_capacity(capacity))
                overflow = max(0, len(model) - capacity)
                assert evicted == [e for e, _ in model[:overflow]]
                model = model[overflow:]
            assert len(ring) == len(model)
        assert ring.live_edges() == [e for e, _ in model]
