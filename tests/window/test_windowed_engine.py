"""Unit tests for the sliding-window estimator engine."""

import json
import random

import pytest

from repro.api import (
    build_estimator,
    get_registration,
    open_session,
    parse_spec,
)
from repro.errors import EstimatorError, SpecError, StreamError
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.dynamic import stream_from_edges
from repro.types import TimedEdge, deletion, insertion, timed_insertion
from repro.window import WindowedEstimator

BUTTERFLY = [
    insertion("u1", "v1"),
    insertion("u1", "v2"),
    insertion("u2", "v1"),
    insertion("u2", "v2"),
]


class TestConfigValidation:
    def test_both_windows_disabled_raises(self):
        with pytest.raises(SpecError):
            WindowedEstimator("exact")

    @pytest.mark.parametrize(
        "kwargs", [{"window": -1}, {"window_time": -0.5}]
    )
    def test_negative_windows_raise(self, kwargs):
        with pytest.raises(SpecError):
            WindowedEstimator("exact", **kwargs)

    def test_unknown_inner_raises(self):
        with pytest.raises(SpecError):
            WindowedEstimator("not_an_estimator", window=4)


class TestCountWindow:
    def test_window_keeps_butterfly(self):
        engine = WindowedEstimator("exact", window=4)
        engine.process_batch(BUTTERFLY)
        assert engine.estimate == 1.0
        assert engine.live_edges == 4

    def test_eviction_forgets_butterfly(self):
        engine = WindowedEstimator("exact", window=3)
        engine.process_batch(BUTTERFLY)
        # (u1, v1) was evicted before (u2, v2) arrived.
        assert engine.estimate == 0.0
        assert engine.live_edges == 3
        assert engine.expired_count == 1

    def test_window_never_exceeded(self):
        engine = WindowedEstimator("exact", window=5)
        for index in range(50):
            engine.process(insertion(index, 1000 + index))
            assert engine.live_edges <= 5
        assert engine.expired_count == 45

    def test_delta_includes_expiry_contribution(self):
        engine = WindowedEstimator("exact", window=4)
        engine.process_batch(BUTTERFLY)
        # The fifth edge evicts (u1, v1), destroying the butterfly.
        assert engine.process(insertion("u9", "v9")) == -1.0


class TestTimeWindow:
    def test_edges_expire_at_age(self):
        engine = WindowedEstimator("exact", window_time=2.0)
        engine.process(timed_insertion("u1", "v1", 0.0))
        engine.process(timed_insertion("u1", "v2", 1.0))
        assert engine.live_edges == 2
        # Age of (u1, v1) reaches exactly 2.0 — inclusive expiry.
        engine.process(timed_insertion("u2", "v1", 2.0))
        assert engine.live_edges == 2
        assert engine.expired_count == 1
        assert engine.clock == 2.0

    def test_untimed_element_rejected(self):
        engine = WindowedEstimator("exact", window_time=1.0)
        with pytest.raises(StreamError):
            engine.process(insertion("u", "v"))

    def test_decreasing_timestamps_rejected(self):
        engine = WindowedEstimator("exact", window_time=1.0)
        engine.process(timed_insertion("u", "v", 5.0))
        with pytest.raises(StreamError):
            engine.process(timed_insertion("u2", "v", 4.0))

    def test_equal_timestamps_allowed(self):
        engine = WindowedEstimator("exact", window_time=1.0)
        engine.process(timed_insertion("u", "v", 5.0))
        engine.process(timed_insertion("u2", "v", 5.0))
        assert engine.live_edges == 2

    def test_timed_deletion_advances_clock_and_expires(self):
        engine = WindowedEstimator("exact", window_time=2.0, strict=True)
        engine.process(timed_insertion("u1", "v1", 0.0))
        engine.process(timed_insertion("u2", "v2", 1.0))
        # The deletion's timestamp first expires (u1, v1), then the
        # still-live (u2, v2) is deleted explicitly.
        engine.process(TimedEdge("u2", "v2", deletion("u2", "v2").op, 2.5))
        assert engine.live_edges == 0
        assert engine.expired_count == 1

    def test_combined_count_and_time_window(self):
        engine = WindowedEstimator("exact", window=2, window_time=10.0)
        for index in range(4):
            engine.process(timed_insertion(index, 100 + index, float(index)))
        assert engine.live_edges == 2  # count bound dominates
        engine.process(timed_insertion(9, 109, 50.0))
        assert engine.live_edges == 1  # time bound flushed the rest


class TestExplicitDeletions:
    def test_live_deletion_forwards_and_unbuffers(self):
        engine = WindowedEstimator("exact", window=10)
        engine.process_batch(BUTTERFLY)
        assert engine.process(deletion("u2", "v2")) == -1.0
        assert engine.live_edges == 3
        assert engine.dropped_deletions == 0

    def test_lenient_drop_of_non_live_deletion(self):
        engine = WindowedEstimator("exact", window=10)
        engine.process(insertion("u", "v"))
        assert engine.process(deletion("ghost", "edge")) == 0.0
        assert engine.dropped_deletions == 1
        assert engine.estimate == 0.0

    def test_strict_raises_on_non_live_deletion(self):
        engine = WindowedEstimator("exact", window=10, strict=True)
        engine.process(insertion("u", "v"))
        with pytest.raises(StreamError):
            engine.process(deletion("ghost", "edge"))

    def test_strict_raises_on_expired_deletion(self):
        engine = WindowedEstimator("exact", window=1, strict=True)
        engine.process(insertion("a", "b"))
        engine.process(insertion("c", "d"))  # expires ("a", "b")
        with pytest.raises(StreamError):
            engine.process(deletion("a", "b"))

    def test_duplicate_live_insert_always_raises(self):
        for strict in (False, True):
            engine = WindowedEstimator("exact", window=10, strict=strict)
            engine.process(insertion("u", "v"))
            with pytest.raises(StreamError):
                engine.process(insertion("u", "v"))

    def test_reinsert_after_expiry_is_a_new_edge(self):
        engine = WindowedEstimator("exact", window=1)
        engine.process(insertion("a", "b"))
        engine.process(insertion("c", "d"))
        assert engine.process(insertion("a", "b")) == 0.0
        assert engine.live_edges == 1


class TestErrorPathConsistency:
    """Contract violations must not desynchronise ring and inner state.

    The engine must land in exactly the state of replaying the
    reference expansion up to its raise point: pre-violation expansion
    (earlier batch elements, triggered expiries) is forwarded, nothing
    is half-applied.
    """

    def test_mid_batch_duplicate_forwards_prefix(self):
        engine = WindowedEstimator("exact", window=10)
        with pytest.raises(StreamError):
            engine.process_batch(
                [
                    insertion("a", "b"),
                    insertion("c", "d"),
                    insertion("a", "b"),
                ]
            )
        # The two valid inserts reached both the ring and the inner.
        assert engine.live_edges == 2
        assert engine.inner.memory_edges == 2
        # The window keeps working: a legitimate deletion succeeds.
        assert engine.process(deletion("a", "b")) == 0.0
        assert engine.live_edges == 1

    def test_strict_deletion_after_expiry_keeps_expiries_applied(self):
        engine = WindowedEstimator("exact", window_time=2.0, strict=True)
        engine.process_batch(
            [
                timed_insertion("u1", "v1", 0.0),
                timed_insertion("u1", "v2", 0.1),
                timed_insertion("u2", "v1", 0.2),
                timed_insertion("u2", "v2", 0.3),
            ]
        )
        assert engine.estimate == 1.0
        # The timestamp expires all four live edges, then the deletion
        # targets a non-live edge and raises — but the expiries stand.
        ghost = TimedEdge("ghost", "edge", deletion("x", "y").op, 50.0)
        with pytest.raises(StreamError):
            engine.process(ghost)
        assert engine.live_edges == 0
        assert engine.inner.memory_edges == 0
        assert engine.estimate == 0.0

    def test_element_path_duplicate_leaves_state_untouched(self):
        engine = WindowedEstimator("exact", window=10)
        engine.process(insertion("a", "b"))
        with pytest.raises(StreamError):
            engine.process(insertion("a", "b"))
        assert engine.live_edges == 1
        assert engine.inner.memory_edges == 1

    def test_error_state_matches_reference_replay(self):
        from repro.window import expand_window_stream

        stream = [
            insertion("a", "x"),
            insertion("b", "y"),
            insertion("c", "z"),
            insertion("b", "y"),  # duplicate while live
        ]
        engine = WindowedEstimator("exact", window=2)
        with pytest.raises(StreamError):
            engine.process_batch(stream)
        reference = WindowedEstimator("exact", window=2).inner
        replayed = []
        with pytest.raises(StreamError):
            for element in expand_window_stream(stream, window=2):
                replayed.append(element)
        for element in replayed:
            reference.process(element)
        assert engine.inner.memory_edges == reference.memory_edges
        assert engine.estimate == reference.estimate


class TestRegistry:
    def test_spec_string_builds(self):
        engine = build_estimator(
            "windowed:inner=[abacus:budget=100,seed=1],window=50"
        )
        assert isinstance(engine, WindowedEstimator)
        assert engine.window == 50
        assert engine.inner_spec.name == "abacus"

    def test_alias(self):
        engine = build_estimator("window:inner=exact,window=5")
        assert isinstance(engine, WindowedEstimator)

    def test_capability_flags(self):
        registration = get_registration("windowed")
        assert registration.supports_batch
        assert registration.supports_snapshot
        assert not registration.supports_sharding

    def test_seed_param_overrides_inner_seed(self):
        engine = build_estimator(
            "windowed:inner=[abacus:budget=100,seed=1],window=5", seed=77
        )
        assert engine.inner_spec.params == {"budget": 100, "seed": 77}

    def test_seed_param_ignored_for_seedless_inner(self):
        engine = build_estimator("windowed:inner=exact,window=5", seed=77)
        assert engine.inner_spec.name == "exact"

    def test_bad_window_type_rejected_at_spec_level(self):
        with pytest.raises(SpecError):
            build_estimator("windowed:inner=exact,window=soon")


class TestComposition:
    def test_windowed_over_sharded(self):
        engine = build_estimator(
            "windowed:inner=[sharded:inner=[exact],shards=2],window=100"
        )
        try:
            # Left vertices 0 and 2 collide in shard 0 at shards=2.
            engine.process_batch(
                [insertion(0, "v1"), insertion(0, "v2"),
                 insertion(2, "v1"), insertion(2, "v2")]
            )
            assert engine.estimate == 2.0
            assert engine.live_edges == 4
        finally:
            engine.close()

    def test_windowed_over_sharded_expiry_reaches_shards(self):
        engine = build_estimator(
            "windowed:inner=[sharded:inner=[exact],shards=2],window=3"
        )
        try:
            engine.process_batch(
                [insertion(0, "v1"), insertion(0, "v2"),
                 insertion(2, "v1"), insertion(2, "v2")]
            )
            assert engine.estimate == 0.0  # first edge expired shard-side
            assert engine.inner.memory_edges == 3
        finally:
            engine.close()

    def test_sharded_over_windowed_refused(self):
        with pytest.raises(SpecError):
            build_estimator(
                "sharded:inner=[windowed:inner=exact,window=5],shards=2"
            )

    @pytest.mark.parametrize("baseline", ["fleet", "cas", "sgrapp"])
    def test_insert_only_inners_refused(self, baseline):
        """Windowing an estimator that drops deletions would silently
        report infinite-window counts — refuse at build time."""
        with pytest.raises(SpecError, match="insert-only"):
            build_estimator(f"windowed:inner={baseline},window=10")

    def test_registry_surfaces_windowing_capability(self):
        assert get_registration("abacus").supports_windowing
        assert get_registration("sharded").supports_windowing
        assert not get_registration("fleet").supports_windowing
        assert not get_registration("cas").supports_windowing
        assert not get_registration("sgrapp").supports_windowing


class TestSnapshot:
    def _run(self, stream):
        engine = build_estimator(
            "windowed:inner=[abacus:budget=120,seed=4],window=80"
        )
        for element in stream:
            engine.process(element)
        return engine

    def test_mid_window_round_trip_continues_identically(self):
        edges = bipartite_erdos_renyi(25, 25, 300, random.Random(3))
        stream = list(stream_from_edges(edges))
        engine = self._run(stream[:200])
        state = json.loads(json.dumps(engine.state_to_dict()))
        restored = WindowedEstimator.from_state_dict(state)
        assert restored.live_edges == engine.live_edges
        assert restored.expired_count == engine.expired_count
        for element in stream[200:]:
            assert restored.process(element) == engine.process(element)
        assert restored.estimate == engine.estimate
        assert restored.state_to_dict() == engine.state_to_dict()

    def test_snapshot_requires_snapshot_capable_inner(self):
        engine = WindowedEstimator("exact", window=4)
        with pytest.raises(SpecError):
            engine.state_to_dict()

    def test_missing_field_raises_estimator_error(self):
        with pytest.raises(EstimatorError):
            WindowedEstimator.from_state_dict({"inner": "abacus"})

    def test_clock_round_trips(self):
        engine = WindowedEstimator(
            "abacus:budget=50,seed=1", window_time=4.0
        )
        engine.process(timed_insertion("u", "v", 7.25))
        state = json.loads(json.dumps(engine.state_to_dict()))
        assert WindowedEstimator.from_state_dict(state).clock == 7.25


class TestLifecycle:
    def test_flush_delegates_to_buffering_inner(self):
        engine = build_estimator(
            "windowed:inner=[parabacus:budget=200,seed=2,batch_size=64],"
            "window=500"
        )
        edges = bipartite_erdos_renyi(20, 20, 150, random.Random(8))
        for element in stream_from_edges(edges):
            engine.process(element)
        engine.flush()
        reference = build_estimator(
            "parabacus:budget=200,seed=2,batch_size=64"
        )
        from repro.window import expand_window_stream

        for element in expand_window_stream(
            list(stream_from_edges(edges)), window=500
        ):
            reference.process(element)
        reference.flush()
        assert engine.estimate == reference.estimate

    def test_flush_noop_for_unbuffered_inner(self):
        assert WindowedEstimator("exact", window=4).flush() == 0.0

    def test_empty_batch_is_noop(self):
        engine = WindowedEstimator("exact", window=4)
        assert engine.process_batch([]) == 0.0

    def test_session_instance_wrap(self):
        engine = WindowedEstimator("exact", window=4)
        with open_session(engine) as session:
            session.ingest(BUTTERFLY)
            assert session.estimate == 1.0
            assert session.spec == parse_spec("windowed")
