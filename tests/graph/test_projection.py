"""Unit tests for one-mode projection."""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.projection import project, top_co_neighbors
from repro.types import Side


class TestProject:
    def test_butterfly_projects_to_weight2_pair(self, butterfly_graph):
        weights = project(butterfly_graph, Side.LEFT)
        assert len(weights) == 1
        assert set(weights.values()) == {2}

    def test_weights_match_common_neighbours(self, small_random_graph):
        weights = project(small_random_graph, Side.LEFT)
        for (w, x), weight in weights.items():
            common = small_random_graph.neighbors(w) & (
                small_random_graph.neighbors(x)
            )
            assert weight == len(common)

    def test_right_side_projection(self, biclique_3x3):
        weights = project(biclique_3x3, Side.RIGHT)
        # 3 right vertices -> 3 pairs, each sharing all 3 left vertices.
        assert len(weights) == 3
        assert set(weights.values()) == {3}

    def test_empty_graph(self):
        assert project(BipartiteGraph()) == {}


class TestTopCoNeighbors:
    def test_recommendation_ordering(self):
        # user1 and user2 share 2 items; user1 and user3 share 1.
        g = BipartiteGraph(
            [
                ("u1", "i1"),
                ("u1", "i2"),
                ("u1", "i3"),
                ("u2", "i1"),
                ("u2", "i2"),
                ("u3", "i3"),
            ]
        )
        ranked = top_co_neighbors(g, "u1")
        assert ranked[0] == ("u2", 2)
        assert ("u3", 1) in ranked

    def test_limit(self, biclique_3x3):
        ranked = top_co_neighbors(biclique_3x3, "a", limit=1)
        assert len(ranked) == 1

    def test_isolated_vertex(self):
        g = BipartiteGraph([(1, 10)])
        assert top_co_neighbors(g, 1) == []
