"""Unit tests for synthetic graph generators."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    bipartite_chung_lu,
    bipartite_configuration_model,
    bipartite_erdos_renyi,
    planted_bicliques,
    power_law_degree_sequence,
)


class TestPowerLawDegrees:
    def test_length_and_bounds(self):
        rng = random.Random(0)
        degrees = power_law_degree_sequence(500, 2.5, min_degree=2, rng=rng)
        assert len(degrees) == 500
        assert min(degrees) >= 2
        assert max(degrees) <= 500

    def test_max_degree_cap(self):
        rng = random.Random(0)
        degrees = power_law_degree_sequence(
            500, 1.5, max_degree=10, rng=rng
        )
        assert max(degrees) <= 10

    def test_heavier_tail_with_smaller_exponent(self):
        rng1, rng2 = random.Random(7), random.Random(7)
        heavy = power_law_degree_sequence(5000, 1.8, rng=rng1)
        light = power_law_degree_sequence(5000, 3.5, rng=rng2)
        assert max(heavy) > max(light)

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            power_law_degree_sequence(10, 1.0)

    def test_invalid_min_degree(self):
        with pytest.raises(GraphError):
            power_law_degree_sequence(10, 2.0, min_degree=0)


class TestErdosRenyi:
    def test_exact_edge_count_and_validity(self):
        rng = random.Random(3)
        edges = bipartite_erdos_renyi(20, 15, 120, rng)
        assert len(edges) == 120
        assert len(set(edges)) == 120
        g = BipartiteGraph(edges)  # raises on partition violations
        assert g.num_edges == 120

    def test_partitions_disjoint(self):
        rng = random.Random(3)
        edges = bipartite_erdos_renyi(10, 10, 50, rng)
        lefts = {u for u, _ in edges}
        rights = {v for _, v in edges}
        assert lefts.isdisjoint(rights)

    def test_too_many_edges_raises(self):
        with pytest.raises(GraphError):
            bipartite_erdos_renyi(3, 3, 10, random.Random(0))

    def test_deterministic_given_seed(self):
        e1 = bipartite_erdos_renyi(10, 10, 40, random.Random(5))
        e2 = bipartite_erdos_renyi(10, 10, 40, random.Random(5))
        assert e1 == e2


class TestChungLu:
    def test_edge_count_distinct_and_valid(self):
        rng = random.Random(11)
        edges = bipartite_chung_lu(200, 100, 1500, rng=rng)
        assert len(edges) == 1500
        assert len(set(edges)) == 1500
        BipartiteGraph(edges)

    def test_deterministic_given_seed(self):
        e1 = bipartite_chung_lu(100, 50, 400, rng=random.Random(5))
        e2 = bipartite_chung_lu(100, 50, 400, rng=random.Random(5))
        assert e1 == e2

    def test_skew_produces_hubs(self):
        rng = random.Random(13)
        edges = bipartite_chung_lu(
            500, 100, 3000, left_exponent=2.0, right_exponent=1.9, rng=rng
        )
        g = BipartiteGraph(edges)
        mean_right = 3000 / g.num_right
        assert g.max_degree() > 3 * mean_right

    def test_impossible_density_raises(self):
        with pytest.raises(GraphError):
            bipartite_chung_lu(3, 3, 10, rng=random.Random(0))


class TestConfigurationModel:
    def test_respects_degree_budget(self):
        rng = random.Random(2)
        left = [3] * 20
        right = [4] * 15
        edges = bipartite_configuration_model(left, right, rng)
        g = BipartiteGraph(edges)
        for u in g.left_vertices():
            assert g.degree(u) <= 3
        for v in g.right_vertices():
            assert g.degree(v) <= 4

    def test_no_duplicates(self):
        rng = random.Random(2)
        edges = bipartite_configuration_model([5] * 10, [5] * 10, rng)
        assert len(edges) == len(set(edges))


class TestPlantedBicliques:
    def test_planted_butterflies_present(self):
        rng = random.Random(9)
        edges = planted_bicliques(
            n_left=200,
            n_right=200,
            n_background_edges=400,
            n_cliques=2,
            clique_size=(4, 4),
            rng=rng,
        )
        from repro.graph.butterflies import count_butterflies

        g = BipartiteGraph(edges)
        # Each 4x4 biclique alone contributes C(4,2)^2 = 36 butterflies.
        assert count_butterflies(g) >= 2 * 36

    def test_no_duplicate_edges(self):
        rng = random.Random(10)
        edges = planted_bicliques(100, 100, 300, 3, (3, 3), rng)
        assert len(edges) == len(set(edges))
