"""Unit tests for graph statistics."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import bipartite_chung_lu, bipartite_erdos_renyi
from repro.graph.stats import (
    degree_histogram,
    degree_summary,
    summarize_graph,
    top_degree_vertices,
)
from repro.types import Side


class TestDegreeSummary:
    def test_biclique(self, biclique_3x3):
        left = degree_summary(biclique_3x3, Side.LEFT)
        assert left.count == 3
        assert left.total == 9
        assert left.mean == 3.0
        assert left.maximum == left.minimum == 3
        assert left.gini == pytest.approx(0.0)

    def test_star_is_maximally_skewed_on_centre_side(self):
        g = BipartiteGraph((i, 100) for i in range(20))
        left = degree_summary(g, Side.LEFT)
        assert left.gini == pytest.approx(0.0)  # all degree 1
        right = degree_summary(g, Side.RIGHT)
        assert right.count == 1
        assert right.maximum == 20

    def test_skewed_graph_has_higher_gini(self):
        rng = random.Random(1)
        uniform = BipartiteGraph(bipartite_erdos_renyi(200, 200, 800, rng))
        skewed = BipartiteGraph(
            bipartite_chung_lu(
                200, 200, 800, left_exponent=1.9, right_exponent=1.9,
                rng=random.Random(2),
            )
        )
        assert (
            degree_summary(skewed, Side.LEFT).gini
            > degree_summary(uniform, Side.LEFT).gini
        )

    def test_empty_partition_raises(self):
        with pytest.raises(GraphError):
            degree_summary(BipartiteGraph(), Side.LEFT)


class TestSummarize:
    def test_full_summary(self, biclique_3x3):
        summary = summarize_graph(biclique_3x3)
        assert summary.num_edges == 9
        assert summary.butterflies == 9
        assert summary.butterfly_density == 1.0
        assert summary.wedges_left == 9
        assert summary.wedges_right == 9

    def test_skip_exact_count(self, small_random_graph):
        summary = summarize_graph(
            small_random_graph, count_exact_butterflies=False
        )
        assert summary.butterflies is None
        assert summary.butterfly_density is None

    def test_as_dict_keys(self, biclique_3x3):
        d = summarize_graph(biclique_3x3).as_dict()
        assert d["edges"] == 9
        assert d["left_vertices"] == 3
        assert "butterfly_density" in d

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            summarize_graph(BipartiteGraph())


class TestHistogramAndTop:
    def test_histogram_sums_to_vertex_count(self, small_random_graph):
        hist = degree_histogram(small_random_graph, Side.LEFT)
        assert sum(hist.values()) == small_random_graph.num_left

    def test_histogram_weighted_sum_is_edge_count(self, small_random_graph):
        hist = degree_histogram(small_random_graph, Side.LEFT)
        assert (
            sum(d * c for d, c in hist.items())
            == small_random_graph.num_edges
        )

    def test_top_degree_vertices(self):
        g = BipartiteGraph((i, 100) for i in range(5))
        g.add_edge(0, 101)
        top = top_degree_vertices(g, Side.LEFT, limit=1)
        assert top == [(0, 2)]

    def test_top_limit_respected(self, small_random_graph):
        assert len(top_degree_vertices(small_random_graph, Side.RIGHT, 3)) == 3
