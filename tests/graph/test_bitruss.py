"""Unit tests for the k-bitruss decomposition."""

import random

from repro.graph.bipartite import BipartiteGraph
from repro.graph.bitruss import (
    bitruss_decomposition,
    butterfly_support,
    k_bitruss,
)
from repro.graph.butterflies import (
    butterflies_containing_edge,
    count_butterflies,
)
from repro.graph.generators import bipartite_erdos_renyi


class TestSupport:
    def test_support_matches_per_edge_counts(self, biclique_3x3):
        support = butterfly_support(biclique_3x3)
        for (u, v), s in support.items():
            assert s == butterflies_containing_edge(biclique_3x3, u, v)

    def test_single_butterfly_support(self, butterfly_graph):
        support = butterfly_support(butterfly_graph)
        assert set(support.values()) == {1}


class TestDecomposition:
    def test_single_butterfly_bitruss_one(self, butterfly_graph):
        numbers = bitruss_decomposition(butterfly_graph)
        assert set(numbers.values()) == {1}

    def test_biclique_uniform(self, biclique_3x3):
        # K_{3,3}: every edge sits in C(2,1)*C(2,1)=4 butterflies and
        # the graph is edge-transitive, so all bitruss numbers equal 4.
        numbers = bitruss_decomposition(biclique_3x3)
        assert set(numbers.values()) == {4}

    def test_butterfly_free_graph_all_zero(self):
        g = BipartiteGraph([(1, 10), (2, 10), (2, 11)])
        numbers = bitruss_decomposition(g)
        assert set(numbers.values()) == {0}

    def test_covers_every_edge(self, small_random_graph):
        numbers = bitruss_decomposition(small_random_graph)
        assert len(numbers) == small_random_graph.num_edges

    def test_input_graph_untouched(self, biclique_3x3):
        before = set(biclique_3x3.edges())
        bitruss_decomposition(biclique_3x3)
        assert set(biclique_3x3.edges()) == before

    def test_mixed_structure(self):
        # A K_{3,3} with a pendant edge: the pendant's bitruss is 0.
        g = BipartiteGraph()
        for u in range(3):
            for v in range(3):
                g.add_edge(u, 100 + v)
        g.add_edge(50, 100)  # pendant left vertex
        numbers = bitruss_decomposition(g)
        assert numbers[(50, 100)] == 0
        core = [e for e in numbers if e != (50, 100)]
        assert all(numbers[e] == 4 for e in core)


class TestKBitruss:
    def test_k0_keeps_everything(self, small_random_graph):
        result = k_bitruss(small_random_graph, 0)
        assert result.num_edges == small_random_graph.num_edges

    def test_k1_drops_butterfly_free_edges(self):
        g = BipartiteGraph()
        for u in range(2):
            for v in range(2):
                g.add_edge(u, 100 + v)
        g.add_edge(7, 100)  # not in any butterfly
        result = k_bitruss(g, 1)
        assert result.num_edges == 4
        assert not result.has_edge(7, 100)

    def test_large_k_empties_graph(self, butterfly_graph):
        result = k_bitruss(butterfly_graph, 2)
        assert result.num_edges == 0

    def test_consistency_with_decomposition(self):
        rng = random.Random(5)
        g = BipartiteGraph(bipartite_erdos_renyi(12, 10, 50, rng))
        numbers = bitruss_decomposition(g)
        for k in (1, 2, 3):
            subgraph = k_bitruss(g, k)
            expected = {e for e, b in numbers.items() if b >= k}
            assert set(subgraph.edges()) == expected

    def test_every_edge_meets_threshold(self):
        rng = random.Random(6)
        g = BipartiteGraph(bipartite_erdos_renyi(12, 10, 60, rng))
        k = 2
        subgraph = k_bitruss(g, k)
        for u, v in subgraph.edges():
            assert butterflies_containing_edge(subgraph, u, v) >= k

    def test_kbitruss_butterflies_survive(self, biclique_3x3):
        sub = k_bitruss(biclique_3x3, 4)
        assert count_butterflies(sub) == 9
