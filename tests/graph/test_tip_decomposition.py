"""Unit tests for tip decomposition (vertex peeling)."""

import random

from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import count_butterflies
from repro.graph.generators import bipartite_erdos_renyi
from repro.graph.tip_decomposition import (
    butterfly_counts_one_side,
    k_tip,
    max_tip_number,
    tip_decomposition,
)
from repro.types import Side


def _biclique(nl, nr, l_prefix="l", r_prefix="r"):
    g = BipartiteGraph()
    for i in range(nl):
        for j in range(nr):
            g.add_edge(f"{l_prefix}{i}", f"{r_prefix}{j}")
    return g


class TestButterflyCountsOneSide:
    def test_single_butterfly(self):
        g = _biclique(2, 2)
        counts = butterfly_counts_one_side(g, Side.LEFT)
        assert counts == {"l0": 1, "l1": 1}

    def test_biclique_counts(self):
        g = _biclique(3, 3)
        # Each left vertex pairs with 2 others, each pair closes
        # C(3,2)=3 butterflies -> 6 per vertex.
        counts = butterfly_counts_one_side(g, Side.LEFT)
        assert all(c == 6 for c in counts.values())

    def test_right_side_symmetry(self):
        g = _biclique(3, 4)
        left = butterfly_counts_one_side(g, Side.LEFT)
        right = butterfly_counts_one_side(g, Side.RIGHT)
        # Sum over one side counts each butterfly twice (two vertices
        # per side per butterfly) and must match across sides.
        assert sum(left.values()) == sum(right.values())
        assert sum(left.values()) == 2 * count_butterflies(g)

    def test_butterfly_free_graph_all_zero(self):
        g = BipartiteGraph([("a", "x"), ("b", "y")])
        counts = butterfly_counts_one_side(g, Side.LEFT)
        assert counts == {"a": 0, "b": 0}


class TestTipDecomposition:
    def test_single_butterfly_tips(self):
        g = _biclique(2, 2)
        assert tip_decomposition(g, Side.LEFT) == {"l0": 1, "l1": 1}

    def test_biclique_tips_equal_support(self):
        g = _biclique(4, 4)
        tips = tip_decomposition(g, Side.LEFT)
        # Fully symmetric: every vertex peels at its initial count.
        counts = butterfly_counts_one_side(g, Side.LEFT)
        assert tips == counts

    def test_pendant_vertex_gets_zero(self):
        g = _biclique(2, 2)
        g.add_edge("pendant", "r0")
        tips = tip_decomposition(g, Side.LEFT)
        assert tips["pendant"] == 0
        assert tips["l0"] == 1

    def test_two_tiers(self):
        # A dense 3x3 biclique plus a weakly attached left vertex that
        # shares only one butterfly-pair worth of structure.
        g = _biclique(3, 3)
        g.add_edge("weak", "r0")
        g.add_edge("weak", "r1")
        tips = tip_decomposition(g, Side.LEFT)
        # "weak" forms C(2,2)... with each core vertex: common
        # neighbours {r0, r1} -> 1 butterfly per core vertex, 3 total.
        assert tips["weak"] == 3
        assert all(tips[f"l{i}"] > tips["weak"] for i in range(3))

    def test_every_vertex_assigned(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(15, 12, 55, rng=random.Random(0))
        )
        tips = tip_decomposition(g, Side.LEFT)
        assert set(tips) == set(g.left_vertices())

    def test_monotone_against_k_tip(self):
        """tip number >= k  <=>  vertex survives in the k-tip."""
        g = BipartiteGraph(
            bipartite_erdos_renyi(12, 12, 50, rng=random.Random(1))
        )
        tips = tip_decomposition(g, Side.LEFT)
        for k in (1, 2, 4):
            survivors = set(k_tip(g, k, Side.LEFT).left_vertices())
            expected = {u for u, t in tips.items() if t >= k}
            assert survivors == expected

    def test_input_not_modified(self):
        g = _biclique(3, 3)
        before = g.num_edges
        tip_decomposition(g, Side.LEFT)
        assert g.num_edges == before


class TestKTip:
    def test_k1_drops_butterfly_free_structure(self):
        g = _biclique(2, 2)
        g.add_edge("pendant", "r0")
        core = k_tip(g, 1, Side.LEFT)
        assert not core.has_vertex("pendant")
        assert core.num_edges == 4

    def test_k_too_large_empties_graph(self):
        g = _biclique(3, 3)
        core = k_tip(g, 100, Side.LEFT)
        assert core.num_edges == 0

    def test_k0_keeps_everything(self):
        g = _biclique(2, 2)
        g.add_edge("pendant", "r0")
        assert k_tip(g, 0, Side.LEFT).num_edges == g.num_edges

    def test_result_satisfies_invariant(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(14, 14, 60, rng=random.Random(2))
        )
        k = 3
        core = k_tip(g, k, Side.LEFT)
        if core.num_edges:
            counts = butterfly_counts_one_side(core, Side.LEFT)
            assert all(c >= k for c in counts.values())

    def test_maximality(self):
        """No peeled vertex could have survived: re-adding any single
        peeled vertex's edges leaves it under-supported."""
        g = BipartiteGraph(
            bipartite_erdos_renyi(12, 12, 50, rng=random.Random(3))
        )
        k = 2
        core = k_tip(g, k, Side.LEFT)
        survivors = set(core.left_vertices())
        for u in g.left_vertices():
            if u in survivors:
                continue
            trial = core.copy()
            for v in g.neighbors(u):
                trial.add_edge(u, v)
            counts = butterfly_counts_one_side(trial, Side.LEFT)
            assert counts.get(u, 0) < k


class TestMaxTipNumber:
    def test_empty_graph(self):
        assert max_tip_number(BipartiteGraph()) == 0

    def test_biclique(self):
        assert max_tip_number(_biclique(3, 3), Side.LEFT) == 6
