"""Unit tests for wedge utilities."""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.wedges import (
    common_neighbor_count,
    count_wedges,
    wedge_counts_per_pair,
    wedge_participation,
)
from repro.types import Side


class TestCountWedges:
    def test_single_butterfly(self, butterfly_graph):
        # Each side has 2 vertices of degree 2 -> 2 wedges per side.
        assert count_wedges(butterfly_graph, Side.RIGHT) == 2
        assert count_wedges(butterfly_graph, Side.LEFT) == 2

    def test_star(self):
        g = BipartiteGraph((i, 100) for i in range(5))
        assert count_wedges(g, Side.RIGHT) == 10  # C(5, 2)
        assert count_wedges(g, Side.LEFT) == 0

    def test_empty(self):
        g = BipartiteGraph()
        assert count_wedges(g) == 0


class TestPerPair:
    def test_butterfly_pairs(self, butterfly_graph):
        pairs = wedge_counts_per_pair(butterfly_graph, Side.LEFT)
        assert len(pairs) == 1
        assert set(pairs.values()) == {2}

    def test_pair_counts_sum_to_wedges(self, small_random_graph):
        pairs = wedge_counts_per_pair(small_random_graph, Side.LEFT)
        assert sum(pairs.values()) == count_wedges(
            small_random_graph, Side.RIGHT
        )

    def test_butterflies_from_pairs(self, biclique_3x3):
        pairs = wedge_counts_per_pair(biclique_3x3, Side.LEFT)
        butterflies = sum(c * (c - 1) // 2 for c in pairs.values())
        assert butterflies == 9


class TestCommonNeighbors:
    def test_common_neighbor_count(self, butterfly_graph):
        assert common_neighbor_count(butterfly_graph, "u", "x") == 2
        assert common_neighbor_count(butterfly_graph, "v", "w") == 2

    def test_no_common_neighbors(self):
        g = BipartiteGraph([(1, 10), (2, 11)])
        assert common_neighbor_count(g, 1, 2) == 0

    def test_wedge_participation(self, biclique_3x3):
        # Every right vertex has degree 3 -> C(3,2)=3 wedges each.
        assert wedge_participation(biclique_3x3, ["x", "y", "z"]) == 9
