"""Unit tests for exact butterfly counting."""

import math
import random

from repro.graph.bipartite import BipartiteGraph
from repro.graph.butterflies import (
    butterflies_containing_edge,
    butterfly_counts_per_vertex,
    butterfly_density,
    count_butterflies,
    count_butterflies_brute_force,
)
from repro.graph.generators import bipartite_erdos_renyi
from repro.types import Side


class TestGlobalCount:
    def test_single_butterfly(self, butterfly_graph):
        assert count_butterflies(butterfly_graph) == 1

    def test_empty_graph(self):
        assert count_butterflies(BipartiteGraph()) == 0

    def test_single_edge(self):
        assert count_butterflies(BipartiteGraph([(1, 2)])) == 0

    def test_path_has_no_butterfly(self):
        # l1-r1, l2-r1, l2-r2: a path, no 4-cycle.
        g = BipartiteGraph([(1, 10), (2, 10), (2, 11)])
        assert count_butterflies(g) == 0

    def test_biclique_formula(self, biclique_3x3):
        # K_{a,b} has C(a,2)*C(b,2) butterflies.
        assert count_butterflies(biclique_3x3) == 9

    def test_biclique_4x5(self):
        g = BipartiteGraph(
            (u, 100 + v) for u in range(4) for v in range(5)
        )
        expected = math.comb(4, 2) * math.comb(5, 2)
        assert count_butterflies(g) == expected

    def test_both_iteration_sides_agree(self, biclique_3x3):
        left = count_butterflies(biclique_3x3, iterate_side=Side.LEFT)
        right = count_butterflies(biclique_3x3, iterate_side=Side.RIGHT)
        assert left == right == 9

    def test_matches_brute_force_on_random_graphs(self):
        for seed in range(5):
            rng = random.Random(seed)
            g = BipartiteGraph(bipartite_erdos_renyi(15, 12, 60, rng))
            assert count_butterflies(g) == count_butterflies_brute_force(g)

    def test_disjoint_butterflies_add_up(self):
        g = BipartiteGraph()
        for base in (0, 100, 200):
            g.add_edge(base + 1, base + 50)
            g.add_edge(base + 1, base + 51)
            g.add_edge(base + 2, base + 50)
            g.add_edge(base + 2, base + 51)
        assert count_butterflies(g) == 3


class TestPerEdgeCount:
    def test_every_edge_of_single_butterfly(self, butterfly_graph):
        for u, v in butterfly_graph.edges():
            assert butterflies_containing_edge(butterfly_graph, u, v) == 1

    def test_edge_sum_identity(self, biclique_3x3):
        # Each butterfly contains 4 edges, so per-edge counts sum to 4B.
        total = sum(
            butterflies_containing_edge(biclique_3x3, u, v)
            for u, v in biclique_3x3.edges()
        )
        assert total == 4 * count_butterflies(biclique_3x3)

    def test_edge_sum_identity_random(self, small_random_graph):
        total = sum(
            butterflies_containing_edge(small_random_graph, u, v)
            for u, v in small_random_graph.edges()
        )
        assert total == 4 * count_butterflies(small_random_graph)

    def test_absent_edge_counts_potential_butterflies(self):
        # Graph with edges (1,10),(2,10),(2,11): adding (1,11) would
        # close exactly one butterfly.
        g = BipartiteGraph([(1, 10), (2, 10), (2, 11)])
        assert butterflies_containing_edge(g, 1, 11) == 1

    def test_isolated_edge_has_zero(self):
        g = BipartiteGraph([(1, 10), (2, 11)])
        assert butterflies_containing_edge(g, 1, 10) == 0


class TestPerVertexCount:
    def test_single_butterfly_participation(self, butterfly_graph):
        counts = butterfly_counts_per_vertex(butterfly_graph)
        assert counts == {"u": 1, "x": 1, "v": 1, "w": 1}

    def test_vertex_sum_identity(self, biclique_3x3):
        counts = butterfly_counts_per_vertex(biclique_3x3)
        assert sum(counts.values()) == 4 * count_butterflies(biclique_3x3)

    def test_vertex_sum_identity_random(self, small_random_graph):
        counts = butterfly_counts_per_vertex(small_random_graph)
        assert sum(counts.values()) == 4 * count_butterflies(
            small_random_graph
        )


class TestDensity:
    def test_single_butterfly_density_is_one(self, butterfly_graph):
        # 2x2 graph: exactly one possible butterfly, realised.
        assert butterfly_density(butterfly_graph) == 1.0

    def test_biclique_density_is_one(self, biclique_3x3):
        assert butterfly_density(biclique_3x3) == 1.0

    def test_empty_graph_density_zero(self):
        assert butterfly_density(BipartiteGraph()) == 0.0

    def test_density_uses_precomputed_count(self, biclique_3x3):
        assert butterfly_density(biclique_3x3, butterflies=9) == 1.0
