"""Unit tests for (alpha, beta)-core decomposition."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, validate_bipartite
from repro.graph.butterflies import count_butterflies
from repro.graph.core_decomposition import (
    ab_core,
    alpha_beta_core_numbers,
    butterfly_core_prefilter,
)
from repro.graph.generators import bipartite_erdos_renyi
from repro.types import Side


def _biclique(nl, nr):
    g = BipartiteGraph()
    for i in range(nl):
        for j in range(nr):
            g.add_edge(f"l{i}", f"r{j}")
    return g


def _core_brute_force(graph, alpha, beta):
    """Reference peeling without the incremental queue."""
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        for u in list(work.left_vertices()):
            if work.degree(u) < alpha:
                for v in list(work.neighbors(u)):
                    work.remove_edge(u, v)
                changed = True
        for v in list(work.right_vertices()):
            if work.degree(v) < beta:
                for u in list(work.neighbors(v)):
                    work.remove_edge(u, v)
                changed = True
    return work


class TestAbCore:
    def test_rejects_nonpositive_thresholds(self):
        with pytest.raises(GraphError):
            ab_core(BipartiteGraph(), 0, 1)
        with pytest.raises(GraphError):
            ab_core(BipartiteGraph(), 1, -1)

    def test_biclique_is_its_own_core(self):
        g = _biclique(3, 4)
        core = ab_core(g, 4, 3)
        assert core.num_edges == 12

    def test_thresholds_above_degrees_empty(self):
        g = _biclique(3, 4)
        assert ab_core(g, 5, 3).num_edges == 0
        assert ab_core(g, 4, 4).num_edges == 0

    def test_pendant_cascade(self):
        # path l0-r0, l1-r0, l1-r1: (2,2)-core is empty via cascade.
        g = BipartiteGraph([("l0", "r0"), ("l1", "r0"), ("l1", "r1")])
        assert ab_core(g, 2, 2).num_edges == 0

    def test_core_satisfies_constraints(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(20, 20, 60, rng=random.Random(0))
        )
        core = ab_core(g, 2, 3)
        for u in core.left_vertices():
            assert core.degree(u) >= 2
        for v in core.right_vertices():
            assert core.degree(v) >= 3

    @pytest.mark.parametrize("alpha,beta", [(1, 1), (2, 2), (3, 2)])
    def test_matches_brute_force(self, alpha, beta):
        g = BipartiteGraph(
            bipartite_erdos_renyi(18, 15, 55, rng=random.Random(1))
        )
        fast = ab_core(g, alpha, beta)
        slow = _core_brute_force(g, alpha, beta)
        assert set(fast.edges()) == set(slow.edges())

    def test_input_not_modified(self):
        g = _biclique(3, 3)
        before = g.num_edges
        ab_core(g, 5, 5)
        assert g.num_edges == before

    def test_internal_consistency(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(25, 25, 65, rng=random.Random(2))
        )
        core = ab_core(g, 2, 2)
        ok, reason = validate_bipartite(core)
        assert ok, reason

    def test_cores_are_nested(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(20, 20, 100, rng=random.Random(3))
        )
        inner = set(ab_core(g, 3, 3).edges())
        outer = set(ab_core(g, 2, 2).edges())
        assert inner <= outer


class TestCoreNumbers:
    def test_biclique_numbers(self):
        g = _biclique(3, 4)
        numbers = alpha_beta_core_numbers(g, alpha=2, from_side=Side.RIGHT)
        # Every right vertex has degree 3; with alpha=2 each survives
        # up to beta=3.
        assert numbers == {f"r{j}": 3 for j in range(4)}

    def test_left_side_variant(self):
        g = _biclique(3, 4)
        numbers = alpha_beta_core_numbers(g, alpha=2, from_side=Side.LEFT)
        assert numbers == {f"l{i}": 4 for i in range(3)}

    def test_rejects_bad_alpha(self):
        with pytest.raises(GraphError):
            alpha_beta_core_numbers(BipartiteGraph(), alpha=0)

    def test_numbers_consistent_with_core_membership(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(15, 15, 55, rng=random.Random(4))
        )
        alpha = 2
        numbers = alpha_beta_core_numbers(g, alpha=alpha)
        for beta in (1, 2, 3):
            survivors = set(ab_core(g, alpha, beta).right_vertices())
            expected = {v for v, n in numbers.items() if n >= beta}
            assert survivors == expected

    def test_peeled_vertices_get_zero(self):
        g = BipartiteGraph([("l0", "lonely")])
        numbers = alpha_beta_core_numbers(g, alpha=2)
        assert numbers["lonely"] == 0


class TestButterflyPrefilter:
    def test_preserves_butterfly_count(self):
        g = BipartiteGraph(
            bipartite_erdos_renyi(25, 25, 75, rng=random.Random(5))
        )
        core = butterfly_core_prefilter(g)
        assert count_butterflies(core) == count_butterflies(g)

    def test_strips_pendants(self):
        g = _biclique(2, 2)
        g.add_edge("pendant", "r0")
        core = butterfly_core_prefilter(g)
        assert core.num_edges == 4
        assert not core.has_vertex("pendant")

    def test_empty_graph(self):
        assert butterfly_core_prefilter(BipartiteGraph()).num_edges == 0
