"""Unit tests for the dynamic bipartite graph."""

import pytest

from repro.errors import DuplicateEdgeError, MissingEdgeError, PartitionError
from repro.graph.bipartite import BipartiteGraph, validate_bipartite
from repro.types import Side


class TestConstruction:
    def test_empty_graph(self):
        g = BipartiteGraph()
        assert g.num_edges == 0
        assert g.num_left == 0
        assert g.num_right == 0
        assert len(g) == 0

    def test_from_edge_iterable(self):
        g = BipartiteGraph([(1, 10), (2, 10), (1, 11)])
        assert g.num_edges == 3
        assert g.num_left == 2
        assert g.num_right == 2

    def test_vertices_created_implicitly(self):
        g = BipartiteGraph()
        g.add_edge("l", "r")
        assert g.has_vertex("l")
        assert g.has_vertex("r")


class TestAddEdge:
    def test_add_and_membership(self):
        g = BipartiteGraph()
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)
        assert (1, 2) in g
        assert not g.has_edge(2, 1)

    def test_duplicate_insert_raises(self):
        g = BipartiteGraph([(1, 2)])
        with pytest.raises(DuplicateEdgeError):
            g.add_edge(1, 2)

    def test_partition_violation_left_vertex_as_right(self):
        g = BipartiteGraph([(1, 2)])
        with pytest.raises(PartitionError):
            g.add_edge(3, 1)  # 1 is a left vertex

    def test_partition_violation_right_vertex_as_left(self):
        g = BipartiteGraph([(1, 2)])
        with pytest.raises(PartitionError):
            g.add_edge(2, 4)  # 2 is a right vertex

    def test_degree_updates(self):
        g = BipartiteGraph()
        g.add_edge(1, 10)
        g.add_edge(1, 11)
        g.add_edge(2, 10)
        assert g.degree(1) == 2
        assert g.degree(10) == 2
        assert g.degree(11) == 1


class TestRemoveEdge:
    def test_remove_existing(self):
        g = BipartiteGraph([(1, 2), (1, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1

    def test_remove_missing_raises(self):
        g = BipartiteGraph([(1, 2)])
        with pytest.raises(MissingEdgeError):
            g.remove_edge(1, 3)

    def test_remove_from_empty_raises(self):
        g = BipartiteGraph()
        with pytest.raises(MissingEdgeError):
            g.remove_edge(1, 2)

    def test_zero_degree_vertices_dropped(self):
        g = BipartiteGraph([(1, 2)])
        g.remove_edge(1, 2)
        assert not g.has_vertex(1)
        assert not g.has_vertex(2)
        assert g.num_left == 0
        assert g.num_right == 0

    def test_reinsert_after_delete(self):
        g = BipartiteGraph([(1, 2)])
        g.remove_edge(1, 2)
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)


class TestQueries:
    def test_side_of(self):
        g = BipartiteGraph([(1, 2)])
        assert g.side_of(1) is Side.LEFT
        assert g.side_of(2) is Side.RIGHT
        assert g.side_of(99) is None

    def test_neighbors_absent_vertex_is_empty(self):
        g = BipartiteGraph()
        assert g.neighbors("nope") == frozenset()
        assert g.degree("nope") == 0

    def test_edges_iteration(self):
        edges = {(1, 10), (2, 10), (2, 11)}
        g = BipartiteGraph(edges)
        assert set(g.edges()) == edges

    def test_degree_sum(self):
        g = BipartiteGraph([(1, 10), (1, 11), (2, 10)])
        assert g.degree_sum([1, 2]) == 3
        assert g.degree_sum([10, 11]) == 3

    def test_max_degree(self):
        g = BipartiteGraph([(1, 10), (1, 11), (1, 12)])
        assert g.max_degree() == 3
        assert BipartiteGraph().max_degree() == 0

    def test_density(self):
        g = BipartiteGraph([(1, 10), (2, 10)])
        assert g.density() == pytest.approx(2 / (2 * 1))
        assert BipartiteGraph().density() == 0.0

    def test_left_right_iterators(self):
        g = BipartiteGraph([(1, 10), (2, 11)])
        assert set(g.left_vertices()) == {1, 2}
        assert set(g.right_vertices()) == {10, 11}


class TestCopyAndClear:
    def test_copy_is_independent(self):
        g = BipartiteGraph([(1, 2)])
        clone = g.copy()
        clone.add_edge(3, 2)
        assert g.num_edges == 1
        assert clone.num_edges == 2

    def test_clear(self):
        g = BipartiteGraph([(1, 2), (3, 4)])
        g.clear()
        assert g.num_edges == 0
        assert g.num_vertices == 0


class TestValidation:
    def test_valid_graph(self, small_random_graph):
        ok, reason = validate_bipartite(small_random_graph)
        assert ok, reason

    def test_valid_after_mutations(self, small_random_edges):
        g = BipartiteGraph(small_random_edges)
        for u, v in small_random_edges[:50]:
            g.remove_edge(u, v)
        ok, reason = validate_bipartite(g)
        assert ok, reason
