"""Production stream hygiene: guard, profile, and adapt.

The estimators assume the clean stream contract of the paper's
Definition 1; real feeds are dirty, skewed, and bursty.  This example
shows the operational layer a deployment puts in front of ABACUS:

1. **Sanitise** a dirty feed (duplicate insertions, deletions of absent
   edges) exactly, and cross-check with the bounded-memory Bloom guard.
2. **Profile** the clean stream one-pass: distinct vertices/edges via
   HyperLogLog, hub vertices via Count-Min heavy hitters.
3. **Monitor** the recent deletion ratio with a DGIM sliding window
   (catching the storm at the tail of the feed), and **adapt** to
   memory pressure by shrinking ABACUS's budget mid-stream — legal at
   a clean sampler point (``can_resize``), where estimates provably
   stay unbiased.

Run:
    python examples/stream_hygiene.py
"""

from __future__ import annotations

import random

from repro.core.abacus import Abacus
from repro.core.exact import ExactStreamingCounter
from repro.graph.generators import bipartite_chung_lu
from repro.sketch.dgim import DeletionRateMonitor
from repro.streams.adversarial import deletion_storm
from repro.streams.profile import StreamProfiler
from repro.streams.stream import EdgeStream
from repro.streams.transform import sanitized, suspicious_elements
from repro.types import insertion


def dirty_feed(rng: random.Random) -> EdgeStream:
    """A realistic dirty feed: valid core + duplicate/ghost elements."""
    edges = bipartite_chung_lu(1500, 400, 12_000, rng=rng)
    base = deletion_storm(edges, storm_fraction=0.35, rng=rng)
    elements = list(base)
    # Inject 300 duplicate insertions of random live-ish edges and 100
    # deletions of edges that never existed.
    for _ in range(300):
        u, v = edges[rng.randrange(len(edges))]
        elements.insert(rng.randrange(len(elements)), insertion(u, v))
    for i in range(100):
        elements.insert(
            rng.randrange(len(elements)),
            insertion(f"ghost{i}", "nowhere").inverted(),
        )
    return EdgeStream(elements)


def main() -> None:
    rng = random.Random(21)
    feed = dirty_feed(rng)
    print(f"Dirty feed: {len(feed)} elements")

    # ------------------------------------------------------------------
    # 1. Sanitise
    # ------------------------------------------------------------------
    clean, report = sanitized(feed)
    print()
    print("Exact sanitiser:")
    print(f"  duplicate insertions dropped : {report.duplicate_insertions}")
    print(f"  ghost deletions dropped      : {report.absent_deletions}")
    print(f"  kept                         : {report.kept}")

    flagged = suspicious_elements(
        feed, capacity=20_000, fp_rate=0.001, rng=random.Random(22)
    )
    caught = set(flagged) & set(report.dropped_indices)
    print("Bloom guard (bounded memory):")
    print(f"  elements flagged             : {len(flagged)}")
    print(
        f"  true violations caught       : {len(caught)}"
        f"/{report.dropped} (guaranteed: all)"
    )

    # ------------------------------------------------------------------
    # 2. Profile
    # ------------------------------------------------------------------
    profile = StreamProfiler(rng=random.Random(23)).observe_stream(clean)
    print()
    print("One-pass profile (bounded memory):")
    print("  " + profile.render().replace("\n", "\n  "))

    # ------------------------------------------------------------------
    # 3. Monitor the deletion ratio; adapt the budget at a clean point
    # ------------------------------------------------------------------
    monitor = DeletionRateMonitor(window=1000, buckets_per_size=16)
    abacus = Abacus(budget=3000, seed=25)
    oracle = ExactStreamingCounter()
    shrink_requested_at = 6000  # ops reclaim memory mid-stream
    shrunk_at = None
    storm_seen_at = None
    for index, element in enumerate(clean):
        monitor.observe(element)
        abacus.process(element)
        oracle.process(element)
        # Budget shrinking is only sound at a clean sampler point
        # (no deletions pending compensation) — poll can_resize.
        if (
            shrunk_at is None
            and index >= shrink_requested_at
            and abacus.can_resize
        ):
            evicted = abacus.shrink_budget(2000)
            shrunk_at = index
            print()
            print(
                f"Memory pressure at element {index}: shrank budget "
                f"3000 -> 2000 at a clean point, evicted "
                f"{evicted} edges"
            )
        if storm_seen_at is None and monitor.deletion_ratio() > 0.6:
            storm_seen_at = index
            print(
                f"Deletion storm detected at element {index} "
                f"(recent deletion ratio "
                f"{monitor.deletion_ratio():.0%})"
            )
    truth = oracle.estimate
    error = abs(truth - abacus.estimate) / truth if truth else 0.0
    print()
    print(f"  exact final count  : {truth:,.0f}")
    print(f"  ABACUS estimate    : {abacus.estimate:,.0f}")
    print(f"  relative error     : {error:.2%}")
    print(f"  final sample size  : {abacus.memory_edges} edges")


if __name__ == "__main__":
    main()
