"""Fraud detection on a fully dynamic review stream.

Scenario (Section I of the paper): in a user-product review graph,
fraud rings register clusters of fake accounts that all review the same
products — a dense biclique that injects a burst of butterflies.  The
platform later *takes the ring down*, deleting all of its edges at
once.  Review streams also churn organically (retracted reviews).

Two anomaly classes matter:

  * **registration bursts** — sudden butterfly creation (positive
    spike).  Any butterfly estimator can see these.
  * **takedowns / community collapse** — sudden butterfly deletion
    (negative spike).  Only a *deletion-aware* estimator can ever see
    these; insert-only estimators (FLEET, CAS) are structurally blind.

The example additionally shows the count-level drift that deletions
inflict on insert-only estimators — the root cause of the paper's
accuracy gap (Figure 3) and of degraded threshold-based alerting.

Run:
    python examples/fraud_detection.py
"""

from __future__ import annotations

import random
from typing import List

from repro import build_estimator, make_fully_dynamic, open_session
from repro.apps.anomaly import ButterflyBurstDetector
from repro.graph.generators import bipartite_erdos_renyi
from repro.types import StreamElement, deletion, insertion

WINDOW = 400
N_WINDOWS = 60
RING_WINDOW = 12      # fraud ring registers here (positive burst)
TAKEDOWN_WINDOW = 38  # platform deletes the whole ring here
CLIQUE = (8, 8)


def build_stream(seed: int = 5) -> List[StreamElement]:
    """Organic churn + one fraud ring + its later takedown."""
    rng = random.Random(seed)
    background = bipartite_erdos_renyi(
        20_000, 20_000, round(N_WINDOWS * WINDOW / 1.2), rng
    )
    elements = list(
        make_fully_dynamic(background, alpha=0.2, rng=random.Random(seed + 1))
    )
    a, b = CLIQUE
    fake_users = [50_000_000 + i for i in range(a)]
    products = [60_000_000 + j for j in range(b)]
    ring_edges = [(u, v) for u in fake_users for v in products]
    registration = [insertion(u, v) for u, v in ring_edges]
    takedown = [deletion(u, v) for u, v in ring_edges]
    elements[RING_WINDOW * WINDOW:RING_WINDOW * WINDOW] = registration
    # Insert the takedown at its window, accounting for the shift the
    # registration insert introduced.
    offset = TAKEDOWN_WINDOW * WINDOW + len(registration)
    elements[offset:offset] = takedown
    return elements


def detect(name: str, estimator, elements) -> None:
    detector = ButterflyBurstDetector(
        estimator, window=WINDOW, z_threshold=4.0, two_sided=True
    )
    alerts = detector.process_stream(elements)
    windows = sorted({a.window_index for a in alerts})
    burst_seen = any(abs(w - RING_WINDOW) <= 1 for w in windows)
    takedown_seen = any(
        abs(w - TAKEDOWN_WINDOW) <= 1 for w in windows
    )
    print(
        f"  {name:<24} registration burst: "
        f"{'DETECTED' if burst_seen else 'missed  '}   "
        f"takedown: {'DETECTED' if takedown_seen else 'MISSED'}   "
        f"(alert windows {windows})"
    )


def drift_report(elements: List[StreamElement]) -> None:
    """Count-level drift of insert-only estimators under deletions.

    Three sessions are driven in lockstep; a checkpoint observer on the
    exact session prints the synchronised table rows.
    """
    exact = open_session("exact")
    abacus = open_session("abacus:budget=6000,seed=3")
    fleet = open_session("fleet:budget=6000,seed=3")
    marks = sorted({len(elements) // 4, len(elements) // 2,
                    3 * len(elements) // 4, len(elements)})
    print("\nCount-level drift (butterfly count estimates):")
    print(f"  {'elements':>10} {'truth':>8} {'ABACUS':>8} {'FLEET':>8}")
    exact.on_checkpoint(
        lambda n, s: print(
            f"  {n:>10} {s.estimate:>8.0f} "
            f"{abacus.estimate:>8.0f} {fleet.estimate:>8.0f}"
        ),
        at=marks,
    )
    for element in elements:
        abacus.ingest(element)
        fleet.ingest(element)
        exact.ingest(element)


def main() -> None:
    print(
        f"Stream: ring registers at window {RING_WINDOW}, "
        f"takedown at window {TAKEDOWN_WINDOW}, 20% organic churn\n"
    )
    elements = build_stream()

    print("Two-sided butterfly-burst detection:")
    detect("Exact oracle", build_estimator("exact"), elements)
    detect(
        "ABACUS (fully dynamic)",
        build_estimator("abacus:budget=6000,seed=11"),
        elements,
    )
    detect(
        "FLEET (insert-only)",
        build_estimator("fleet:budget=6000,seed=11"),
        elements,
    )

    drift_report(elements)

    print(
        "\nThe takedown is invisible to the insert-only baseline: FLEET\n"
        "never processes deletions, so the ring's butterflies stay in\n"
        "its count forever — and its level estimate drifts accordingly."
    )


if __name__ == "__main__":
    main()
