"""Durable serving: crash a session, recover it, query it live.

Walks the ISSUE-5 stack end to end:

1. a durable session — every element write-ahead logged, a checkpoint
   mid-stream (`repro.store`);
2. a simulated crash (the process state is simply dropped) and the
   recovery that lands bit-identically on the logged prefix;
3. the asyncio query server over the recovered session: concurrent
   `estimate` queries during active ingest, torn-read-free
   (`repro.serve`);
4. a durable checkpoint issued over the wire.

Run with:  PYTHONPATH=src python examples/durable_serving.py
"""

import random
import tempfile
import threading

from repro import (
    ServeClient,
    make_fully_dynamic,
    open_session,
    serve_in_background,
)
from repro.graph.generators import bipartite_chung_lu

SPEC = "abacus:budget=1500,seed=7"  # durable sessions want pinned seeds


def main() -> None:
    durable_dir = tempfile.mkdtemp(prefix="repro-durable-")
    edges = bipartite_chung_lu(1200, 200, 12_000, rng=random.Random(7))
    stream = list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(13)))
    half = len(stream) // 2

    # ------------------------------------------------------------------
    # 1. Ingest durably; checkpoint part-way through.
    # ------------------------------------------------------------------
    session = open_session(SPEC, durable_dir=durable_dir)
    session.ingest(stream[:half])
    session.checkpoint()  # atomic snapshot + WAL rotation
    session.ingest(stream[half : half + half // 2])
    session.sync()  # everything below is now on disk
    before_crash = (session.elements, session.estimate)
    print(f"ingested durably               : {before_crash[0]:>10,} elements")
    print(f"estimate before 'crash'        : {before_crash[1]:>10,.0f}")

    # ------------------------------------------------------------------
    # 2. Crash.  No close(), no goodbye — the estimator dies with the
    #    process; only the directory survives.
    # ------------------------------------------------------------------
    del session
    recovered = open_session(durable_dir=durable_dir)  # spec from meta
    assert (recovered.elements, recovered.estimate) == before_crash
    print(
        f"recovered (snapshot + WAL tail): {recovered.elements:>10,} "
        "elements, estimate identical"
    )

    # ------------------------------------------------------------------
    # 3. Serve the recovered session; query while the rest of the
    #    stream ingests.
    # ------------------------------------------------------------------
    answered = []
    done = threading.Event()

    with serve_in_background(recovered) as background:

        def query_loop() -> None:
            with ServeClient(*background.address) as client:
                while not done.is_set():
                    view = client.estimate()
                    answered.append((view["elements"], view["estimate"]))

        reader = threading.Thread(target=query_loop)
        reader.start()
        with ServeClient(*background.address) as writer:
            remainder = stream[half + half // 2 :]
            for start in range(0, len(remainder), 512):
                writer.ingest(remainder[start : start + 512])
            offset = writer.checkpoint()  # durable, over the wire
            final = writer.estimate()
        done.set()
        reader.join()

    print(
        f"served during ingest           : {len(answered):>10,} "
        "estimate queries (each a consistent view)"
    )
    print(f"checkpoint over the wire       : {offset:>10,} elements")
    print(
        f"final estimate                 : {final['estimate']:>10,.0f} "
        f"({final['elements']:,} elements)"
    )
    print(f"state survives in              : {durable_dir}")


if __name__ == "__main__":
    main()
