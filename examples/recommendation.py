"""Recommendation analytics on a streaming user-item graph.

Butterflies drive collaborative filtering quality: a butterfly
{u, v, w, x} is two users co-liking two items, the smallest signal that
"users who liked X also liked Y" carries information.  This example
streams a user-item graph (with deletions) and

  1. tracks the butterfly clustering coefficient live via ABACUS,
  2. at the end, produces item-item co-affiliation recommendations from
     the one-mode projection, and
  3. shows the k-bitruss of the final graph — the dense engagement core
     a recommender should mine first.

Run:
    python examples/recommendation.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import Abacus, BipartiteGraph, make_fully_dynamic
from repro.apps.clustering import StreamingClusteringCoefficient
from repro.graph.bitruss import k_bitruss
from repro.graph.generators import bipartite_chung_lu
from repro.graph.projection import top_co_neighbors
from repro.types import Op


def main() -> None:
    rng = random.Random(3)
    n_users, n_items = 1500, 250
    print(f"Streaming a {n_users}x{n_items} user-item graph "
          "(15K interactions, 15% retractions) ...\n")
    edges = bipartite_chung_lu(n_users, n_items, 15_000, rng=rng)
    stream = make_fully_dynamic(edges, alpha=0.15, rng=random.Random(4))

    # 1. Live butterfly cohesion index from a bounded-memory estimate.
    tracker = StreamingClusteringCoefficient(Abacus(2500, seed=9))
    trajectory = tracker.trajectory(stream, every=3000)
    peak = max(value for _, value in trajectory) or 1.0
    print("Butterfly cohesion index (4B/W) over time:")
    for elements_seen, coefficient in trajectory:
        bar = "#" * max(1, round(40 * coefficient / peak))
        print(f"  after {elements_seen:>6} elements: "
              f"{coefficient:8.4f} {bar}")

    # Rebuild the final graph for the offline analytics below.
    graph = BipartiteGraph()
    for element in stream:
        if element.op is Op.INSERT:
            graph.add_edge(element.u, element.v)
        else:
            graph.remove_edge(element.u, element.v)

    # 2. Item-item recommendations for the most popular item.
    item_popularity = Counter(
        {v: graph.degree(v) for v in graph.right_vertices()}
    )
    top_item, degree = item_popularity.most_common(1)[0]
    print(f"\nItems most co-consumed with item {top_item} "
          f"(popularity {degree}):")
    for other, shared_users in top_co_neighbors(graph, top_item, limit=5):
        print(f"  item {other:>6}: {shared_users} shared users")

    # 3. Dense engagement core: the 2-bitruss.
    core = k_bitruss(graph, 2)
    print(
        f"\n2-bitruss core: {core.num_edges} of {graph.num_edges} edges "
        f"({core.num_left} users, {core.num_right} items) — every "
        "remaining interaction participates in >= 2 butterflies."
    )


if __name__ == "__main__":
    main()
