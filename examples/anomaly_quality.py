"""Why deletions matter: anomaly-detection quality, measured.

The paper's introduction argues that ignoring edge deletions wrecks
the precision/recall of butterfly-based anomaly detectors.  This
example makes that claim concrete: it plants fraud-ring "butterfly
bombs" into a fully dynamic transaction stream and scores a burst
detector backed by ABACUS (deletion-aware) against the same detector
backed by FLEET and CAS (insert-only).

Run:
    python examples/anomaly_quality.py
"""

from __future__ import annotations

import random

from repro.apps.anomaly_quality import (
    compare_estimators,
    planted_anomaly_stream,
)
from repro.baselines.cas import CoAffiliationSampling
from repro.baselines.fleet import Fleet
from repro.core.abacus import Abacus
from repro.graph.generators import bipartite_chung_lu


def main() -> None:
    window = 500
    budget = 3000
    bombs = [5, 9, 13]

    print("Building a sparse account-merchant stream with 3 planted")
    print("fraud rings (14x14 bicliques) and 25% deletions ...")
    background = bipartite_chung_lu(
        3000, 3000, 8000, rng=random.Random(3)
    )
    stream, truths = planted_anomaly_stream(
        background,
        bomb_windows=bombs,
        window=window,
        bomb_size=(14, 14),
        alpha=0.25,
        rng=random.Random(13),
    )
    print(
        f"Stream: {len(stream)} elements, planted anomalies in "
        f"windows {truths}"
    )

    results = compare_estimators(
        stream,
        truths,
        {
            "ABACUS (ins+del)": lambda: Abacus(budget, seed=23),
            "FLEET  (ins-only)": lambda: Fleet(budget, seed=23),
            "CAS    (ins-only)": lambda: CoAffiliationSampling(
                budget, seed=23
            ),
        },
        window=window,
    )

    print()
    print(f"{'detector backend':<20} {'precision':>9} {'recall':>7} "
          f"{'F1':>6} {'alerts':>7}")
    for name, quality in results.items():
        print(
            f"{name:<20} {quality.precision:>9.2f} "
            f"{quality.recall:>7.2f} {quality.f1:>6.2f} "
            f"{quality.num_alerts:>7}"
        )
    print()
    print("Insert-only backends never see retractions, so their counts")
    print("drift upward and the detector either floods with false")
    print("alarms (low precision) or misses real bursts hidden by the")
    print("inflated baseline.")


if __name__ == "__main__":
    main()
