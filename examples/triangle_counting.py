"""Bonus: fully dynamic TRIANGLE counting with the same machinery.

Section VII-A of the paper traces ABACUS to fully dynamic triangle
counting (TRIEST-FD, ThinkD).  This library implements that lineage on
the *same* Random Pairing sampler, so the technique can be sanity-checked
on a second motif: triangles need two sampled edges per discovery,
butterflies three.

The example streams a preferential-attachment (triangle-rich) graph
with 25% deletions and compares ThinkD's bounded-memory estimate with
the exact count, then shows the accuracy/budget trade.

Run:
    python examples/triangle_counting.py
"""

from __future__ import annotations

import random

from repro.streams.dynamic import make_fully_dynamic
from repro.triangles import ExactTriangleCounter, ThinkD
from repro.triangles.generators import barabasi_albert_graph


def main() -> None:
    rng = random.Random(2)
    edges = barabasi_albert_graph(1500, 10, rng)
    stream = make_fully_dynamic(edges, alpha=0.25, rng=random.Random(3))
    print(
        f"Unipartite stream: {len(stream)} elements "
        f"({stream.num_deletions} deletions)\n"
    )

    oracle = ExactTriangleCounter()
    truth = oracle.process_stream(stream)
    print(f"Exact triangle count: {truth:,.0f} "
          f"(oracle stores {oracle.memory_edges:,} edges)\n")

    print(f"{'budget k':>9} {'estimate':>12} {'rel. error':>11} "
          f"{'memory saved':>13}")
    for budget in (500, 1000, 2000, 4000):
        errors = []
        last = 0.0
        for seed in range(5):
            estimator = ThinkD(budget, seed=seed)
            last = estimator.process_stream(stream)
            errors.append(abs(truth - last) / truth)
        mean_error = sum(errors) / len(errors)
        saved = 1 - min(budget, oracle.memory_edges) / oracle.memory_edges
        print(f"{budget:>9} {last:>12,.0f} {mean_error:>10.2%} "
              f"{saved:>12.0%}")

    print(
        "\nSame Random Pairing sampler, same unbiasedness argument —\n"
        "only the discovery probability changes (two sampled edges per\n"
        "triangle instead of three per butterfly)."
    )


if __name__ == "__main__":
    main()
