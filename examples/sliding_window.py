"""Sliding-window anomaly detection with the windowed engine.

A fraud-style scenario: a steady stream of user-item interactions, with
a *butterfly bomb* — a dense coordinated biclique, the signature of a
review-fraud ring — planted in the middle.  A detector watches the
**windowed** butterfly count (``open_session(..., window=W)``, the
``repro.window`` engine): inside the window the bomb is a huge spike
over the trailing baseline, and once the bomb's edges expire, the
count *comes back down* — the window heals and stays useful for the
next attack.  The infinite-window count only ratchets upward: after
one bomb its baseline is permanently poisoned.

Because the engine synthesizes real deletions, the windowed ABACUS
estimate is provably identical to replaying the explicit insert+delete
expansion — every unbiasedness guarantee carries over.  This demo
tracks ABACUS-in-a-window against the exact windowed count to show the
estimate is not just directionally right.

Run:
    python examples/sliding_window.py
"""

from __future__ import annotations

import random

from repro import open_session
from repro.graph.generators import bipartite_erdos_renyi
from repro.streams.adversarial import butterfly_bomb

WINDOW = 3000
BUDGET = 1500
CHECK_EVERY = 500
ZSCORE_ALARM = 6.0


def main() -> None:
    rng = random.Random(11)
    background = bipartite_erdos_renyi(3000, 3000, 12_000, rng)
    stream, planted = butterfly_bomb(
        10, 10, background=background, bomb_position=6000, rng=rng
    )
    print(
        f"{len(stream):,}-element stream, 10x10 bomb at element 6,000 "
        f"({planted:,} planted butterflies), window W={WINDOW}\n"
    )

    history: list = []
    alarms = []
    truth = open_session("exact", window=WINDOW)  # exact, same window

    def detector(elements: int, session) -> None:
        estimate = session.estimate
        if len(history) >= 4:
            mean = sum(history) / len(history)
            var = sum((h - mean) ** 2 for h in history) / len(history)
            sigma = max(var**0.5, 1.0)
            z = (estimate - mean) / sigma
            flag = ""
            if z >= ZSCORE_ALARM:
                alarms.append(elements)
                flag = f"  <-- ALARM (z={z:,.0f})"
            print(
                f"{elements:>7,} | windowed est {estimate:>10,.0f} "
                f"| windowed truth {truth.estimate:>8,.0f} "
                f"| baseline {mean:>10,.0f}{flag}"
            )
        history.append(estimate)
        del history[:-8]  # trailing baseline window

    with open_session(
        f"abacus:budget={BUDGET},seed=5", window=WINDOW
    ) as session:
        session.on_checkpoint(detector, every=CHECK_EVERY)
        # Keep the exact twin in lockstep so the detector can print it.
        for start in range(0, len(stream), CHECK_EVERY):
            chunk = stream[start : start + CHECK_EVERY]
            truth.ingest(chunk)
            session.ingest(chunk)
        windowed_final = session.estimate
        windowed_truth = truth.estimate
        expired = session.estimator.expired_count
    truth.close()

    with open_session("exact") as session:
        session.ingest(e for e in stream)
        infinite_final = session.estimate

    print(
        f"\nalarms fired at elements {alarms} — the bomb lands at 6,000"
        f"\nfinal windowed estimate : {windowed_final:>12,.0f} "
        f"(truth {windowed_truth:,.0f}; bomb expired, "
        f"{expired:,} expiry deletions synthesized)"
        f"\nfinal infinite count    : {infinite_final:>12,.0f} "
        "(bomb baked in forever)"
    )
    print(
        "\nThe window forgets the attack once it slides past, so the"
        "\ndetector re-arms; the infinite-window count stays poisoned"
        "\nand would mask any later bomb."
    )


if __name__ == "__main__":
    main()
