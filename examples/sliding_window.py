"""Sliding-window butterfly counting via the fully dynamic model.

The paper counts butterflies under infinite-window semantics, but the
fully dynamic model buys more: a sliding window is just a deterministic
deletion policy (every insertion expires W arrivals later), so ABACUS
computes windowed butterfly counts with no algorithmic change — while
insert-only estimators cannot express expiry at all.

This example replays a user-item stream whose butterfly density shifts
half-way through (a "trend change"), tracking the windowed count with
ABACUS against the exact windowed count.  The window forgets the old
regime; the infinite-window count cannot.

Run:
    python examples/sliding_window.py
"""

from __future__ import annotations

import random

from repro import Abacus, ExactStreamingCounter
from repro.graph.generators import bipartite_chung_lu, bipartite_erdos_renyi
from repro.streams.window import sliding_window_stream, window_deletion_ratio

WINDOW = 4000


def main() -> None:
    rng = random.Random(6)
    # Regime 1: sparse uniform traffic (few butterflies).
    sparse = bipartite_erdos_renyi(4000, 4000, 8000, rng)
    # Regime 2: skewed, butterfly-dense traffic (vertex ids offset so
    # the two regimes do not collide).
    dense = [
        (20_000 + u, 30_000 + v)
        for u, v in bipartite_chung_lu(1500, 250, 8000, rng=rng)
    ]
    edges = sparse + dense
    print(
        f"16K-edge stream, window W={WINDOW} "
        f"({window_deletion_ratio(len(edges), WINDOW):.0%} of elements "
        "are expiry deletions)\n"
    )

    abacus = Abacus(budget=2500, seed=8)
    exact_window = ExactStreamingCounter()
    exact_infinite = ExactStreamingCounter()

    print(f"{'insertions':>10} {'windowed truth':>15} "
          f"{'windowed ABACUS':>16} {'infinite truth':>15}")
    insertions = 0
    for element in sliding_window_stream(edges, WINDOW):
        abacus.process(element)
        exact_window.process(element)
        if element.is_insertion:
            exact_infinite.process(element)
            insertions += 1
            if insertions % 2000 == 0:
                print(
                    f"{insertions:>10} {exact_window.exact_count:>15,} "
                    f"{abacus.estimate:>16,.0f} "
                    f"{exact_infinite.exact_count:>15,}"
                )

    print(
        "\nThe windowed count collapses once the sparse regime slides\n"
        "out and explodes when the dense regime enters — ABACUS tracks\n"
        "it with a quarter of the window in memory.  The infinite-window\n"
        "count only ever grows and hides the regime change."
    )


if __name__ == "__main__":
    main()
