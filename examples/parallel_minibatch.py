"""PARABACUS: mini-batch parallel counting with versioned samples.

Demonstrates the three claims of Section V on one stream:

  1. PARABACUS returns *bit-identical* estimates to ABACUS when both
     are driven by the same seed (Theorem 5);
  2. per-worker set-intersection workloads are balanced (Figure 10);
  3. the work-model speedup grows with the mini-batch size (Figure 8).

Run:
    python examples/parallel_minibatch.py
"""

from __future__ import annotations

import random

from repro import make_fully_dynamic, open_session
from repro.graph.generators import bipartite_chung_lu
from repro.metrics.workload import workload_balance

BUDGET = 3000
SEED = 21


def main() -> None:
    rng = random.Random(1)
    edges = bipartite_chung_lu(2500, 350, 25_000, rng=rng)
    stream = make_fully_dynamic(edges, alpha=0.2, rng=random.Random(2))
    print(f"Stream: {len(stream)} elements, budget k={BUDGET}\n")

    # 1. Exact equivalence with ABACUS (Theorem 5).  Both estimators
    # are described by registry specs and driven through sessions.
    with open_session(f"abacus:budget={BUDGET},seed={SEED}") as abacus:
        abacus.ingest(stream)
        sequential_estimate = abacus.estimate
    parabacus_spec = (
        f"parabacus:budget={BUDGET},batch_size=1000,num_threads=8,seed={SEED}"
    )
    session = open_session(parabacus_spec)
    session.ingest(stream)
    session.flush()
    parabacus = session.estimator
    print("Theorem 5 (same seed, mini-batched + parallel):")
    print(f"  ABACUS    estimate: {sequential_estimate:>14,.1f}")
    print(f"  PARABACUS estimate: {session.estimate:>14,.1f}")
    print(
        "  identical: "
        f"{abs(session.estimate - sequential_estimate) < 1e-6}\n"
    )

    # 2. Load balance across workers (Figure 10).
    balance = workload_balance(parabacus.per_thread_work)
    print("Per-worker intersection workload (element checks):")
    for worker, work in enumerate(parabacus.per_thread_work, start=1):
        bar = "#" * max(1, round(40 * work / balance.maximum))
        print(f"  worker {worker}: {work:>10,} {bar}")
    print(f"  imbalance (max/mean): {balance.imbalance:.3f}\n")
    session.close()

    # 3. Speedup vs mini-batch size (Figure 8, work model).
    print("Work-model speedup vs mini-batch size (8 workers):")
    for batch_size in (100, 500, 1000, 5000):
        with open_session(
            parabacus_spec, batch_size=batch_size
        ) as sized:
            sized.ingest(stream)
            sized.flush()
            speedup = sized.estimator.modeled_speedup()
        print(f"  M={batch_size:>5}: {speedup:5.2f}x "
              + "#" * round(speedup * 4))


if __name__ == "__main__":
    main()
