"""Watch the estimate track the truth over a whole stream.

Final-count accuracy hides how an estimator behaves mid-stream.  This
example replays one fully dynamic stream through ABACUS and an
ensemble of four replicas — each opened as a session whose
``on_checkpoint`` observer records synchronised checkpoints against
the exact oracle — and draws both trajectories as an ASCII chart.

Run:
    python examples/error_trajectory.py
"""

from __future__ import annotations

import random

from repro.api import open_session
from repro.core.exact import ExactStreamingCounter
from repro.experiments.plotting import line_chart
from repro.graph.generators import bipartite_chung_lu
from repro.metrics.timeseries import TrajectoryTracker
from repro.streams.dynamic import make_fully_dynamic


def track_with_session(stream, spec: str, every: int) -> TrajectoryTracker:
    """Replay ``stream`` through a session, checkpointing vs the oracle.

    The oracle advances in lockstep with the session, so the
    ``on_checkpoint`` subscription sees truth and estimate at the same
    element count.
    """
    oracle = ExactStreamingCounter()
    tracker = TrajectoryTracker()
    with open_session(spec) as session:
        session.on_checkpoint(
            lambda n, s: tracker.record(n, oracle.estimate, s.estimate),
            every=every,
        )
        for element in stream:
            oracle.process(element)
            session.ingest(element)
    return tracker


def main() -> None:
    edges = bipartite_chung_lu(800, 250, 10_000, rng=random.Random(5))
    stream = make_fully_dynamic(edges, alpha=0.2, rng=random.Random(6))
    budget = 1200
    every = 500

    print(
        f"Tracking a budget-{budget} ABACUS and a 4-replica ensemble "
        f"against the exact oracle ({len(stream)} elements) ..."
    )
    single = track_with_session(
        stream, f"abacus:budget={budget},seed=7", every
    )
    ensemble = track_with_session(
        stream, f"ensemble:replicas=4,budget={budget},seed=8", every
    )

    xs, truths, single_estimates = single.series()
    _, _, ensemble_estimates = ensemble.series()
    print()
    print(
        line_chart(
            {
                "truth": (xs, truths),
                "abacus": (xs, single_estimates),
                "ensemble": (xs, ensemble_estimates),
            },
            width=64,
            height=16,
            title="Butterfly count over the stream",
            x_label="elements",
            y_label="butterflies",
            y_min=0.0,
        )
    )
    print()
    print(f"{'':<12} {'mean err':>9} {'max err':>9} {'final err':>10}")
    for name, tracker in (("abacus", single), ("ensemble", ensemble)):
        print(
            f"{name:<12} {tracker.mean_relative_error():>9.2%} "
            f"{tracker.max_relative_error():>9.2%} "
            f"{tracker.final_relative_error():>10.2%}"
        )
    worst = single.worst_window(width=3)
    if worst:
        start, end, mean_error = worst
        print()
        print(
            f"ABACUS's roughest patch: elements {start}-{end} "
            f"(mean error {mean_error:.2%})"
        )


if __name__ == "__main__":
    main()
