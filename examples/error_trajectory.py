"""Watch the estimate track the truth over a whole stream.

Final-count accuracy hides how an estimator behaves mid-stream.  This
example replays one fully dynamic stream through ABACUS and an
ensemble of four replicas, records synchronised checkpoints against
the exact oracle, and draws both trajectories as an ASCII chart.

Run:
    python examples/error_trajectory.py
"""

from __future__ import annotations

import random

from repro.core.abacus import Abacus
from repro.core.ensemble import EnsembleEstimator
from repro.core.exact import ExactStreamingCounter
from repro.experiments.plotting import line_chart
from repro.graph.generators import bipartite_chung_lu
from repro.metrics.timeseries import track_against_oracle
from repro.streams.dynamic import make_fully_dynamic


def main() -> None:
    edges = bipartite_chung_lu(800, 250, 10_000, rng=random.Random(5))
    stream = make_fully_dynamic(edges, alpha=0.2, rng=random.Random(6))
    budget = 1200
    every = 500

    print(
        f"Tracking a budget-{budget} ABACUS and a 4-replica ensemble "
        f"against the exact oracle ({len(stream)} elements) ..."
    )
    single = track_against_oracle(
        stream, Abacus(budget, seed=7), ExactStreamingCounter(),
        every=every,
    )
    ensemble = track_against_oracle(
        stream,
        EnsembleEstimator(replicas=4, budget=budget, seed=8),
        ExactStreamingCounter(),
        every=every,
    )

    xs, truths, single_estimates = single.series()
    _, _, ensemble_estimates = ensemble.series()
    print()
    print(
        line_chart(
            {
                "truth": (xs, truths),
                "abacus": (xs, single_estimates),
                "ensemble": (xs, ensemble_estimates),
            },
            width=64,
            height=16,
            title="Butterfly count over the stream",
            x_label="elements",
            y_label="butterflies",
            y_min=0.0,
        )
    )
    print()
    print(f"{'':<12} {'mean err':>9} {'max err':>9} {'final err':>10}")
    for name, tracker in (("abacus", single), ("ensemble", ensemble)):
        print(
            f"{name:<12} {tracker.mean_relative_error():>9.2%} "
            f"{tracker.max_relative_error():>9.2%} "
            f"{tracker.final_relative_error():>10.2%}"
        )
    worst = single.worst_window(width=3)
    if worst:
        start, end, mean_error = worst
        print()
        print(
            f"ABACUS's roughest patch: elements {start}-{end} "
            f"(mean error {mean_error:.2%})"
        )


if __name__ == "__main__":
    main()
