"""Sharded ingestion: fan a dynamic stream across estimator shards.

Demonstrates the `repro.shard` engine end to end:

1. the same session facade, now with `shards=K` and a backend;
2. the K-corrected merge and what the per-shard estimates look like;
3. backend bit-identity (serial vs process, same seed, same map);
4. the load-balanced partitioner on a skewed stream.

Run with:  PYTHONPATH=src python examples/sharded_ingestion.py
"""

import random

from repro import open_session, make_fully_dynamic
from repro.graph.generators import bipartite_chung_lu

SPEC = "abacus:budget=800,seed=7"
SHARDS = 4


def main() -> None:
    edges = bipartite_chung_lu(1500, 250, 15_000, rng=random.Random(7))
    stream = list(make_fully_dynamic(edges, alpha=0.2, rng=random.Random(13)))

    # Ground truth, for context.
    with open_session("exact") as session:
        session.ingest(stream)
        truth = session.estimate
    print(f"exact butterfly count          : {truth:>14,.0f}")

    # The same facade, sharded: the stream is hash-partitioned by left
    # vertex across 4 independent ABACUS shards and the summed shard
    # estimates are multiplied by K (cross-shard butterflies are never
    # observed; the correction makes the merge unbiased).
    with open_session(SPEC, shards=SHARDS) as session:
        session.ingest(stream)
        engine = session.estimator
        print(
            f"{f'sharded estimate (K={SHARDS})':<31}: "
            f"{session.estimate:>14,.0f}"
        )
        print(f"{'  correction factor':<31}: {engine.correction:>14,.1f}")
        for index, shard_estimate in enumerate(engine.shard_estimates()):
            print(
                f"{f'  shard {index} raw estimate':<31}: "
                f"{shard_estimate:>14,.0f}"
            )
        serial_estimate = session.estimate

    # Process backend: same seed, same partition map -> bit-identical,
    # just executed on worker processes fed over pipes.
    with open_session(SPEC, shards=SHARDS, backend="process") as session:
        session.ingest(stream)
        assert session.estimate == serial_estimate
        print(f"process backend estimate       : {session.estimate:>14,.0f} "
              "(bit-identical)")

    # The balanced partitioner pins each new left vertex to the least
    # loaded shard — compare the per-shard element loads it achieves.
    with open_session(SPEC, shards=SHARDS, partitioner="balanced") as session:
        session.ingest(stream)
        loads = session.estimator.partitioner.loads
        print(f"balanced partitioner loads     : {loads} "
              f"(spread {max(loads) - min(loads)})")


if __name__ == "__main__":
    main()
