"""Dense-community discovery with bitruss / tip decompositions.

The paper motivates butterfly counting through k-bitruss computation
and dense-subgraph discovery (Section I).  This example:

1. plants two dense author-venue communities inside a sparse random
   background,
2. recovers them *exactly* with the k-bitruss (edge peeling) and k-tip
   (vertex peeling) decompositions,
3. shows the *streaming* path: an ``AbacusSupport`` estimator watching
   the graph's edges flags (approximately) the same high-support edges
   one pass over the stream, in bounded memory.

Run:
    python examples/bitruss_communities.py
"""

from __future__ import annotations

import random

from repro.core.support import AbacusSupport
from repro.graph.bipartite import BipartiteGraph
from repro.graph.bitruss import bitruss_decomposition
from repro.graph.generators import bipartite_erdos_renyi
from repro.graph.tip_decomposition import tip_decomposition
from repro.streams.dynamic import stream_from_edges
from repro.types import Side


def build_graph(rng: random.Random):
    """Two planted 6x5 author-venue bicliques + sparse background."""
    edges = []
    for c in range(2):
        for i in range(6):
            for j in range(5):
                edges.append((f"c{c}_author{i}", f"c{c}_venue{j}"))
    background = bipartite_erdos_renyi(300, 200, 900, rng)
    edges.extend(
        (f"bg_author{u}", f"bg_venue{v - 300}") for u, v in background
    )
    rng.shuffle(edges)
    return edges


def main() -> None:
    rng = random.Random(11)
    edges = build_graph(rng)
    graph = BipartiteGraph(edges)
    print(
        f"Graph: {graph.num_left} authors, {graph.num_right} venues, "
        f"{graph.num_edges} edges (two planted 6x5 communities)"
    )

    # ------------------------------------------------------------------
    # Exact recovery: k-bitruss (edge peeling)
    # ------------------------------------------------------------------
    bitruss = bitruss_decomposition(graph)
    # Inside a 6x5 biclique every edge is in C(5,2)*C(4,1)... many
    # butterflies; background edges are in almost none.  A threshold of
    # 10 cleanly separates the two regimes.
    community_edges = {e for e, k in bitruss.items() if k >= 10}
    planted = {e for e in graph.edges() if str(e[0]).startswith("c")}
    correct = community_edges & planted
    print()
    print("k-bitruss (edge peeling):")
    print(f"  edges with bitruss number >= 10 : {len(community_edges)}")
    print(f"  of which planted                : {len(correct)}")
    print(f"  planted edges total             : {len(planted)}")

    # ------------------------------------------------------------------
    # Exact recovery: k-tip (vertex peeling, author side)
    # ------------------------------------------------------------------
    tips = tip_decomposition(graph, Side.LEFT)
    community_authors = {u for u, k in tips.items() if k >= 50}
    planted_authors = {
        u for u in graph.left_vertices() if str(u).startswith("c")
    }
    print()
    print("k-tip (author-side vertex peeling):")
    print(f"  authors with tip number >= 50   : {len(community_authors)}")
    print(
        f"  planted authors recovered       : "
        f"{len(community_authors & planted_authors)}/12"
    )

    # ------------------------------------------------------------------
    # Streaming approximation: per-edge support from a bounded sample
    # ------------------------------------------------------------------
    budget = 600  # ~40% of the stream
    estimator = AbacusSupport(budget=budget, seed=3)
    estimator.process_stream(stream_from_edges(edges))
    flagged = set(estimator.approximate_k_bitruss_edges(10.0))
    flagged_planted = flagged & planted
    precision = len(flagged_planted) / len(flagged) if flagged else 1.0
    recall = len(flagged_planted) / len(planted)
    print()
    print(f"Streaming support estimates (budget={budget} edges):")
    print(f"  edges flagged with support >= 10 : {len(flagged)}")
    print(f"  precision vs planted             : {precision:.0%}")
    print(f"  recall vs planted                : {recall:.0%}")
    print()
    print("Top-5 edges by estimated support:")
    for edge, support in estimator.top_edges(5):
        print(f"  {edge!s:<32} ~{support:,.0f} butterflies")


if __name__ == "__main__":
    main()
