"""Quickstart: count butterflies in a fully dynamic bipartite stream.

Builds a synthetic user-item interaction stream with 20% deletions,
runs ABACUS with a bounded memory budget next to the exact streaming
oracle — both opened through the session API, which is the single
public entry point — and reports the final estimate, the relative
error, the throughput, and the memory the two approaches used.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import make_fully_dynamic, open_session
from repro.graph.generators import bipartite_chung_lu


def main() -> None:
    rng = random.Random(7)

    # A power-law user-item graph: 2000 users, 300 items, 20K edges.
    print("Generating a 20K-edge user-item interaction graph ...")
    edges = bipartite_chung_lu(
        n_left=2000, n_right=300, n_edges=20_000, rng=rng
    )

    # Make it fully dynamic: 20% of the interactions get retracted at a
    # random later point (GDPR erasures, cancelled orders, ...).
    stream = make_fully_dynamic(edges, alpha=0.2, rng=random.Random(13))
    print(
        f"Stream: {len(stream)} elements "
        f"({stream.num_insertions} insertions, "
        f"{stream.num_deletions} deletions)"
    )

    # ABACUS with a memory budget of 3000 edges (~15% of the graph),
    # described by an estimator spec and opened as a session.
    with open_session("abacus:budget=3000,seed=42") as abacus:
        abacus.ingest(stream)
        estimate = abacus.estimate
        abacus_metrics = abacus.metrics

    # Ground truth from the exact oracle (stores the whole graph).
    with open_session("exact") as exact:
        exact.ingest(stream)
        truth = exact.estimate
        exact_metrics = exact.metrics

    error = abs(truth - estimate) / truth
    print()
    print(f"  exact butterfly count : {truth:>14,.0f}")
    print(f"  ABACUS estimate       : {estimate:>14,.0f}")
    print(f"  relative error        : {error:>14.2%}")
    print()
    print(f"  ABACUS memory         : {abacus_metrics.memory_edges:,} edges")
    print(f"  exact oracle memory   : {exact_metrics.memory_edges:,} edges")
    print(
        f"  memory saved          : "
        f"{1 - abacus_metrics.memory_edges / exact_metrics.memory_edges:.0%}"
    )
    print(
        f"  ABACUS throughput     : "
        f"{abacus_metrics.throughput_eps:,.0f} elements/s"
    )


if __name__ == "__main__":
    main()
