"""Quickstart: count butterflies in a fully dynamic bipartite stream.

Builds a synthetic user-item interaction stream with 20% deletions,
runs ABACUS with a bounded memory budget next to the exact streaming
oracle, and reports the final estimate, the relative error, and the
memory the two approaches used.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import Abacus, ExactStreamingCounter, make_fully_dynamic
from repro.graph.generators import bipartite_chung_lu


def main() -> None:
    rng = random.Random(7)

    # A power-law user-item graph: 2000 users, 300 items, 20K edges.
    print("Generating a 20K-edge user-item interaction graph ...")
    edges = bipartite_chung_lu(
        n_left=2000, n_right=300, n_edges=20_000, rng=rng
    )

    # Make it fully dynamic: 20% of the interactions get retracted at a
    # random later point (GDPR erasures, cancelled orders, ...).
    stream = make_fully_dynamic(edges, alpha=0.2, rng=random.Random(13))
    print(
        f"Stream: {len(stream)} elements "
        f"({stream.num_insertions} insertions, "
        f"{stream.num_deletions} deletions)"
    )

    # ABACUS with a memory budget of 3000 edges (~15% of the graph).
    abacus = Abacus(budget=3000, seed=42)
    estimate = abacus.process_stream(stream)

    # Ground truth from the exact oracle (stores the whole graph).
    exact = ExactStreamingCounter()
    truth = exact.process_stream(stream)

    error = abs(truth - estimate) / truth
    print()
    print(f"  exact butterfly count : {truth:>14,.0f}")
    print(f"  ABACUS estimate       : {estimate:>14,.0f}")
    print(f"  relative error        : {error:>14.2%}")
    print()
    print(f"  ABACUS memory         : {abacus.memory_edges:,} edges")
    print(f"  exact oracle memory   : {exact.memory_edges:,} edges")
    print(
        f"  memory saved          : "
        f"{1 - abacus.memory_edges / exact.memory_edges:.0%}"
    )


if __name__ == "__main__":
    main()
